"""Tests for the bitmap ground-truth oracle, including the Table 2 rules."""

import pytest

from repro.dsg import DSG, DSGConfig, VerificationMode
from repro.dsg.ground_truth import GroundTruth
from repro.engine import ResultSet, reference_engine
from repro.expr import ColumnRef, column, eq, lit
from repro.plan import JoinStep, JoinType, QuerySpec, SelectItem, TableRef


@pytest.fixture(scope="module")
def dsg():
    return DSG(DSGConfig(dataset="shopping", dataset_rows=100, seed=21))


def two_table_query(dsg, join_type, project_right=True):
    hub = dsg.ndb.hub_table
    users = next(t.name for t in dsg.ndb.tables
                 if set(t.implicit_key) == {"userId"} and not t.is_hub)
    select = [SelectItem(column(hub, "orderId"))]
    if project_right and join_type.exposes_right_columns:
        select.append(SelectItem(column(users, "userName")))
    return QuerySpec(
        base=TableRef(hub, hub),
        joins=[JoinStep(TableRef(users, users), join_type,
                        left_key=ColumnRef(hub, "userId"),
                        right_key=ColumnRef(users, "userId"))],
        select=select,
    )


class TestBitmapRules:
    def test_inner_join_bitmap_is_intersection(self, dsg):
        oracle = dsg.oracle
        query = two_table_query(dsg, JoinType.INNER)
        bits = oracle.join_bitmap(query)
        hub_bits = dsg.ndb.bitmap.bitmap(query.base.table)
        users_bits = dsg.ndb.bitmap.bitmap(query.joins[0].table.table)
        assert bits == (hub_bits & users_bits)

    def test_left_outer_keeps_base_bits(self, dsg):
        query = two_table_query(dsg, JoinType.LEFT_OUTER)
        bits = dsg.oracle.join_bitmap(query)
        assert bits == dsg.ndb.bitmap.bitmap(query.base.table)

    def test_right_outer_takes_right_bits(self, dsg):
        query = two_table_query(dsg, JoinType.RIGHT_OUTER)
        bits = dsg.oracle.join_bitmap(query)
        assert bits == dsg.ndb.bitmap.bitmap(query.joins[0].table.table)

    def test_anti_join_uses_negation(self, dsg):
        query = two_table_query(dsg, JoinType.ANTI, project_right=False)
        bits = dsg.oracle.join_bitmap(query)
        hub_bits = dsg.ndb.bitmap.bitmap(query.base.table)
        users_bits = dsg.ndb.bitmap.bitmap(query.joins[0].table.table)
        assert bits == (hub_bits & ~users_bits)

    def test_full_outer_is_union(self, dsg):
        query = two_table_query(dsg, JoinType.FULL_OUTER)
        bits = dsg.oracle.join_bitmap(query)
        hub_bits = dsg.ndb.bitmap.bitmap(query.base.table)
        users_bits = dsg.ndb.bitmap.bitmap(query.joins[0].table.table)
        assert bits == (hub_bits | users_bits)

    def test_cross_join_marks_subset_verification(self, dsg):
        query = two_table_query(dsg, JoinType.CROSS)
        query.joins[0] = JoinStep(query.joins[0].table, JoinType.CROSS)
        truth = dsg.oracle.compute(query)
        assert truth.mode is VerificationMode.SUBSET


class TestGroundTruthMatching:
    def test_full_set_match_semantics(self):
        truth = GroundTruth(ResultSet(["a"], [(1,), (2,)]), VerificationMode.FULL_SET, [])
        assert truth.matches(ResultSet(["a"], [(2,), (1,), (1,)]))
        assert not truth.matches(ResultSet(["a"], [(1,)]))
        assert not truth.matches(ResultSet(["a"], [(1,), (2,), (3,)]))

    def test_subset_match_semantics(self):
        truth = GroundTruth(ResultSet(["a"], [(1,)]), VerificationMode.SUBSET, [])
        assert truth.matches(ResultSet(["a"], [(1,), (5,)]))
        assert not truth.matches(ResultSet(["a"], [(5,)]))

    def test_oracle_applies_filters_and_projection(self, dsg):
        query = two_table_query(dsg, JoinType.INNER)
        query.where = eq(column(query.joins[0].table.alias, "userName"), lit("Tom"))
        truth = dsg.oracle.compute(query)
        assert all(row[1] == "Tom" for row in truth.result.rows)

    def test_oracle_matches_clean_engine_on_figure3_style_query(self, dsg):
        engine = reference_engine(dsg.database)
        for join_type in (JoinType.INNER, JoinType.LEFT_OUTER, JoinType.SEMI,
                          JoinType.ANTI):
            query = two_table_query(dsg, join_type,
                                    project_right=join_type.exposes_right_columns)
            truth = dsg.oracle.compute(query)
            assert truth.matches(engine.execute(query)), join_type

    def test_ground_truth_row_ids_reference_wide_rows(self, dsg):
        query = two_table_query(dsg, JoinType.INNER)
        truth = dsg.oracle.compute(query)
        assert truth.wide_row_ids
        assert max(truth.wide_row_ids) < len(dsg.ndb.wide)
