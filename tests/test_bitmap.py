"""Tests for the bitmap, WAH encoding and the join bitmap index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsg import Bitmap, JoinBitmapIndex, wah_decode, wah_encode
from repro.dsg.bitmap import wah_compressed_words
from repro.errors import GroundTruthError


class TestBitmap:
    def test_set_get_count(self):
        bitmap = Bitmap(10)
        bitmap.set(3)
        bitmap.set(7)
        assert bitmap.get(3) and bitmap.get(7) and not bitmap.get(0)
        assert bitmap.count() == 2
        assert bitmap.indices() == [3, 7]

    def test_bounds_checked(self):
        bitmap = Bitmap(4)
        with pytest.raises(GroundTruthError):
            bitmap.get(4)
        with pytest.raises(GroundTruthError):
            bitmap.set(-1)

    def test_logical_operators(self):
        left = Bitmap.from_indices(8, [0, 1, 2])
        right = Bitmap.from_indices(8, [2, 3])
        assert (left & right).indices() == [2]
        assert (left | right).indices() == [0, 1, 2, 3]
        assert (left ^ right).indices() == [0, 1, 3]
        assert (~right).indices() == [0, 1, 4, 5, 6, 7]

    def test_size_mismatch_rejected(self):
        with pytest.raises(GroundTruthError):
            Bitmap(4) & Bitmap(5)

    def test_ones_and_density(self):
        assert Bitmap.ones(5).count() == 5
        assert Bitmap.from_indices(4, [0, 1]).density() == 0.5
        assert Bitmap(0).density() == 0.0

    def test_extend_appends_cleared_bits(self):
        bitmap = Bitmap.from_indices(3, [2])
        bitmap.extend(2)
        assert bitmap.size == 5
        assert not bitmap.get(4)
        with pytest.raises(GroundTruthError):
            bitmap.extend(-1)

    def test_copy_and_equality(self):
        bitmap = Bitmap.from_indices(6, [1, 4])
        clone = bitmap.copy()
        clone.set(0)
        assert bitmap != clone
        assert bitmap == Bitmap.from_indices(6, [1, 4])


class TestWAH:
    def test_roundtrip_simple(self):
        bitmap = Bitmap.from_indices(100, [0, 50, 99])
        words = wah_encode(bitmap)
        assert wah_decode(words, 100) == bitmap

    def test_sparse_bitmap_compresses(self):
        sparse = Bitmap.from_indices(31 * 40, [0])
        dense = Bitmap.from_indices(31 * 40, list(range(0, 31 * 40, 2)))
        assert wah_compressed_words(sparse) < wah_compressed_words(dense)

    def test_all_ones_uses_fill_words(self):
        bitmap = Bitmap.ones(31 * 10)
        words = wah_encode(bitmap)
        assert words == [("fill", (1, 10))]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 200), st.data())
    def test_roundtrip_property(self, size, data):
        indices = data.draw(st.lists(st.integers(0, size - 1), max_size=size))
        bitmap = Bitmap.from_indices(size, indices)
        assert wah_decode(wah_encode(bitmap), size) == bitmap


class TestJoinBitmapIndex:
    def test_set_get_per_table(self):
        index = JoinBitmapIndex(5, ["T1", "T2"])
        index.set("T1", 0)
        index.set("T2", 1)
        assert index.get("T1", 0) and not index.get("T1", 1)
        with pytest.raises(GroundTruthError):
            index.bitmap("T9")

    def test_add_wide_row_grows_every_bitmap(self):
        index = JoinBitmapIndex(2, ["T1", "T2"])
        new_row = index.add_wide_row()
        assert new_row == 2
        assert index.bitmap("T1").size == 3
        assert not index.get("T2", 2)

    def test_sparsity_ranked_intersection(self):
        index = JoinBitmapIndex(6, ["T1", "T2", "T3"])
        for row in range(6):
            index.set("T1", row)
        for row in (0, 1, 2):
            index.set("T2", row)
        index.set("T3", 1)
        assert index.sparsity_ranked_tables(["T1", "T2", "T3"]) == ["T3", "T2", "T1"]
        assert index.intersect(["T1", "T2", "T3"]).indices() == [1]
        assert index.intersect([]).count() == 6

    def test_copy_is_deep(self):
        index = JoinBitmapIndex(3, ["T1"])
        clone = index.copy()
        clone.set("T1", 0)
        assert not index.get("T1", 0)
