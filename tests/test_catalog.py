"""Tests for columns, table schemas, keys, foreign keys and database schemas."""

import pytest

from repro.catalog import Column, DatabaseSchema, ForeignKey, KeyConstraint, TableSchema, make_table
from repro.errors import CatalogError, SchemaError
from repro.sqlvalue import bigint, varchar


def _users_table() -> TableSchema:
    return TableSchema(
        "users",
        [Column("RowID", bigint(nullable=False)), Column("userId", varchar(16)),
         Column("userName", varchar(40))],
        primary_key=("RowID",),
        implicit_key=("userId",),
        keys=(KeyConstraint(("userId",), unique=True),),
    )


class TestTableSchema:
    def test_column_lookup(self):
        table = _users_table()
        assert table.column("userId").dtype.name.value == "varchar"
        assert table.has_column("userName")
        assert not table.has_column("missing")

    def test_unknown_column_raises(self):
        with pytest.raises(CatalogError):
            _users_table().column("nope")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", varchar(5)), Column("a", varchar(5))])

    def test_key_column_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", varchar(5))], primary_key=("b",))

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_data_columns_excludes_rowid(self):
        names = [c.name for c in _users_table().data_columns()]
        assert names == ["userId", "userName"]

    def test_render_ddl_mentions_keys(self):
        ddl = _users_table().render_ddl()
        assert "CREATE TABLE users" in ddl
        assert "PRIMARY KEY (RowID)" in ddl
        assert "UNIQUE KEY" in ddl

    def test_make_table_helper(self):
        table = make_table("t", [Column("a", varchar(5))], implicit_key=("a",))
        assert table.implicit_key == ("a",)

    def test_empty_key_constraint_rejected(self):
        with pytest.raises(SchemaError):
            KeyConstraint(())


class TestForeignKey:
    def test_joins_either_direction(self):
        fk = ForeignKey("orders", ("userId",), "users", ("userId",))
        assert fk.joins("orders", "users")
        assert fk.joins("users", "orders")
        assert not fk.joins("orders", "goods")

    def test_mismatched_column_counts(self):
        with pytest.raises(SchemaError):
            ForeignKey("a", ("x", "y"), "b", ("x",))

    def test_render_ddl(self):
        fk = ForeignKey("orders", ("userId",), "users", ("userId",), name="fk1")
        assert "ADD CONSTRAINT fk1" in fk.render_ddl()


class TestDatabaseSchema:
    def test_lookup_and_neighbors(self, orders_schema: DatabaseSchema):
        assert set(orders_schema.table_names) == {"orders", "users", "goods"}
        assert orders_schema.joinable_neighbors("orders") == ["goods", "users"]
        assert orders_schema.joinable_neighbors("users") == ["orders"]

    def test_join_edge(self, orders_schema: DatabaseSchema):
        fk = orders_schema.join_edge("orders", "users")
        assert fk is not None and fk.columns == ("userId",)
        assert orders_schema.join_edge("users", "goods") is None

    def test_unknown_table(self, orders_schema: DatabaseSchema):
        with pytest.raises(CatalogError):
            orders_schema.table("missing")

    def test_duplicate_table_rejected(self):
        table = _users_table()
        with pytest.raises(SchemaError):
            DatabaseSchema([table, table])

    def test_fk_must_reference_existing_columns(self):
        users = _users_table()
        with pytest.raises(SchemaError):
            DatabaseSchema([users], [ForeignKey("users", ("nope",), "users", ("userId",))])

    def test_column_owner(self, orders_schema: DatabaseSchema):
        assert set(orders_schema.column_owner("userId")) == {"orders", "users"}

    def test_render_ddl_contains_all_tables(self, orders_schema: DatabaseSchema):
        ddl = orders_schema.render_ddl()
        for name in orders_schema.table_names:
            assert f"CREATE TABLE {name}" in ddl
