"""Tests for noise injection and the Case 1 / Case 2 wide-table synchronization."""

import random

import pytest

from repro.dsg import NoiseInjector, build_dataset, normalize
from repro.errors import NoiseInjectionError
from repro.sqlvalue import is_null
from repro.sqlvalue.values import canonical_numeric


def fresh_ndb(seed=3, dataset="shopping", rows=90):
    spec = build_dataset(dataset, rows, random.Random(seed))
    return normalize(spec.wide, fds=spec.planted_fds, key_override=spec.key_columns)


class TestNoiseInjection:
    def test_epsilon_bounds_validated(self):
        ndb = fresh_ndb()
        with pytest.raises(NoiseInjectionError):
            NoiseInjector(ndb, epsilon=1.5)

    def test_injection_produces_events_and_grows_wide_table(self):
        ndb = fresh_ndb()
        before = len(ndb.wide)
        report = NoiseInjector(ndb, rng=random.Random(1), epsilon=0.1).inject()
        assert report.count > 0
        assert len(ndb.wide) > before  # Case 1 / Case 2 insertions
        assert report.touched_tables

    def test_noise_values_are_unique_or_null(self):
        ndb = fresh_ndb()
        report = NoiseInjector(ndb, rng=random.Random(2), epsilon=0.1,
                               adversarial_pairs=False).inject()
        non_null = [e for e in report.events if not is_null(e.new_value)]
        per_column = {}
        for event in non_null:
            per_column.setdefault(event.column, []).append(
                canonical_numeric(event.new_value)
            )
        for column, values in per_column.items():
            assert len(values) == len(set(values)), f"duplicate noise in {column}"

    def test_bitmap_cleared_for_corrupted_foreign_keys(self):
        ndb = fresh_ndb()
        report = NoiseInjector(ndb, rng=random.Random(3), epsilon=0.1,
                               null_fraction=0.0, adversarial_pairs=False).inject()
        case2 = [e for e in report.events if e.case == 2]
        assert case2
        # For at least one corrupted FK the parent-side bit of an affected wide
        # row must have been cleared.
        cleared = 0
        for event in case2:
            fk = next(fk for fk in ndb.schema.foreign_keys
                      if fk.table == event.table and event.column in fk.columns)
            for wide_id, wide_row in enumerate(ndb.wide.rows):
                value = wide_row[event.column]
                if not is_null(value) and canonical_numeric(value) == canonical_numeric(
                    event.new_value
                ):
                    if not ndb.bitmap.get(fk.ref_table, wide_id):
                        cleared += 1
        assert cleared > 0

    def test_case1_adds_augmented_wide_row_with_dependents(self):
        ndb = fresh_ndb()
        report = NoiseInjector(ndb, rng=random.Random(4), epsilon=0.08,
                               null_fraction=0.0, adversarial_pairs=False).inject()
        case1 = [e for e in report.events if e.case == 1]
        assert case1
        event = case1[0]
        # The corrupted value must now exist in some wide row (the inserted one).
        found = any(
            not is_null(row[event.column])
            and canonical_numeric(row[event.column]) == canonical_numeric(event.new_value)
            for row in ndb.wide.rows
        )
        assert found
        assert report.augmented_tables

    def test_rowid_map_and_bitmap_stay_consistent_after_noise(self):
        ndb = fresh_ndb()
        NoiseInjector(ndb, rng=random.Random(5), epsilon=0.12).inject()
        for wide_id in range(len(ndb.wide)):
            for table in ndb.tables:
                mapped = ndb.rowid_map.get(wide_id, table.name)
                assert ndb.bitmap.get(table.name, wide_id) == (mapped is not None)

    def test_stored_tables_keep_schema_after_noise(self):
        ndb = fresh_ndb()
        NoiseInjector(ndb, rng=random.Random(6), epsilon=0.12).inject()
        for table in ndb.tables:
            stored = ndb.database.table(table.name)
            for row in stored.rows:
                assert set(row) == set(stored.schema.column_names)

    def test_adversarial_pairs_collide_only_in_double_domain(self):
        ndb = fresh_ndb(dataset="kddcup")
        report = NoiseInjector(ndb, rng=random.Random(7), epsilon=0.05,
                               adversarial_pairs=True).inject()
        assert report.adversarial_pairs
        for _column, child_value, parent_value in report.adversarial_pairs:
            assert child_value != parent_value
            assert float(child_value) == float(parent_value)

    def test_no_noise_when_epsilon_zero_except_pairs(self):
        ndb = fresh_ndb()
        report = NoiseInjector(ndb, rng=random.Random(8), epsilon=0.0,
                               adversarial_pairs=False).inject()
        # epsilon=0 still picks max(1, ...) = 1 row per key column by design,
        # so the report is small but non-empty.
        assert report.count >= 1
