"""Tests for the hint generator and the DSG facade (pipeline wiring)."""

import random

from repro.dsg import DSG, DSGConfig, HintGenerator, TransformedQuery
from repro.expr import ColumnRef, column
from repro.plan import JoinStep, JoinType, QuerySpec, SelectItem, TableRef


def query_with(join_types, dsg):
    hub = dsg.ndb.hub_table
    fks = [fk for fk in dsg.ndb.schema.foreign_keys if fk.table == hub]
    joins = []
    for join_type, fk in zip(join_types, fks):
        joins.append(JoinStep(TableRef(fk.ref_table, fk.ref_table), join_type,
                              left_key=ColumnRef(hub, fk.columns[0]),
                              right_key=ColumnRef(fk.ref_table, fk.columns[0])))
    return QuerySpec(
        base=TableRef(hub, hub),
        joins=joins,
        select=[SelectItem(column(hub, dsg.ndb.data_columns(hub)[0]))],
    )


class TestHintGenerator:
    def test_default_plan_always_first(self, shopping_dsg):
        generator = HintGenerator(random.Random(1))
        hints = generator.hint_sets_for(query_with([JoinType.INNER], shopping_dsg))
        assert hints[0].name == "default"

    def test_semi_join_queries_get_materialization_hints(self, shopping_dsg):
        generator = HintGenerator(random.Random(2))
        names = {h.name for h in generator.hint_sets_for(
            query_with([JoinType.SEMI], shopping_dsg))}
        assert any("no_materialization" in name for name in names)
        assert any("no_semijoin" in name for name in names)

    def test_outer_join_queries_get_join_cache_hints(self, shopping_dsg):
        generator = HintGenerator(random.Random(3))
        names = {h.name for h in generator.hint_sets_for(
            query_with([JoinType.LEFT_OUTER], shopping_dsg))}
        assert "join_cache_hashed_off" in names
        assert "outer_join_with_cache_off" in names

    def test_inner_only_queries_skip_irrelevant_hints(self, shopping_dsg):
        generator = HintGenerator(random.Random(4))
        names = {h.name for h in generator.hint_sets_for(
            query_with([JoinType.INNER], shopping_dsg))}
        assert not any("join_cache" in name and name.endswith("_off") for name in names
                       if "level" not in name)

    def test_multi_join_queries_get_join_order_hint(self, shopping_dsg):
        generator = HintGenerator(random.Random(5))
        query = query_with([JoinType.INNER, JoinType.INNER], shopping_dsg)
        names = {h.name for h in generator.hint_sets_for(query)}
        assert "join_order" in names

    def test_max_hint_sets_is_respected(self, shopping_dsg):
        generator = HintGenerator(random.Random(6), max_hint_sets=4)
        query = query_with([JoinType.SEMI, JoinType.LEFT_OUTER], shopping_dsg)
        hints = generator.hint_sets_for(query)
        assert len(hints) == 4
        assert hints[0].name == "default"

    def test_transform_renders_hint_comment(self, shopping_dsg):
        generator = HintGenerator(random.Random(7))
        query = query_with([JoinType.INNER], shopping_dsg)
        transformed = generator.transform(query)
        assert all(isinstance(t, TransformedQuery) for t in transformed)
        assert any("hash_join()" in t.render() for t in transformed)


class TestDSGFacade:
    def test_pipeline_exposes_all_artifacts(self, shopping_dsg):
        assert shopping_dsg.database.total_rows() > 0
        assert len(shopping_dsg.wide) > 0
        assert shopping_dsg.noise_report is not None
        assert shopping_dsg.schema_graph.join_edges
        assert "dataset: shopping" in shopping_dsg.describe()

    def test_custom_wide_table_path(self):
        from repro.dsg import build_dataset

        spec = build_dataset("shopping", 60, random.Random(1))
        dsg = DSG(DSGConfig(dataset="ignored", seed=1, inject_noise=False),
                  wide=spec.wide)
        assert dsg.dataset.name == "custom"
        assert dsg.noise_report is None
        query = dsg.generate_query()
        truth = dsg.ground_truth(query)
        assert truth is not None

    def test_no_noise_configuration_keeps_wide_table_size(self):
        config = DSGConfig(dataset="shopping", dataset_rows=80, seed=2,
                           inject_noise=False)
        dsg = DSG(config)
        assert len(dsg.wide) == len(dsg.dataset.wide)
        assert dsg.noise_report is None

    def test_discovered_fd_source_builds_a_working_pipeline(self):
        config = DSGConfig(dataset="shopping", dataset_rows=90, seed=3,
                           fd_source="discovered")
        dsg = DSG(config)
        query = dsg.generate_query()
        truth = dsg.ground_truth(query)
        from repro.engine import reference_engine

        result = reference_engine(dsg.database).execute(query)
        assert truth.matches(result)

    def test_seed_determinism(self):
        first = DSG(DSGConfig(dataset="kddcup", dataset_rows=80, seed=9))
        second = DSG(DSGConfig(dataset="kddcup", dataset_rows=80, seed=9))
        assert first.generate_query().render() == second.generate_query().render()

    def test_max_hint_sets_flows_through(self):
        dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=80, seed=4,
                            max_hint_sets=3))
        query = dsg.generate_query()
        assert len(dsg.transform_query(query)) == 3
