"""Tests for the open backend registry and adapter lifecycle guarantees."""

from __future__ import annotations

import pytest

from repro.backends import (
    DuckDBBackend,
    SimulatedBackend,
    SQLiteBackend,
    backend_from_name,
    duckdb_available,
    register_backend,
    registered_backends,
)
from repro.backends import _BACKEND_FACTORIES
from repro.core import CampaignConfig, run_differential_campaign
from repro.dsg import DSG, DSGConfig
from repro.errors import BackendError


class TestRegistry:
    def test_builtin_names_resolve(self):
        assert isinstance(backend_from_name("sqlite"), SQLiteBackend)
        assert isinstance(backend_from_name("duckdb"), DuckDBBackend)
        assert isinstance(backend_from_name("sim"), SimulatedBackend)
        sim = backend_from_name("sim:SimMySQL")
        assert isinstance(sim, SimulatedBackend)
        assert sim.dialect is not None and sim.dialect.name == "SimMySQL"

    def test_registered_backends_lists_prefixes(self):
        names = registered_backends()
        assert "sqlite" in names and "duckdb" in names
        assert "sim:*" in names

    def test_unknown_name_lists_known_backends(self):
        with pytest.raises(KeyError, match="registered backends"):
            backend_from_name("oracledb")

    def test_third_party_adapter_plugs_in_without_editing_the_package(self):
        class InHouseBackend(SimulatedBackend):
            pass

        register_backend("in-house", InHouseBackend)
        try:
            assert isinstance(backend_from_name("in-house"), InHouseBackend)
            assert "in-house" in registered_backends()
        finally:
            _BACKEND_FACTORIES.pop("in-house", None)

    def test_duckdb_constructs_without_driver_but_connect_is_gated(self):
        backend = backend_from_name("duckdb")
        if duckdb_available():
            pytest.skip("duckdb installed; the gated path is not reachable")
        with pytest.raises(BackendError, match="pip install duckdb"):
            backend.connect()


class TestCloseSafety:
    def deployed_sqlite(self):
        dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=80, seed=3))
        backend = SQLiteBackend()
        backend.deploy(dsg.database)
        return backend

    def test_sqlite_close_twice_is_safe(self):
        backend = self.deployed_sqlite()
        backend.close()
        backend.close()

    def test_simulated_close_twice_is_safe(self):
        backend = SimulatedBackend()
        backend.connect()
        backend.close()
        backend.close()

    def test_duckdb_close_without_connect_is_safe(self):
        backend = DuckDBBackend()
        backend.close()
        backend.close()

    def test_context_manager_close_after_explicit_close(self):
        backend = self.deployed_sqlite()
        with backend:
            backend.close()
        # __exit__ closed again; a third close is still fine.
        backend.close()

    def test_failed_deploy_does_not_leak_a_connection(self):
        """A backend whose deploy explodes is closed before the error surfaces."""
        closes = []

        class FailingLoad(SQLiteBackend):
            def load_schema(self, schema):
                raise BackendError("schema rejected")

            def close(self):
                closes.append(True)
                super().close()

        with pytest.raises(BackendError, match="schema rejected"):
            run_differential_campaign(
                FailingLoad(), CampaignConfig(hours=1, queries_per_hour=2)
            )
        assert closes, "campaign error path must close the adapter"

    def test_campaign_closes_backend_on_success(self):
        backend = SQLiteBackend()
        run_differential_campaign(
            backend, CampaignConfig(hours=1, queries_per_hour=2)
        )
        with pytest.raises(BackendError):
            backend.connection  # noqa: B018 - property raises when closed
