"""Tests for scan, filter, project/aggregate, sort, limit and materialize."""

import pytest

from repro.expr import ColumnRef, column, eq, lit
from repro.plan import (
    AggregateFunction,
    Filter,
    Limit,
    Materialize,
    OrderItem,
    Project,
    SelectItem,
    Sort,
    TableScan,
)
from repro.errors import ExecutionError
from repro.sqlvalue import NULL


class TestTableScan:
    def test_scan_emits_qualified_columns(self, orders_db):
        scan = TableScan(orders_db, "users", "u")
        rows = scan.execute()
        assert len(rows) == 3
        assert set(rows[0]) == {"u.RowID", "u.userId", "u.userName"}
        assert scan.output_columns() == ["u.RowID", "u.userId", "u.userName"]

    def test_scan_respects_alias(self, orders_db):
        scan = TableScan(orders_db, "users", "alias1")
        assert all(key.startswith("alias1.") for key in scan.execute()[0])


class TestFilter:
    def test_filter_keeps_true_rows_only(self, orders_db):
        scan = TableScan(orders_db, "orders", "o")
        predicate = eq(column("o", "userId"), lit("str1"))
        rows = Filter(scan, predicate).execute()
        assert len(rows) == 3

    def test_filter_drops_unknown_rows(self, orders_db):
        scan = TableScan(orders_db, "orders", "o")
        predicate = eq(column("o", "userId"), lit("str9"))
        assert Filter(scan, predicate).execute() == []
        null_predicate = eq(column("o", "userId"), lit(NULL))
        assert Filter(scan, null_predicate).execute() == []


class TestProject:
    def test_distinct_projection(self, orders_db):
        scan = TableScan(orders_db, "orders", "o")
        project = Project(scan, [SelectItem(column("o", "userId"))], distinct=True)
        values = sorted(str(row["userId"]) for row in project.execute())
        assert values == ["NULL", "str1", "str2", "str3"]

    def test_non_distinct_projection(self, orders_db):
        scan = TableScan(orders_db, "orders", "o")
        project = Project(scan, [SelectItem(column("o", "userId"))], distinct=False)
        assert len(project.execute()) == 7

    def test_projection_requires_items(self, orders_db):
        with pytest.raises(ExecutionError):
            Project(TableScan(orders_db, "orders", "o"), [])

    def test_count_aggregate_over_distinct_values(self, orders_db):
        scan = TableScan(orders_db, "orders", "o")
        project = Project(
            scan,
            [SelectItem(column("o", "goodsId"), aggregate=AggregateFunction.COUNT)],
        )
        rows = project.execute()
        assert rows == [{"count_0": 4}]  # 1111, 1112, 1113, 9999 (NULL-free distinct)

    def test_group_by_with_min_max(self, orders_db):
        scan = TableScan(orders_db, "goods", "g")
        project = Project(
            scan,
            [
                SelectItem(column("g", "goodsName")),
                SelectItem(column("g", "price"), aggregate=AggregateFunction.MAX),
            ],
            group_by=[ColumnRef("g", "goodsName")],
        )
        rows = {row["goodsName"]: row["max_1"] for row in project.execute()}
        assert rows == {"book": 15, "food": 5, "flower": 10}

    def test_aggregate_on_empty_input(self, orders_db):
        scan = TableScan(orders_db, "orders", "o")
        filtered = Filter(scan, eq(column("o", "userId"), lit("nobody")))
        project = Project(
            filtered,
            [SelectItem(column("o", "goodsId"), aggregate=AggregateFunction.COUNT),
             SelectItem(column("o", "goodsId"), aggregate=AggregateFunction.MIN)],
        )
        rows = project.execute()
        assert rows[0]["count_0"] == 0
        assert rows[0]["min_1"] is NULL

    def test_sum_and_avg(self, orders_db):
        scan = TableScan(orders_db, "goods", "g")
        project = Project(
            scan,
            [SelectItem(column("g", "price"), aggregate=AggregateFunction.SUM),
             SelectItem(column("g", "price"), aggregate=AggregateFunction.AVG)],
        )
        row = project.execute()[0]
        assert row["sum_0"] == 30
        assert row["avg_1"] == 10


class TestSortAndLimit:
    def test_sort_ascending_with_nulls_first(self, orders_db):
        scan = TableScan(orders_db, "orders", "o")
        ordered = Sort(scan, [OrderItem(column("o", "userId"))]).execute()
        assert ordered[0]["o.userId"] is NULL

    def test_sort_descending(self, orders_db):
        scan = TableScan(orders_db, "goods", "g")
        ordered = Sort(scan, [OrderItem(column("g", "price"), descending=True)]).execute()
        assert [row["g.price"] for row in ordered] == [15, 10, 5]

    def test_limit(self, orders_db):
        scan = TableScan(orders_db, "orders", "o")
        assert len(Limit(scan, 2).execute()) == 2
        assert len(Limit(scan, 100).execute()) == 7
        with pytest.raises(ExecutionError):
            Limit(scan, -1)


class TestMaterialize:
    def test_materialize_caches_rows(self, orders_db):
        scan = TableScan(orders_db, "users", "u")
        materialized = Materialize(scan)
        first = list(materialized.rows())
        orders_db.insert("users", {"RowID": 3, "userId": "str4", "userName": "Eve"})
        second = list(materialized.rows())
        assert first == second  # cached copy, unaffected by the later insert

    def test_explain_includes_children(self, orders_db):
        scan = TableScan(orders_db, "users", "u")
        plan = Limit(Materialize(scan), 1)
        text = plan.explain()
        assert "Limit" in text and "Materialize" in text and "TableScan" in text
