"""Tests for `repro.lint`: rule fixtures, suppressions, CLI, live-tree meta.

Each rule has a deliberately-broken fixture and a clean counterpart under
``src/repro/lint/fixtures/``; the bad one must produce exactly its expected
findings and the good one none.  The meta-test pins the repo's own contract:
the live tree lints clean.
"""

import json
import os

import pytest

from repro.lint import Finding, run_lint
from repro.lint.cli import main as lint_main
from repro.lint.engine import iter_python_files, load_module
from repro.lint.registry import LintConfigError, registered_rules, rule_by_id

FIXTURES = os.path.join("src", "repro", "lint", "fixtures")


def fixture(name):
    return os.path.join(FIXTURES, name)


def lint_fixture(name, **kwargs):
    return run_lint([fixture(name)], **kwargs)


def rule_lines(findings, rule_id):
    return [f.line for f in findings if f.rule_id == rule_id]


# ------------------------------------------------------------------ fixtures


BAD_EXPECTATIONS = [
    ("det001_bad.py", "DET001", [8, 12, 16, 20]),
    ("det002_bad.py", "DET002", [4, 5, 6, 11]),
    ("det003_bad.py", "DET003", [9, 10, 12, 17, 23]),
    ("conc001_bad.py", "CONC001", [14, 17]),
    ("sec001_bad.py", "SEC001", [7, 11]),
    ("res001_bad.py", "RES001", [7, 12]),
    ("obs001_bad.py", "OBS001", [8]),
    ("wire001_bad.py", "WIRE001", [12]),
    ("lint000_bad.py", "LINT000", [3]),
]


@pytest.mark.parametrize("name,rule_id,lines", BAD_EXPECTATIONS)
def test_bad_fixture_produces_expected_findings(name, rule_id, lines):
    findings = lint_fixture(name)
    assert [f.rule_id for f in findings] == [rule_id] * len(lines)
    assert rule_lines(findings, rule_id) == lines


@pytest.mark.parametrize(
    "name",
    [
        "det001_good.py",
        "det002_good.py",
        "det003_good.py",
        "conc001_good.py",
        "sec001_good.py",
        "res001_good.py",
        "obs001_good.py",
        "wire001_good.py",
        "lint000_good.py",
    ],
)
def test_good_fixture_is_clean(name):
    assert lint_fixture(name) == []


def test_wire001_names_the_missing_field():
    (finding,) = lint_fixture("wire001_bad.py")
    assert "encode_ping" in finding.message
    assert "payload" in finding.message


# -------------------------------------------------------------- suppressions


def test_allow_silences_exactly_the_named_rule_on_that_line():
    # The fixture line violates both DET001 and DET002; allow[DET001] must
    # silence only DET001, and — being used — must not surface as LINT000.
    findings = lint_fixture("suppression_partial.py")
    assert [f.rule_id for f in findings] == ["DET002"]
    assert findings[0].line == 8


def test_unused_allow_is_itself_a_finding():
    (finding,) = lint_fixture("lint000_bad.py")
    assert finding.rule_id == "LINT000"
    assert "allow[DET001]" in finding.message


def test_used_allow_produces_no_findings_at_all():
    assert lint_fixture("lint000_good.py") == []


def test_directive_prose_in_docstrings_is_not_a_directive():
    # suppressions.py documents its own syntax; quoting `allow[RULE]` or
    # `path=` in a docstring must neither register a suppression nor re-home
    # the module.
    module = load_module(os.path.join("src", "repro", "lint", "suppressions.py"))
    assert module.logical == "repro/lint/suppressions.py"


# ------------------------------------------------------------ select/ignore


def test_select_restricts_to_named_rules():
    findings = lint_fixture("det001_bad.py", select=["SEC001"])
    assert findings == []


def test_ignore_drops_named_rules():
    findings = lint_fixture("det001_bad.py", ignore=["DET001"])
    assert findings == []


def test_unknown_rule_id_is_a_config_error():
    with pytest.raises(LintConfigError):
        lint_fixture("det001_bad.py", select=["NOPE999"])
    with pytest.raises(LintConfigError):
        rule_by_id("NOPE999")


# ------------------------------------------------------------------ registry


def test_registry_contains_the_full_rule_pack():
    ids = [rule.rule_id for rule in registered_rules()]
    assert ids == sorted(ids)
    for expected in (
        "LINT000",
        "DET001",
        "DET002",
        "DET003",
        "CONC001",
        "SEC001",
        "RES001",
        "OBS001",
        "WIRE001",
    ):
        assert expected in ids
        rule = rule_by_id(expected)
        assert rule.title and rule.rationale


def test_finding_render_and_dict():
    finding = Finding(
        rule_id="DET001", path="a.py", line=3, col=7, message="boom", hint="fix"
    )
    assert finding.render() == "a.py:3:7: DET001 boom (fix: fix)"
    assert finding.to_dict() == {
        "rule": "DET001",
        "path": "a.py",
        "line": 3,
        "col": 7,
        "message": "boom",
        "hint": "fix",
    }


# -------------------------------------------------------------------- engine


def test_directory_walk_skips_fixtures():
    files = iter_python_files([os.path.join("src", "repro", "lint")])
    assert files
    assert not any("fixtures" in path for path in files)


def test_explicit_fixture_path_is_still_linted():
    assert iter_python_files([fixture("det001_bad.py")]) == [
        fixture("det001_bad.py")
    ]


# ----------------------------------------------------------------------- CLI


def test_cli_json_format(capsys):
    code = lint_main([fixture("sec001_bad.py"), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 2
    assert {f["rule"] for f in payload["findings"]} == {"SEC001"}


def test_cli_clean_run_exits_zero(capsys):
    code = lint_main([fixture("sec001_good.py")])
    assert code == 0
    assert capsys.readouterr().out == ""


def test_cli_select_and_ignore(capsys):
    code = lint_main(
        [fixture("det001_bad.py"), "--select", "DET001", "--ignore", "DET001"]
    )
    assert code == 0
    code = lint_main([fixture("det001_bad.py"), "--select", "BOGUS123"])
    assert code == 2
    capsys.readouterr()


def test_cli_explain_prints_rule_and_examples(capsys):
    code = lint_main(["--explain", "DET001"])
    assert code == 0
    output = capsys.readouterr().out
    assert "DET001" in output
    assert "Bad example" in output
    assert "Good example" in output
    assert "random.Random()" in output  # pulled from the bad fixture


def test_cli_explain_unknown_rule(capsys):
    assert lint_main(["--explain", "XYZ987"]) == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    output = capsys.readouterr().out
    for rule in registered_rules():
        assert rule.rule_id in output


# ------------------------------------------------------------------ meta


def test_live_tree_is_lint_clean():
    """The repo's own contracts hold: `python -m repro.lint src` finds nothing.

    This is the acceptance gate for every rule's false-positive rate, and it
    keeps the suppression inventory at zero for the security/concurrency
    rules (an allow would surface as a finding here unless it was used, and
    used allows are inspected in review).
    """
    assert run_lint([os.path.join("src", "repro")]) == []
