"""Tests for bug logs, reduction, the TQS loop and its ablation switches."""

from repro.core import BugIncident, BugLog, QueryReducer, TQS, TQSConfig
from repro.dsg import DSG, DSGConfig
from repro.engine import Engine, SIM_MYSQL, SIM_XDB, reference_engine
from repro.expr import ColumnRef, column
from repro.plan import JoinStep, JoinType, QuerySpec, SelectItem, TableRef


def incident(bug_ids=(1,), label="L1", hint="hash_join", mode="ground_truth"):
    return BugIncident(
        dbms="SimMySQL 8.0.28",
        query_sql="SELECT 1;",
        hint_name=hint,
        detection_mode=mode,
        query_canonical_label=label,
        fired_bug_ids=tuple(bug_ids),
        expected_rows=2,
        observed_rows=1,
    )


class TestBugLog:
    def test_dedup_by_root_cause_and_structure(self):
        log = BugLog()
        assert log.record(incident()) is True
        assert log.record(incident(hint="merge_join")) is False  # same bug, same shape
        assert log.record(incident(label="L2")) is True
        assert log.record(incident(bug_ids=(2,))) is True
        assert log.bug_count == 3
        assert log.bug_types == {1, 2}
        assert len(log.incidents) == 4

    def test_incidents_for_type(self):
        log = BugLog()
        log.record(incident(bug_ids=(1, 2)))
        log.record(incident(bug_ids=(3,)))
        assert len(log.incidents_for_type(2)) == 1
        assert log.incidents_for_type(9) == []

    def test_summary_mentions_counts(self):
        log = BugLog()
        log.record(incident())
        assert "1 bugs of 1 types" in log.summary()

    def test_root_cause_frozenset(self):
        assert incident(bug_ids=(2, 1)).root_cause == frozenset({1, 2})


class TestTQSLoop:
    def test_iteration_outcome_structure(self, shopping_dsg):
        engine = Engine(shopping_dsg.database, SIM_MYSQL)
        tqs = TQS(shopping_dsg, engine, TQSConfig(seed=1))
        outcome = tqs.run_iteration()
        assert outcome.executions > 1
        assert outcome.canonical_label
        assert tqs.queries_generated == 1
        assert tqs.queries_executed == outcome.executions

    def test_run_accumulates_bugs_against_buggy_engine(self, shopping_dsg):
        engine = Engine(shopping_dsg.database, SIM_MYSQL)
        tqs = TQS(shopping_dsg, engine, TQSConfig(seed=2))
        log = tqs.run(25)
        assert log.bug_count > 0
        assert log.bug_types <= {bug.bug_id for bug in SIM_MYSQL.bugs}
        assert tqs.explored_isomorphic_sets > 1

    def test_clean_engine_produces_no_bugs(self, shopping_dsg):
        engine = reference_engine(shopping_dsg.database)
        tqs = TQS(shopping_dsg, engine, TQSConfig(seed=3))
        log = tqs.run(15)
        assert log.bug_count == 0
        assert log.incidents == []

    def test_differential_mode_misses_plan_independent_bugs(self):
        """The TQS!GT ablation cannot see X-DB's plan-independent rewrite bug."""
        dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=100, seed=41))
        engine = Engine(dsg.database, SIM_XDB)
        with_gt = TQS(dsg, engine, TQSConfig(seed=41, use_ground_truth=True))
        without_gt = TQS(dsg, Engine(dsg.database, SIM_XDB),
                         TQSConfig(seed=41, use_ground_truth=False))
        log_gt = with_gt.run(40)
        log_diff = without_gt.run(40)
        assert 18 in log_gt.bug_types           # ground truth sees the rewrite bug
        assert 18 not in log_diff.bug_types     # differential testing cannot
        assert log_gt.bug_type_count >= log_diff.bug_type_count

    def test_incident_records_detection_mode(self, shopping_dsg):
        engine = Engine(shopping_dsg.database, SIM_MYSQL)
        tqs = TQS(shopping_dsg, engine, TQSConfig(seed=5))
        tqs.run(20)
        modes = {i.detection_mode for i in tqs.bug_log.incidents}
        assert modes <= {"ground_truth"}

    def test_reduction_produces_smaller_failing_query(self):
        dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=100, seed=43))
        engine = Engine(dsg.database, SIM_XDB)
        tqs = TQS(dsg, engine, TQSConfig(seed=43, reduce_failures=True))
        tqs.run(25)
        minimized = [i for i in tqs.bug_log.incidents if i.minimized_sql]
        assert minimized
        for item in minimized:
            assert len(item.minimized_sql) <= len(item.query_sql) + 40


class TestQueryReducer:
    def _three_table_query(self, dsg):
        hub = dsg.ndb.hub_table
        fks = [fk for fk in dsg.ndb.schema.foreign_keys if fk.table == hub]
        joins = []
        select = [SelectItem(column(hub, dsg.ndb.data_columns(hub)[0]))]
        for fk in fks[:2]:
            joins.append(JoinStep(TableRef(fk.ref_table, fk.ref_table), JoinType.INNER,
                                  left_key=ColumnRef(hub, fk.columns[0]),
                                  right_key=ColumnRef(fk.ref_table, fk.columns[0])))
        return QuerySpec(base=TableRef(hub, hub), joins=joins, select=select)

    def test_reducer_drops_irrelevant_joins(self, shopping_dsg):
        query = self._three_table_query(shopping_dsg)
        target_alias = query.joins[0].table.alias

        def still_fails(candidate: QuerySpec) -> bool:
            return any(step.table.alias == target_alias for step in candidate.joins)

        reducer = QueryReducer(still_fails)
        reduced = reducer.reduce(query)
        assert len(reduced.joins) == 1
        assert reduced.joins[0].table.alias == target_alias
        assert reducer.attempts > 0

    def test_reducer_keeps_query_when_predicate_fails_immediately(self, shopping_dsg):
        query = self._three_table_query(shopping_dsg)
        reducer = QueryReducer(lambda candidate: False)
        assert reducer.reduce(query).render() == query.render()

    def test_reducer_drops_where_clause(self, shopping_dsg):
        from repro.expr import eq, lit

        query = self._three_table_query(shopping_dsg)
        hub = query.base.alias
        query.where = eq(column(hub, shopping_dsg.ndb.data_columns(hub)[0]), lit("x"))
        reducer = QueryReducer(lambda candidate: True)
        reduced = reducer.reduce(query)
        assert reduced.where is None
        assert len(reduced.select) == 1
