"""Tests for the expression AST, three-valued evaluation and SQL rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExpressionError
from repro.expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    EvalContext,
    FunctionCall,
    InList,
    IsNull,
    Not,
    Or,
    PredicateBuilder,
    column,
    conjoin,
    eq,
    lit,
)
from repro.sqlvalue import NULL
from repro.catalog import Column as CatColumn
from repro.sqlvalue import integer, varchar


def ctx(**values):
    return EvalContext(dict(values))


class TestColumnRef:
    def test_qualified_lookup(self):
        ref = column("t1", "a")
        assert ref.eval(ctx(**{"t1.a": 5})) == 5

    def test_unqualified_lookup(self):
        assert ColumnRef(None, "a").eval(ctx(a=7)) == 7

    def test_suffix_fallback(self):
        assert ColumnRef(None, "a").eval(ctx(**{"t1.a": 3})) == 3

    def test_missing_column_raises(self):
        with pytest.raises(ExpressionError):
            column("t1", "a").eval(ctx(**{"t2.b": 1}))

    def test_render(self):
        assert column("t1", "a").render() == "t1.a"
        assert ColumnRef(None, "a").render() == "a"


class TestComparisons:
    def test_equality_and_nulls(self):
        expr = eq(column("t", "a"), lit(5))
        assert expr.eval(ctx(**{"t.a": 5})) is True
        assert expr.eval(ctx(**{"t.a": 6})) is False
        assert expr.eval(ctx(**{"t.a": NULL})) is NULL

    def test_null_safe_equal(self):
        expr = Comparison("<=>", column("t", "a"), lit(NULL))
        assert expr.eval(ctx(**{"t.a": NULL})) is True
        assert expr.eval(ctx(**{"t.a": 0})) is False

    def test_invalid_operator(self):
        with pytest.raises(ExpressionError):
            Comparison("===", lit(1), lit(1))

    def test_render(self):
        assert eq(column("t", "a"), lit(5)).render() == "(t.a = 5)"


class TestLogicalConnectives:
    def test_and_short_circuits_false(self):
        expr = And(eq(lit(1), lit(2)), eq(column("t", "a"), lit(1)))
        assert expr.eval(ctx()) is False  # never touches the missing column

    def test_and_unknown(self):
        expr = And(eq(lit(1), lit(1)), eq(lit(NULL), lit(1)))
        assert expr.eval(ctx()) is NULL

    def test_or_unknown_and_true(self):
        assert Or(eq(lit(NULL), lit(1)), eq(lit(1), lit(1))).eval(ctx()) is True
        assert Or(eq(lit(NULL), lit(1)), eq(lit(1), lit(2))).eval(ctx()) is NULL

    def test_not(self):
        assert Not(eq(lit(1), lit(1))).eval(ctx()) is False
        assert Not(eq(lit(NULL), lit(1))).eval(ctx()) is NULL

    def test_flattening(self):
        nested = And(eq(lit(1), lit(1)), And(eq(lit(2), lit(2)), eq(lit(3), lit(3))))
        assert len(nested.operands) == 3

    def test_empty_and_rejected(self):
        with pytest.raises(ExpressionError):
            And()

    def test_conjoin(self):
        assert conjoin([]) is None
        single = eq(lit(1), lit(1))
        assert conjoin([single]) is single
        assert isinstance(conjoin([single, eq(lit(2), lit(2))]), And)


class TestOtherPredicates:
    def test_between(self):
        expr = Between(column("t", "a"), lit(1), lit(10))
        assert expr.eval(ctx(**{"t.a": 5})) is True
        assert expr.eval(ctx(**{"t.a": 11})) is False
        assert expr.eval(ctx(**{"t.a": NULL})) is NULL
        assert Between(lit(5), lit(1), lit(10), negated=True).eval(ctx()) is False

    def test_in_list_null_semantics(self):
        expr = InList(column("t", "a"), (lit(1), lit(NULL)))
        assert expr.eval(ctx(**{"t.a": 1})) is True
        assert expr.eval(ctx(**{"t.a": 2})) is NULL  # unknown because of the NULL item
        not_in = InList(column("t", "a"), (lit(1), lit(2)), negated=True)
        assert not_in.eval(ctx(**{"t.a": 3})) is True
        assert not_in.eval(ctx(**{"t.a": 1})) is False

    def test_is_null(self):
        assert IsNull(lit(NULL)).eval(ctx()) is True
        assert IsNull(lit(1), negated=True).eval(ctx()) is True

    def test_arithmetic(self):
        assert Arithmetic("+", lit(2), lit(3)).eval(ctx()) == 5
        assert Arithmetic("/", lit(1), lit(0)).eval(ctx()) is NULL
        assert Arithmetic("*", lit(NULL), lit(3)).eval(ctx()) is NULL
        with pytest.raises(ExpressionError):
            Arithmetic("%", lit(1), lit(1))

    def test_functions(self):
        assert FunctionCall("ABS", (lit(-3),)).eval(ctx()) == 3
        assert FunctionCall("LENGTH", (lit("abcd"),)).eval(ctx()) == 4
        assert FunctionCall("COALESCE", (lit(NULL), lit(7))).eval(ctx()) == 7
        with pytest.raises(ExpressionError):
            FunctionCall("MAGIC", (lit(1),))


class TestReferencesAndRendering:
    def test_references_collects_columns(self):
        expr = And(eq(column("t1", "a"), column("t2", "b")),
                   Between(column("t1", "c"), lit(1), lit(2)))
        assert expr.references() == {("t1", "a"), ("t2", "b"), ("t1", "c")}

    def test_render_roundtrips_structure(self):
        expr = Or(IsNull(column("t", "a")), InList(column("t", "b"), (lit(1), lit(2))))
        text = expr.render()
        assert "IS NULL" in text and "IN (1, 2)" in text


class TestPredicateBuilder:
    def test_builder_produces_evaluable_predicates(self):
        import random

        builder = PredicateBuilder(random.Random(5))
        col = CatColumn("price", integer())
        for _ in range(30):
            predicate = builder.build("t", col, [1, 2, 3, 10])
            value = predicate.eval(ctx(**{"t.price": 2}))
            assert value in (True, False, NULL)

    def test_builder_handles_all_null_pool(self):
        import random

        builder = PredicateBuilder(random.Random(5))
        predicate = builder.build("t", CatColumn("name", varchar(5)), [NULL])
        assert isinstance(predicate, IsNull)


@given(st.integers(-50, 50))
def test_between_matches_manual_bounds(value):
    expr = Between(lit(value), lit(-10), lit(10))
    assert expr.eval(EvalContext({})) == (-10 <= value <= 10)
