"""Tests for protocol v2: typed JSON codecs, authenticated framing, handshake.

The codec layer carries the distributed determinism contract, so the
round-trip tests here are property-based: random campaign-shaped payloads
(embeddings, label lists, budget vectors, bug incidents) must encode → decode
*identically*, and arbitrary byte garbage fed to the frame reader must raise
``ProtocolError`` promptly — never hang, never allocate unbounded memory,
never reach ``pickle.loads``.
"""

import json
import pickle
import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CampaignConfig,
    ParallelCampaignConfig,
    run_parallel_tqs_campaign,
)
from repro.core.bug_report import BugIncident
from repro.core.campaign import HourlySample
from repro.core.parallel import WorkerReport, build_shard_specs, sync_schedule
from repro.distributed import protocol, wire
from repro.distributed.client import RemoteSyncTransport
from repro.distributed.protocol import (
    JsonFrameCodec,
    ProtocolMismatchError,
    SyncBroadcast,
    codec_from_name,
    load_auth_key,
)
from repro.distributed.server import IndexServer
from repro.distributed.testing import ScriptedClient, flip_byte, truncate_frame
from repro.engine import SIM_MYSQL
from repro.errors import ProtocolError, TransportError

KEY = b"protocol-v2-test-key"

FAST = CampaignConfig(
    dataset="shopping", dataset_rows=90, hours=3, queries_per_hour=6, seed=71
)


def socket_pair():
    return socket.socketpair()


# ------------------------------------------------------------------ strategies

_counts = st.integers(min_value=0, max_value=10**9)
_ids = st.integers(min_value=-1, max_value=10**6)
_text = st.text(max_size=24)
_floats = st.floats(allow_nan=False, allow_infinity=False)
_vectors = st.lists(_floats, max_size=6)
_entries = st.lists(st.tuples(_vectors, _text), max_size=4).map(
    lambda pairs: [(list(vector), label) for vector, label in pairs]
)
_samples = st.builds(
    HourlySample,
    hour=_counts,
    queries_generated=_counts,
    queries_executed=_counts,
    isomorphic_sets=_counts,
    bug_count=_counts,
    bug_type_count=_counts,
    generations_rejected=_counts,
)
_incidents = st.builds(
    BugIncident,
    dbms=_text,
    query_sql=_text,
    hint_name=_text,
    detection_mode=st.sampled_from(["ground_truth", "differential"]),
    query_canonical_label=_text,
    fired_bug_ids=st.lists(_counts, max_size=4).map(tuple),
    expected_rows=_counts,
    observed_rows=_counts,
    minimized_sql=st.none() | _text,
)
_reports = st.builds(
    WorkerReport,
    shard_id=_ids,
    tool=_text,
    dbms=_text,
    dataset=_text,
    samples=st.lists(_samples, max_size=3),
    hourly_new_labels=st.lists(st.lists(_text, max_size=3), max_size=3),
    hourly_incidents=st.lists(st.lists(_incidents, max_size=2), max_size=2),
    unsynced_entries=_entries,
    hourly_budgets=st.lists(_counts, max_size=4),
    entries_shipped=_counts,
    broadcast_entries_received=_counts,
    broadcast_entries_suppressed=_counts,
)
_configs = st.builds(
    CampaignConfig,
    dataset=_text,
    dataset_rows=_counts,
    hours=_counts,
    queries_per_hour=_counts,
    seed=_counts,
    use_noise=st.booleans(),
    use_ground_truth=st.booleans(),
    use_kqe=st.booleans(),
    max_hint_sets=st.none() | _counts,
)
_specs = st.builds(
    lambda config, shard_id, kind, dialect, baseline, backend, batch_size: (
        build_shard_specs(kind, config, 1, dialect=dialect, baseline=baseline,
                          backend=backend, batch_size=batch_size)[0]
    ),
    config=_configs.filter(lambda c: c.queries_per_hour >= 1),
    shard_id=_counts,
    kind=st.sampled_from(["tqs", "differential"]),
    dialect=_text,
    baseline=_text,
    backend=_text,
    batch_size=st.integers(min_value=1, max_value=16),
)
_broadcasts = st.builds(
    SyncBroadcast,
    entries=_entries,
    suppressed=_counts,
    next_budget=st.none() | _counts,
)
_messages = st.one_of(
    st.tuples(st.just(protocol.HELLO), _counts),
    st.tuples(st.just(protocol.HELLO_OK), _counts, _text),
    st.tuples(st.just(protocol.REGISTER), st.none() | _counts),
    st.tuples(st.just(protocol.SYNC), _ids, _counts, _entries),
    st.tuples(st.just(protocol.TICK), _ids),
    st.tuples(st.just(protocol.REPORT), _reports),
    st.tuples(st.just(protocol.ERROR), _ids, _text),
    st.just((protocol.SHUTDOWN,)),
    st.tuples(st.just(protocol.REGISTERED), st.none() | _specs,
              st.lists(_counts, max_size=5)),
    st.tuples(st.just(protocol.BROADCAST), _broadcasts),
    st.just((protocol.OK,)),
    st.tuples(st.just(protocol.ABORT), _text),
)


class TestWireRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(message=_messages)
    def test_every_message_survives_a_json_round_trip(self, message):
        encoded = wire.encode_message(message)
        rehydrated = json.loads(json.dumps(encoded))
        assert wire.decode_message(rehydrated) == message

    @settings(max_examples=40, deadline=None)
    @given(report=_reports)
    def test_worker_reports_round_trip_exactly(self, report):
        decoded = wire.decode_worker_report(
            json.loads(json.dumps(wire.encode_worker_report(report)))
        )
        assert decoded == report

    @settings(max_examples=40, deadline=None)
    @given(value=st.recursive(
        st.none() | st.booleans() | st.integers() | st.floats() | st.text(),
        lambda children: st.lists(children, max_size=3)
        | st.dictionaries(st.text(max_size=5), children, max_size=3),
        max_leaves=8,
    ))
    def test_arbitrary_json_values_never_decode_silently(self, value):
        """Anything that is not a well-formed message raises ProtocolError."""
        try:
            message = wire.decode_message(value)
        except ProtocolError:
            return
        # The only values that may decode are well-formed message objects.
        assert isinstance(message, tuple) and message
        assert wire.encode_message(message) is not None

    def test_malformed_fields_are_rejected(self):
        good = wire.encode_message((protocol.SYNC, 0, 1, [([1.0], "L")]))
        for breakage in (
            lambda o: o.pop("verb"),
            lambda o: o.__setitem__("verb", "warp"),
            lambda o: o.__setitem__("shard_id", "zero"),
            lambda o: o.__setitem__("hour", True),
            lambda o: o.__setitem__("entries", [["not-a-pair"]]),
            lambda o: o.__setitem__("entries", [[[1.0], 7]]),
            lambda o: o.__setitem__("entries", [[["x"], "L"]]),
        ):
            broken = json.loads(json.dumps(good))
            breakage(broken)
            with pytest.raises(ProtocolError):
                wire.decode_message(broken)


class TestJsonFraming:
    @settings(max_examples=30, deadline=None)
    @given(message=_messages, key=st.binary(max_size=16))
    def test_frames_round_trip_over_a_socket(self, message, key):
        codec = JsonFrameCodec(key)
        left, right = socket_pair()
        try:
            codec.send(left, message)
            assert codec.recv(right) == message
        finally:
            left.close()
            right.close()

    @settings(max_examples=60, deadline=None)
    @given(garbage=st.binary(min_size=1, max_size=256))
    def test_garbage_raises_protocol_error_and_never_hangs(self, garbage):
        codec = JsonFrameCodec(KEY)
        left, right = socket_pair()
        try:
            left.sendall(garbage)
            left.close()
            right.settimeout(5.0)
            with pytest.raises(ProtocolError):
                codec.recv(right)
        finally:
            right.close()

    def test_hostile_length_rejected_before_allocation(self):
        codec = JsonFrameCodec(KEY)
        left, right = socket_pair()
        try:
            left.sendall(protocol.MAGIC + (0x7FFFFFFF).to_bytes(4, "big"))
            right.settimeout(5.0)
            with pytest.raises(ProtocolError, match="exceeds"):
                codec.recv(right)
        finally:
            left.close()
            right.close()

    def test_every_tampered_byte_is_detected(self):
        codec = JsonFrameCodec(KEY)
        frame = codec.encode((protocol.SYNC, 3, 2, [([0.5, 1.0], "label-a")]))
        for offset in range(len(protocol.MAGIC), len(frame)):
            left, right = socket_pair()
            try:
                left.sendall(flip_byte(frame, offset))
                left.close()
                right.settimeout(5.0)
                with pytest.raises(ProtocolError):
                    codec.recv(right)
            finally:
                right.close()

    def test_wrong_key_fails_authentication(self):
        left, right = socket_pair()
        try:
            JsonFrameCodec(b"alpha").send(left, (protocol.OK,))
            with pytest.raises(ProtocolError, match="authentication"):
                JsonFrameCodec(b"beta").recv(right)
        finally:
            left.close()
            right.close()

    def test_truncated_frame_is_a_protocol_error(self):
        codec = JsonFrameCodec(KEY)
        frame = codec.encode((protocol.OK,))
        for keep in (2, 6, 20, len(frame) - 1):
            left, right = socket_pair()
            try:
                left.sendall(truncate_frame(frame, keep))
                left.close()
                right.settimeout(5.0)
                with pytest.raises(ProtocolError, match="truncated"):
                    codec.recv(right)
            finally:
                right.close()

    def test_pickle_frame_is_a_protocol_mismatch(self):
        left, right = socket_pair()
        try:
            protocol.send_frame(left, (protocol.TICK, 0))
            with pytest.raises(ProtocolMismatchError):
                JsonFrameCodec(KEY).recv(right)
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none_when_allowed(self):
        codec = JsonFrameCodec(KEY)
        left, right = socket_pair()
        left.close()
        try:
            assert codec.recv(right, allow_eof=True) is None
            with pytest.raises(TransportError):
                codec.recv(right)
        finally:
            right.close()


class TestCodecConfiguration:
    def test_codec_names_resolve(self):
        assert codec_from_name("json", b"k").name == "json"
        assert codec_from_name("pickle").name == "pickle"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(TransportError, match="unknown wire protocol"):
            codec_from_name("carrier-pigeon")

    def test_pickle_with_key_rejected(self):
        with pytest.raises(TransportError, match="cannot authenticate"):
            codec_from_name("pickle", b"key")

    def test_auth_key_file_round_trip(self, tmp_path):
        path = tmp_path / "key"
        path.write_bytes(b"  sekrit-value\n")
        assert load_auth_key(str(path)) == b"sekrit-value"

    def test_empty_or_missing_key_file_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.write_bytes(b"\n")
        with pytest.raises(TransportError, match="empty"):
            load_auth_key(str(empty))
        with pytest.raises(TransportError, match="cannot read"):
            load_auth_key(str(tmp_path / "missing"))


def make_server(**overrides):
    options = dict(
        shards=build_shard_specs("tqs", FAST, 1),
        sync_hours=sync_schedule(FAST.hours, 1),
        round_timeout=60.0,
        auth_key=KEY,
    )
    options.update(overrides)
    return IndexServer(**options).start()


class TestHandshake:
    def test_authenticated_client_registers(self):
        server = make_server()
        try:
            transport = RemoteSyncTransport(server.host, server.port,
                                            auth_key=KEY)
            assert transport.register(0) is None
            transport.close()
        finally:
            server.stop()

    def test_wrong_key_client_is_rejected(self):
        server = make_server()
        try:
            with pytest.raises(TransportError, match="authentication|auth key"):
                RemoteSyncTransport(server.host, server.port,
                                    auth_key=b"not-the-key")
            assert server.failure is None
            assert server.frames_rejected >= 1
        finally:
            server.stop()

    def test_legacy_pickle_client_gets_a_clean_rejection(self):
        """A v1 client must see the v2 notice, not a confusing EOF."""
        server = make_server()
        try:
            with pytest.raises(TransportError, match="protocol v2"):
                RemoteSyncTransport(server.host, server.port,
                                    protocol="pickle").register(0)
            assert server.failure is None
            # The server still serves protocol v2 clients afterwards.
            transport = RemoteSyncTransport(server.host, server.port,
                                            auth_key=KEY)
            assert transport.register(0) is None
            transport.close()
        finally:
            server.stop()

    def test_json_client_against_pickle_server_fails_cleanly(self):
        server = make_server(protocol="pickle", auth_key=None)
        try:
            with pytest.raises(TransportError, match="handshake"):
                RemoteSyncTransport(server.host, server.port, auth_key=KEY)
            assert server.failure is None
        finally:
            server.stop()

    def test_pickle_protocol_still_works_end_to_end(self):
        server = make_server(protocol="pickle", auth_key=None)
        try:
            transport = RemoteSyncTransport(server.host, server.port,
                                            protocol="pickle")
            assert transport.register(0) is None
            transport.close()
        finally:
            server.stop()

    def test_hello_required_before_other_verbs(self):
        server = make_server()
        try:
            sock = socket.create_connection((server.host, server.port),
                                            timeout=10.0)
            sock.settimeout(10.0)
            codec = JsonFrameCodec(KEY)
            codec.send(sock, (protocol.REGISTER, 0))
            reply = codec.recv(sock)
            assert reply[0] == protocol.ABORT
            assert "HELLO" in reply[1]
            sock.close()
            assert server.failure is None
        finally:
            server.stop()

    def test_future_version_is_refused(self):
        server = make_server()
        try:
            sock = socket.create_connection((server.host, server.port),
                                            timeout=10.0)
            sock.settimeout(10.0)
            codec = JsonFrameCodec(KEY)
            codec.send(sock, (protocol.HELLO, 99))
            reply = codec.recv(sock)
            assert reply[0] == protocol.ABORT
            assert "version" in reply[1]
            sock.close()
            assert server.failure is None
        finally:
            server.stop()


class TestNoPickleOnTheWire:
    def test_json_server_never_unpickles_socket_bytes(self, tmp_path):
        """A poison pickle frame must bounce without being deserialized."""
        import os

        bomb_dir = tmp_path / "boom"

        class Bomb:
            def __reduce__(self):
                return (os.mkdir, (str(bomb_dir),))

        payload = pickle.dumps(Bomb(), protocol=pickle.HIGHEST_PROTOCOL)
        # Sanity: unpickling this payload *would* fire the bomb.
        assert b"boom" in payload
        server = make_server()
        try:
            sock = socket.create_connection((server.host, server.port),
                                            timeout=10.0)
            sock.settimeout(10.0)
            sock.sendall(len(payload).to_bytes(4, "big") + payload)
            # The server answers in the v1 dialect so old clients see why.
            reply = protocol.recv_frame(sock)
            assert reply == (protocol.ABORT, protocol.V1_REJECTION)
            sock.close()
            assert not bomb_dir.exists()
            assert server.failure is None
            # And it keeps serving authenticated v2 clients.
            transport = RemoteSyncTransport(server.host, server.port,
                                            auth_key=KEY)
            assert transport.register(0) is None
            transport.close()
        finally:
            server.stop()


class TestReplayProtection:
    def test_frames_do_not_replay_across_connections(self):
        """A captured frame fails authentication on any other connection."""
        server = make_server()
        try:
            first = ScriptedClient(server.host, server.port, auth_key=KEY)
            captured = first.codec.encode((protocol.TICK, 0))
            assert first.request((protocol.TICK, 0)) == (protocol.OK,)
            second = ScriptedClient(server.host, server.port, auth_key=KEY)
            second.send_raw(captured)
            reply = second.recv()
            assert reply[0] == protocol.ABORT
            assert "authentication" in reply[1]
            # The replay cost only that connection; the campaign is healthy
            # and the original connection keeps working.
            assert server.failure is None
            assert first.request((protocol.TICK, 0)) == (protocol.OK,)
            first.close()
            second.close()
        finally:
            server.stop()

    def test_handshake_nonces_differ_per_connection(self):
        server = make_server()
        try:
            sockets = []
            nonces = set()
            for _ in range(3):
                sock = socket.create_connection((server.host, server.port),
                                                timeout=10.0)
                sock.settimeout(10.0)
                codec = JsonFrameCodec(KEY)
                codec.send(sock, (protocol.HELLO, protocol.PROTOCOL_VERSION))
                reply = codec.recv(sock)
                assert reply[0] == protocol.HELLO_OK
                nonces.add(reply[2])
                sockets.append(sock)
            assert len(nonces) == 3
            for sock in sockets:
                sock.close()
        finally:
            server.stop()


class TestJsonDeterminism:
    def test_authenticated_json_pool_matches_local_pool(self):
        """The acceptance contract: TCP/JSON+auth == in-process pool, bitwise."""

        def pool(**overrides):
            options = dict(workers=2, sync_interval=1, worker_timeout=120.0)
            options.update(overrides)
            return run_parallel_tqs_campaign(
                SIM_MYSQL, FAST, ParallelCampaignConfig(**options)
            )

        local = pool()
        remote = pool(transport="tcp", protocol="json", auth_key=KEY)
        assert remote.merged.samples == local.merged.samples
        assert remote.sync_stats == local.sync_stats
        assert remote.central_index_size == local.central_index_size
        assert remote.broadcast_entries_sent == local.broadcast_entries_sent
        assert (
            remote.broadcast_entries_suppressed
            == local.broadcast_entries_suppressed
        )
        merged_keys = {
            (incident.root_cause, incident.query_canonical_label)
            for incident in remote.merged.bug_log.incidents
        }
        local_keys = {
            (incident.root_cause, incident.query_canonical_label)
            for incident in local.merged.bug_log.incidents
        }
        assert merged_keys == local_keys
