"""Tests for the packed (protocol v3) index-entry wire encoding.

The packed codec trades per-float JSON arrays for one base64 float32 blob per
batch; these tests pin three things: the codec is lossless for everything the
ship boundary produces (float32-quantized values), hostile packed objects are
rejected before any allocation, and the HELLO negotiation keeps v2-JSON peers
interoperating with v3 ends on the same wire.
"""

import base64
import json
import math
import socket
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CampaignConfig
from repro.core.parallel import WorkerReport, build_shard_specs, sync_schedule
from repro.distributed import protocol, wire
from repro.distributed.protocol import JsonFrameCodec, SyncBroadcast
from repro.distributed.server import IndexServer
from repro.errors import ProtocolError

KEY = b"packed-wire-test-key"

FAST = CampaignConfig(
    dataset="shopping", dataset_rows=90, hours=3, queries_per_hour=6, seed=71
)

_f32 = st.floats(width=32, allow_nan=False, allow_infinity=False)
_labels = st.text(max_size=16)


@st.composite
def rectangular_entries(draw):
    """Entry batches as the ship boundary produces them: one dimensionality."""
    dims = draw(st.integers(min_value=0, max_value=6))
    count = draw(st.integers(min_value=0, max_value=5))
    vectors = draw(
        st.lists(
            st.lists(_f32, min_size=dims, max_size=dims),
            min_size=count,
            max_size=count,
        )
    )
    labels = draw(st.lists(_labels, min_size=count, max_size=count))
    return [(vector, label) for vector, label in zip(vectors, labels)]


def packed_sample(count=3, dims=4):
    entries = [
        ([float(row * dims + col) for col in range(dims)], f"L{row}")
        for row in range(count)
    ]
    return wire.encode_entries_packed(entries), entries


class TestPackedCodec:
    @settings(max_examples=200, deadline=None)
    @given(rectangular_entries())
    def test_round_trips_through_json_losslessly(self, entries):
        encoded = json.loads(json.dumps(wire.encode_entries_packed(entries)))
        decoded = wire.decode_entries(encoded)
        assert decoded == [(list(vector), label) for vector, label in entries]

    def test_decode_dispatches_on_wire_shape(self):
        packed, entries = packed_sample()
        legacy = wire.encode_entries(entries)
        assert wire.decode_entries(packed) == wire.decode_entries(legacy)

    def test_quantized_floats_survive_bit_identically(self):
        from repro.kqe.store import quantize_to_float32

        vector = quantize_to_float32([1.0 / 3.0, -2.7e-12, 8191.125])
        packed = wire.encode_entries_packed([(vector, "L")])
        ((decoded, _),) = wire.decode_entries_packed(packed)
        assert struct.pack("<3d", *decoded) == struct.pack("<3d", *vector)

    def test_packed_batches_are_at_least_three_times_smaller(self):
        entries = [
            ([(row * 64 + col) / 7.0 for col in range(64)], f"label-{row}")
            for row in range(100)
        ]
        as_json = len(json.dumps(wire.encode_entries(entries)))
        as_packed = len(json.dumps(wire.encode_entries_packed(entries)))
        assert as_packed * 3 <= as_json

    def test_ragged_batches_are_a_caller_bug(self):
        with pytest.raises(ProtocolError, match="ragged"):
            wire.encode_entries_packed([([1.0, 2.0], "A"), ([3.0], "B")])


class TestPackedRejection:
    def test_non_finite_components_are_rejected(self):
        packed, _ = packed_sample(count=1, dims=2)
        packed["data"] = base64.b64encode(
            struct.pack("<2f", math.inf, 1.0)
        ).decode("ascii")
        with pytest.raises(ProtocolError, match="not finite"):
            wire.decode_entries(packed)
        packed["data"] = base64.b64encode(
            struct.pack("<2f", 1.0, math.nan)
        ).decode("ascii")
        with pytest.raises(ProtocolError, match="not finite"):
            wire.decode_entries(packed)

    def test_forged_count_is_rejected_before_allocation(self):
        packed, _ = packed_sample()
        packed["count"] = 1 << 20
        packed["dims"] = 1 << 20  # 2^40 floats: must die at the shape check
        with pytest.raises(ProtocolError, match="implausible"):
            wire.decode_entries(packed)

    def test_count_and_labels_must_agree(self):
        packed, _ = packed_sample(count=3)
        packed["labels"] = packed["labels"][:2]
        with pytest.raises(ProtocolError, match="labels"):
            wire.decode_entries(packed)

    def test_blob_length_must_match_the_claimed_shape(self):
        packed, _ = packed_sample(count=3, dims=4)
        packed["count"] = 2  # label count now lies too; fix labels only
        packed["labels"] = packed["labels"][:2]
        with pytest.raises(ProtocolError, match="base64 chars"):
            wire.decode_entries(packed)

    def test_invalid_base64_is_rejected(self):
        packed, _ = packed_sample(count=1, dims=2)
        packed["data"] = "!" * len(packed["data"])
        with pytest.raises(ProtocolError, match="base64"):
            wire.decode_entries(packed)

    def test_negative_shape_is_rejected(self):
        packed, _ = packed_sample()
        packed["count"] = -1
        with pytest.raises(ProtocolError):
            wire.decode_entries(packed)

    def test_unknown_packed_version_is_rejected(self):
        packed, _ = packed_sample()
        packed["packed"] = 2
        with pytest.raises(ProtocolError, match="packed-batch version"):
            wire.decode_entries(packed)

    def test_non_string_labels_are_rejected(self):
        packed, _ = packed_sample(count=1, dims=1)
        packed["labels"] = [7]
        with pytest.raises(ProtocolError):
            wire.decode_entries(packed)


class TestPackedMessages:
    """Whole protocol messages survive the packed encoding unchanged."""

    ENTRIES = [
        ([1.0, 0.5, -0.25], "alpha"),
        ([0.0, 2.0, 4.0], "beta"),
    ]

    def round_trip(self, message):
        encoded = json.loads(
            json.dumps(wire.encode_message(message, packed_entries=True))
        )
        return wire.decode_message(encoded)

    def test_sync_message(self):
        message = (protocol.SYNC, 0, 2, self.ENTRIES)
        assert self.round_trip(message) == message
        # The SYNC frame really does carry the packed object form.
        obj = wire.encode_message(message, packed_entries=True)
        assert obj["entries"]["packed"] == 1

    def test_broadcast_message(self):
        broadcast = SyncBroadcast(entries=self.ENTRIES, suppressed=3, next_budget=9)
        assert self.round_trip((protocol.BROADCAST, broadcast)) == (
            protocol.BROADCAST,
            broadcast,
        )

    def test_report_message(self):
        report = WorkerReport(
            shard_id=1,
            tool="tqs",
            dbms="SimMySQL",
            dataset="shopping",
            samples=[],
            hourly_new_labels=[["a"], ["b"]],
            hourly_incidents=[],
            unsynced_entries=self.ENTRIES,
            hourly_budgets=[6, 6],
            entries_shipped=4,
            broadcast_entries_received=2,
            broadcast_entries_suppressed=1,
        )
        verb, decoded = self.round_trip((protocol.REPORT, report))
        assert verb == protocol.REPORT
        assert decoded == report


class TestVersionNegotiation:
    def make_server(self):
        return IndexServer(
            shards=build_shard_specs("tqs", FAST, 1),
            sync_hours=sync_schedule(FAST.hours, 1),
            round_timeout=60.0,
            auth_key=KEY,
        ).start()

    def hello(self, server, version):
        sock = socket.create_connection((server.host, server.port), timeout=10.0)
        sock.settimeout(10.0)
        codec = JsonFrameCodec(KEY)
        codec.send(sock, (protocol.HELLO, version))
        reply = codec.recv(sock)
        return sock, codec, reply

    def test_server_meets_a_v2_client_at_v2(self):
        server = self.make_server()
        try:
            sock, codec, reply = self.hello(server, 2)
            assert reply[0] == protocol.HELLO_OK and reply[1] == 2
            codec.negotiate(reply[1])
            codec.bind(reply[2])
            assert not codec.packed_entries
            # The v2 conversation still works end to end.
            assert codec.request(sock, (protocol.TICK, -1)) == (protocol.OK,)
            sock.close()
        finally:
            server.stop()

    def test_v3_ends_agree_on_packed_entries(self):
        server = self.make_server()
        try:
            sock, codec, reply = self.hello(server, 3)
            assert reply[0] == protocol.HELLO_OK and reply[1] == 3
            codec.negotiate(reply[1])
            codec.bind(reply[2])
            assert codec.packed_entries
            sock.close()
        finally:
            server.stop()

    def test_codec_encodes_per_negotiated_version(self):
        message = (protocol.SYNC, 0, 1, [([1.0, 2.0], "L")])
        codec = JsonFrameCodec(KEY)
        body = codec.encode(message)
        assert b'"packed"' not in body  # default: v2-compatible JSON entries
        codec.negotiate(3)
        assert b'"packed"' in codec.encode(message)
        codec.negotiate(2)
        assert b'"packed"' not in codec.encode(message)
