"""Tests for hints, the cost model and the planner."""

import pytest

from repro.errors import HintError
from repro.expr import ColumnRef, column, eq, lit
from repro.optimizer import (
    HintSet,
    JoinCostInput,
    Planner,
    choose_algorithm,
    default_hints,
    estimate_cost,
    hash_join_hints,
    join_order_hints,
    nested_loop_hints,
    no_materialization_hints,
    standard_hint_sets,
)
from repro.optimizer.hints import join_buffer_minimal_hints
from repro.plan import (
    Filter,
    Join,
    JoinAlgorithm,
    JoinStep,
    JoinType,
    Project,
    QuerySpec,
    SelectItem,
    TableRef,
)


class TestHintSet:
    def test_default_switches(self):
        hints = default_hints()
        assert hints.switch("materialization") is True
        assert hints.switch("semijoin") is True

    def test_with_switch_override(self):
        hints = no_materialization_hints()
        assert hints.switch("materialization") is False
        assert hints.switch("semijoin") is True

    def test_unknown_switch_rejected(self):
        with pytest.raises(HintError):
            default_hints().switch("does_not_exist")
        with pytest.raises(HintError):
            HintSet(switches=(("does_not_exist", True),))

    def test_join_cache_level_bounds(self):
        with pytest.raises(HintError):
            HintSet(join_cache_level=0)
        assert join_buffer_minimal_hints(1).join_cache_level == 1

    def test_algorithm_for_step(self):
        hints = HintSet(join_algorithm=JoinAlgorithm.HASH,
                        per_step_algorithms=((1, JoinAlgorithm.SORT_MERGE),))
        assert hints.algorithm_for_step(0) is JoinAlgorithm.HASH
        assert hints.algorithm_for_step(1) is JoinAlgorithm.SORT_MERGE

    def test_render_comment(self):
        assert "hash_join()" in hash_join_hints().render_comment()
        assert "JOIN_ORDER" in join_order_hints(["a", "b"]).render_comment()
        assert "materialization=off" in no_materialization_hints().render_comment()
        assert default_hints().render_comment() == "default_plan()"

    def test_standard_hint_sets_unique_names(self):
        names = [hints.name for hints in standard_hint_sets()]
        assert len(names) == len(set(names))
        assert "default" in names


class TestCostModel:
    def test_small_inner_prefers_nested_loop_family(self):
        facts = JoinCostInput(10, 5, JoinType.INNER, False, True)
        assert choose_algorithm(facts) in (
            JoinAlgorithm.BLOCK_NESTED_LOOP, JoinAlgorithm.NESTED_LOOP
        )

    def test_large_inputs_prefer_hash(self):
        facts = JoinCostInput(5000, 4000, JoinType.INNER, False, True)
        assert choose_algorithm(facts) is JoinAlgorithm.HASH

    def test_indexed_inner_prefers_index_join(self):
        facts = JoinCostInput(100, 5000, JoinType.INNER, True, True)
        assert choose_algorithm(facts) is JoinAlgorithm.INDEX_NESTED_LOOP

    def test_cross_join_uses_nested_loop(self):
        facts = JoinCostInput(100, 100, JoinType.CROSS, False, False)
        assert choose_algorithm(facts) is JoinAlgorithm.NESTED_LOOP

    def test_cost_monotone_in_cardinality(self):
        small = JoinCostInput(10, 10, JoinType.INNER, False, True)
        large = JoinCostInput(1000, 1000, JoinType.INNER, False, True)
        for algorithm in JoinAlgorithm:
            assert estimate_cost(algorithm, small) <= estimate_cost(algorithm, large)


def orders_users_query() -> QuerySpec:
    return QuerySpec(
        base=TableRef("orders", "orders"),
        joins=[
            JoinStep(TableRef("users", "users"), JoinType.INNER,
                     left_key=ColumnRef("orders", "userId"),
                     right_key=ColumnRef("users", "userId")),
            JoinStep(TableRef("goods", "goods"), JoinType.SEMI,
                     left_key=ColumnRef("orders", "goodsId"),
                     right_key=ColumnRef("goods", "goodsId")),
        ],
        select=[SelectItem(column("orders", "orderId")),
                SelectItem(column("users", "userName"))],
    )


class TestPlanner:
    def test_plan_structure(self, orders_db):
        planner = Planner(orders_db)
        plan = planner.plan(orders_users_query())
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Join)

    def test_hint_forces_algorithm(self, orders_db):
        planner = Planner(orders_db)
        plan = planner.plan(orders_users_query(), hash_join_hints())
        joins = [op for op in _walk(plan) if isinstance(op, Join)]
        assert joins and all(j.algorithm is JoinAlgorithm.HASH for j in joins)

    def test_different_hints_give_different_plans(self, orders_db):
        planner = Planner(orders_db)
        query = orders_users_query()
        explain_hash = planner.plan(query, hash_join_hints()).explain()
        explain_nl = planner.plan(query, nested_loop_hints()).explain()
        assert explain_hash != explain_nl

    def test_all_standard_hint_sets_plan_and_execute(self, orders_db):
        planner = Planner(orders_db)
        query = orders_users_query()
        results = set()
        for hints in standard_hint_sets():
            plan = planner.plan(query, hints)
            rows = frozenset(tuple(sorted(row.items())) for row in plan.rows())
            results.add(rows)
        assert len(results) == 1  # a correct engine is hint-insensitive

    def test_join_order_hint_reorders_when_valid(self, orders_db):
        planner = Planner(orders_db)
        query = orders_users_query()
        hints = join_order_hints(["orders", "goods", "users"])
        plan = planner.plan(query, hints)
        joins = [op for op in _walk(plan) if isinstance(op, Join)]
        # The outermost join should now be the users join (goods applied first).
        assert "users" in joins[0].describe()

    def test_invalid_join_order_hint_is_ignored(self, orders_db):
        planner = Planner(orders_db)
        query = orders_users_query()
        hints = join_order_hints(["goods", "orders", "users"])  # wrong base
        baseline = planner.plan(query, default_hints()).explain()
        assert planner.plan(query, hints).explain() == baseline

    def test_where_filter_is_planned(self, orders_db):
        planner = Planner(orders_db)
        query = orders_users_query()
        query.where = eq(column("orders", "orderId"), lit("0001"))
        plan = planner.plan(query)
        assert any(isinstance(op, Filter) for op in _walk(plan))

    def test_semijoin_materialization_switch(self, orders_db):
        from repro.plan import Materialize

        planner = Planner(orders_db)
        query = orders_users_query()
        with_mat = planner.plan(query, default_hints())
        without_mat = planner.plan(query, no_materialization_hints())
        assert any(isinstance(op, Materialize) for op in _walk(with_mat))
        assert not any(isinstance(op, Materialize) for op in _walk(without_mat))


def _walk(operator):
    yield operator
    for child in operator.children():
        yield from _walk(child)
