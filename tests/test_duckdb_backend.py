"""DuckDB adapter tests — skip-marked when the optional driver is absent.

CI runs these in a dedicated optional-deps leg that `pip install duckdb`;
without the driver the whole module skips (the import gate itself is covered
unconditionally in test_backend_registry.py).
"""

from __future__ import annotations

import pytest

duckdb = pytest.importorskip("duckdb")

from repro.backends import DuckDBBackend  # noqa: E402
from repro.core import (  # noqa: E402
    CampaignConfig,
    PipelineConfig,
    run_differential_campaign,
)
from repro.core.differential import DifferentialOracle  # noqa: E402
from repro.dsg import DSG, DSGConfig  # noqa: E402
from repro.engine import reference_engine  # noqa: E402


def deployed_backend(seed=21, rows=80):
    dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=rows, seed=seed))
    backend = DuckDBBackend()
    backend.deploy(dsg.database)
    return dsg, backend


class TestRoundTrip:
    def test_deploy_and_row_counts(self):
        dsg, backend = deployed_backend()
        try:
            for name in dsg.database.table_names:
                count = backend.execute_sql(
                    f'SELECT COUNT(*) AS n FROM "{name}"'
                )
                assert count.rows[0][0] == len(dsg.database.table(name).rows)
        finally:
            backend.close()

    def test_generated_queries_agree_with_reference(self):
        dsg, backend = deployed_backend()
        reference = reference_engine(dsg.database)
        oracle = DifferentialOracle(reference, backend)
        checked = 0
        try:
            while checked < 25:
                try:
                    query = dsg.generate_query()
                except Exception:
                    continue
                outcome = oracle.check(query)
                if not outcome.skipped:
                    checked += 1
                    assert outcome.matched, (
                        f"DuckDB disagreed with the reference:\n{outcome.sql}"
                    )
        finally:
            backend.close()

    def test_close_twice_is_safe(self):
        _, backend = deployed_backend()
        backend.close()
        backend.close()


class TestDifferentialCampaign:
    def test_campaign_runs_with_zero_false_positives(self):
        result = run_differential_campaign(
            DuckDBBackend(), CampaignConfig(hours=2, queries_per_hour=6, seed=9)
        )
        assert result.dbms == "DuckDB"
        assert result.final.queries_executed > 0
        assert result.final.bug_count == 0, (
            f"false positives against DuckDB: "
            f"{[i.query_sql for i in result.bug_log.incidents[:3]]}"
        )

    def test_pipelined_campaign_matches_serial(self):
        config = CampaignConfig(hours=2, queries_per_hour=6, seed=9)
        serial = run_differential_campaign(DuckDBBackend(), config)
        pipelined = run_differential_campaign(
            DuckDBBackend(), config, pipeline=PipelineConfig(batch_size=4)
        )
        assert serial.samples == pipelined.samples

    def test_widened_grammar_campaign_zero_false_positives(self):
        # The widened SQL surface — UNION / UNION ALL / INTERSECT / EXCEPT
        # compounds, WITH-wrapped statements and uncorrelated scalar
        # subqueries — differentially against real DuckDB.  DuckDB's default
        # NULL placement on ORDER BY (NULLS LAST ascending) differs from the
        # reference, so this also exercises the explicit NULLS clause path.
        result = run_differential_campaign(
            DuckDBBackend(),
            CampaignConfig(hours=2, queries_per_hour=60, seed=17,
                           dataset_rows=100, use_query_cache=True,
                           setop_probability=0.4,
                           scalar_subquery_probability=0.3,
                           cte_probability=0.25),
        )
        assert result.final.queries_executed >= 100
        assert result.final.bug_count == 0, (
            f"false positives against DuckDB: "
            f"{[i.query_sql for i in result.bug_log.incidents[:3]]}"
        )


class TestNullOrdering:
    def test_order_by_nullable_column_matches_reference(self):
        from repro.backends.sqlrender import DUCKDB_DIALECT
        from repro.expr.ast import ColumnRef
        from repro.plan.logical import (
            OrderItem,
            QuerySpec,
            SelectItem,
            TableRef,
        )

        assert DUCKDB_DIALECT.supports_nulls_ordering
        dsg, backend = deployed_backend(seed=1, rows=120)
        reference = reference_engine(dsg.database)
        try:
            for descending in (False, True):
                query = QuerySpec(
                    base=TableRef("T1", "T1"),
                    select=[SelectItem(ColumnRef("T1", "goodsId"))],
                    order_by=[OrderItem(ColumnRef("T1", "goodsId"),
                                        descending=descending)],
                    distinct=False,
                )
                execution = backend.execute(query)
                assert "NULLS" in execution.sql
                expected = reference.execute(query)
                # Order-sensitive on purpose: DuckDB's *default* placement
                # disagrees with the reference; the explicit clause fixes it.
                assert list(expected.rows) == list(execution.result.rows)
        finally:
            backend.close()
