"""Property-based tests for join semantics on randomly generated tables."""
from hypothesis import given, settings, strategies as st

from repro.catalog import Column, DatabaseSchema, ForeignKey, TableSchema
from repro.plan import (
    ExecutionHooks,
    Join,
    JoinAlgorithm,
    JoinKeySpec,
    JoinType,
    TableScan,
)
from repro.sqlvalue import NULL, TypeCategory, bigint, integer, varchar
from repro.sqlvalue.comparison import sql_equal
from repro.sqlvalue.values import is_null, normalize_row, row_sort_key
from repro.storage import Database

key_values = st.one_of(st.integers(-3, 3), st.just(NULL))


def build_db(left_keys, right_keys) -> Database:
    left_schema = TableSchema(
        "child", [Column("id", integer()), Column("fk", bigint())], implicit_key=("id",)
    )
    right_schema = TableSchema(
        "parent", [Column("pk", bigint()), Column("payload", varchar(8))],
        implicit_key=("pk",),
    )
    schema = DatabaseSchema(
        [left_schema, right_schema],
        [ForeignKey("child", ("fk",), "parent", ("pk",))],
    )
    db = Database(schema)
    for index, key in enumerate(left_keys):
        db.insert("child", {"id": index, "fk": key})
    for index, key in enumerate(right_keys):
        db.insert("parent", {"pk": key, "payload": f"p{index}"})
    return db


def run(db, join_type, algorithm):
    join = Join(
        TableScan(db, "child", "c"),
        TableScan(db, "parent", "p"),
        join_type,
        algorithm,
        JoinKeySpec("c.fk", "p.pk", TypeCategory.DECIMAL),
        hooks=ExecutionHooks(),
    )
    return join.execute()


def signature(rows, columns):
    return sorted(
        (normalize_row(tuple(row[c] for c in columns)) for row in rows),
        key=row_sort_key,
    )


@settings(max_examples=60, deadline=None)
@given(st.lists(key_values, max_size=8), st.lists(key_values, max_size=6))
def test_all_algorithms_agree_on_every_join_type(left_keys, right_keys):
    """A correct engine must return identical results regardless of algorithm."""
    db = build_db(left_keys, right_keys)
    for join_type in JoinType:
        columns = ["c.id"] if join_type in (JoinType.SEMI, JoinType.ANTI) else ["c.id", "p.pk"]
        reference = signature(run(db, join_type, JoinAlgorithm.NESTED_LOOP), columns)
        for algorithm in JoinAlgorithm:
            assert signature(run(db, join_type, algorithm), columns) == reference


@settings(max_examples=60, deadline=None)
@given(st.lists(key_values, max_size=8), st.lists(key_values, max_size=6))
def test_inner_join_equals_filtered_cross_product(left_keys, right_keys):
    db = build_db(left_keys, right_keys)
    inner = signature(run(db, JoinType.INNER, JoinAlgorithm.HASH), ["c.id", "p.pk"])
    expected = []
    for i, lk in enumerate(left_keys):
        for rk in right_keys:
            if not is_null(lk) and not is_null(rk) and sql_equal(lk, rk) is True:
                expected.append(normalize_row((i, rk)))
    assert inner == sorted(expected, key=row_sort_key)


@settings(max_examples=60, deadline=None)
@given(st.lists(key_values, max_size=8), st.lists(key_values, max_size=6))
def test_semi_plus_anti_partition_left_side(left_keys, right_keys):
    """SEMI and ANTI join results partition the left input exactly."""
    db = build_db(left_keys, right_keys)
    semi = {row["c.id"] for row in run(db, JoinType.SEMI, JoinAlgorithm.HASH)}
    anti = {row["c.id"] for row in run(db, JoinType.ANTI, JoinAlgorithm.HASH)}
    assert semi | anti == set(range(len(left_keys)))
    assert semi & anti == set()


@settings(max_examples=60, deadline=None)
@given(st.lists(key_values, max_size=8), st.lists(key_values, max_size=6))
def test_left_outer_contains_inner_plus_padded(left_keys, right_keys):
    db = build_db(left_keys, right_keys)
    inner = signature(run(db, JoinType.INNER, JoinAlgorithm.SORT_MERGE), ["c.id", "p.pk"])
    left = run(db, JoinType.LEFT_OUTER, JoinAlgorithm.SORT_MERGE)
    matched = signature([row for row in left if row["p.pk"] is not NULL], ["c.id", "p.pk"])
    assert matched == inner
    padded_ids = {row["c.id"] for row in left if row["p.pk"] is NULL}
    semi_ids = {row["c.id"] for row in run(db, JoinType.SEMI, JoinAlgorithm.HASH)}
    assert padded_ids == set(range(len(left_keys))) - semi_ids


@settings(max_examples=40, deadline=None)
@given(st.lists(key_values, max_size=6), st.lists(key_values, max_size=5))
def test_full_outer_is_union_of_left_and_right_outer(left_keys, right_keys):
    db = build_db(left_keys, right_keys)
    columns = ["c.id", "p.pk", "p.payload"]
    full = signature(run(db, JoinType.FULL_OUTER, JoinAlgorithm.HASH), columns)
    left = signature(run(db, JoinType.LEFT_OUTER, JoinAlgorithm.HASH), columns)
    right = signature(run(db, JoinType.RIGHT_OUTER, JoinAlgorithm.HASH), columns)
    assert set(left) <= set(full)
    assert set(right) <= set(full)
    assert set(full) == set(left) | set(right)
