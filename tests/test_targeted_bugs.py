"""Targeted reproductions of the paper's showcased bug classes (§5.1, Figure 1).

Each test builds the minimal data constellation the corresponding real bug
needed (a ``-0`` key, a precision-losing 2^53 pair, a NULL-keyed outer row, a
corrupted foreign key) and checks that the seeded fault produces exactly the
symptom the paper describes, while the bug-free reference engine stays correct.
"""

from repro.catalog import Column, DatabaseSchema, ForeignKey, TableSchema
from repro.engine import Engine, SIM_MARIADB, SIM_MYSQL, SIM_TIDB, SIM_XDB, reference_engine
from repro.expr import ColumnRef, column
from repro.optimizer import (
    bnlh_join_hints,
    hash_join_hints,
    join_cache_off_hints,
    merge_join_hints,
    nested_loop_hints,
    no_materialization_hints,
)
from repro.plan import JoinStep, JoinType, QuerySpec, SelectItem, TableRef
from repro.sqlvalue import NULL, bigint, double, varchar
from repro.storage import Database


def build_db(child_rows, parent_rows, key_type=double()):
    child = TableSchema(
        "child", [Column("id", bigint()), Column("fk", key_type)], implicit_key=("id",)
    )
    parent = TableSchema(
        "parent", [Column("pk", key_type), Column("name", varchar(16))],
        implicit_key=("pk",),
    )
    schema = DatabaseSchema([child, parent],
                            [ForeignKey("child", ("fk",), "parent", ("pk",))])
    db = Database(schema)
    for index, key in enumerate(child_rows):
        db.insert("child", {"id": index, "fk": key})
    for index, (key, name) in enumerate(parent_rows):
        db.insert("parent", {"pk": key, "name": name})
    return db


def join_query(join_type=JoinType.INNER, project_parent=True):
    select = [SelectItem(column("child", "id"))]
    if project_parent and join_type.exposes_right_columns:
        select.append(SelectItem(column("parent", "name")))
    return QuerySpec(
        base=TableRef("child", "child"),
        joins=[JoinStep(TableRef("parent", "parent"), join_type,
                        left_key=ColumnRef("child", "fk"),
                        right_key=ColumnRef("parent", "pk"))],
        select=select,
    )


class TestFigure1HashJoinNegativeZero:
    """Figure 1(a): hash join asserts that 0 and -0 are not equal."""

    def setup_method(self):
        self.db = build_db(child_rows=[-0.0, 1.0], parent_rows=[(0.0, "zero"), (1.0, "one")])
        self.query = join_query()

    def test_reference_engine_matches_zero(self):
        result = reference_engine(self.db).execute(self.query, hash_join_hints())
        assert (0, "zero") in result.normalized()

    def test_mysql_hash_join_misses_the_row_but_bnl_does_not(self):
        engine = Engine(self.db, SIM_MYSQL)
        hash_result = engine.execute(self.query, hash_join_hints())
        bnl_result = engine.execute(self.query, nested_loop_hints())
        assert (0, "zero") not in hash_result.normalized()   # the Figure 1(a) symptom
        assert (0, "zero") in bnl_result.normalized()          # BNL stays correct

    def test_tidb_merge_join_shows_the_same_symptom(self):
        engine = Engine(self.db, SIM_TIDB)
        merge_result = engine.execute(self.query, merge_join_hints())
        hash_result = engine.execute(self.query, hash_join_hints())
        assert (0, "zero") not in merge_result.normalized()
        assert (0, "zero") in hash_result.normalized()


class TestFigure1SemiJoinPrecisionLoss:
    """Figure 1(b): semi-join casts exact keys to double and loses precision."""

    def setup_method(self):
        self.db = build_db(
            child_rows=[2 ** 53 + 1, 7],
            parent_rows=[(2 ** 53, "big"), (7, "small")],
            key_type=bigint(),
        )
        self.query = join_query(JoinType.SEMI, project_parent=False)

    def test_reference_semi_join_only_matches_exact_keys(self):
        result = reference_engine(self.db).execute(self.query, hash_join_hints())
        assert result.normalized() == frozenset({(1,)})

    def test_mysql_hash_semi_join_matches_the_collision(self):
        engine = Engine(self.db, SIM_MYSQL)
        buggy = engine.execute(self.query, hash_join_hints())
        assert (0,) in buggy.normalized()  # 2^53+1 spuriously matches 2^53
        # The nested-loop plan with materialization disabled avoids both the
        # precision-loss bug (hash only) and the materialized-semi-join bug.
        correct = engine.execute(
            self.query, no_materialization_hints(nested_loop_hints())
        )
        assert (0,) not in correct.normalized()


class TestListing3MariaDBJoinCache:
    """Listing 3/4: outer-join padding corrupted when the join cache is restricted."""

    def setup_method(self):
        self.db = build_db(child_rows=[1.0, 99.0], parent_rows=[(1.0, "one")])
        self.query = join_query(JoinType.LEFT_OUTER)

    def test_bnlh_turns_null_padding_into_empty_string(self):
        engine = Engine(self.db, SIM_MARIADB)
        buggy = engine.execute(self.query, bnlh_join_hints())
        assert (1, "") in buggy.normalized()
        reference = engine.execute(self.query, hash_join_hints())
        assert (1, NULL) in reference.normalized()

    def test_outer_join_cache_switch_drops_matched_rows(self):
        engine = Engine(self.db, SIM_MARIADB)
        buggy = engine.execute(self.query, join_cache_off_hints("outer_join_with_cache"))
        assert (0, "one") not in buggy.normalized()


class TestListing6XdbLeftJoinConversion:
    """Listing 6: LEFT JOIN silently converted to INNER JOIN (plan-independent)."""

    def setup_method(self):
        self.db = build_db(child_rows=[1.0, NULL, 5.0], parent_rows=[(1.0, "one")])
        self.query = join_query(JoinType.LEFT_OUTER)

    def test_every_plan_loses_the_unmatched_rows(self):
        engine = Engine(self.db, SIM_XDB)
        reference = reference_engine(self.db).execute(self.query)
        results = set()
        for hints in (hash_join_hints(), nested_loop_hints(), merge_join_hints()):
            results.add(engine.execute(self.query, hints).normalized())
        assert len(results) == 1
        observed = results.pop()
        assert observed != reference.normalized()
        assert (1, NULL) not in observed and (2, NULL) not in observed


class TestListing7XdbSemiJoinWithoutMaterialization:
    """Listing 7: semi-join without materialization returns extra rows."""

    def setup_method(self):
        self.db = build_db(child_rows=[1.0, 42.0], parent_rows=[(1.0, "one")])
        self.query = join_query(JoinType.SEMI, project_parent=False)

    def test_extra_row_only_without_materialization(self):
        engine = Engine(self.db, SIM_XDB)
        with_mat = engine.execute(self.query, hash_join_hints())
        without_mat = engine.execute(self.query, no_materialization_hints(hash_join_hints()))
        assert with_mat.normalized() == frozenset({(0,)})
        assert (1,) in without_mat.normalized()
