"""Tests for the matrix-backed vector store and the LSH prefilter."""

import math

import pytest

from repro.kqe.graph_index import GraphIndex
from repro.kqe.lsh import SignRandomProjectionLSH, hyperplane_stream
from repro.kqe.store import (
    EntryBatch,
    VectorStore,
    quantize_to_float32,
    resolve_numpy,
)

np = resolve_numpy(True)


def synthetic_vectors(count, dims, seed="test-vectors"):
    """Deterministic synthetic embeddings (no ambient RNG in the test either)."""
    flat = hyperplane_stream(seed, count * dims)
    return [flat[i * dims : (i + 1) * dims] for i in range(count)]


def exact_cosine(a, b):
    dot = sum(x * y for x, y in zip(a, b))
    na = math.sqrt(sum(x * x for x in a))
    nb = math.sqrt(sum(x * x for x in b))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return dot / (na * nb)


class TestQuantize:
    def test_round_trip_is_idempotent(self):
        values = [0.1, -2.5, 3.0e-20, 1.0 / 3.0]
        once = quantize_to_float32(values)
        assert quantize_to_float32(once) == once

    def test_float32_representables_pass_through(self):
        assert quantize_to_float32([1.0, -0.5, 0.25, 2.0]) == [1.0, -0.5, 0.25, 2.0]


class TestVectorStore:
    def test_short_vectors_are_zero_padded(self):
        store = VectorStore(dims=4)
        store.append([1.0, 2.0])
        assert list(store.row(0)) == [1.0, 2.0, 0.0, 0.0]

    def test_long_vectors_widen_the_store(self):
        store = VectorStore(dims=2)
        store.append([1.0, 2.0])
        store.append([3.0, 4.0, 5.0])
        assert store.dims == 3
        assert list(store.row(0)) == [1.0, 2.0, 0.0]
        assert list(store.row(1)) == [3.0, 4.0, 5.0]

    def test_row_bounds_are_checked(self):
        store = VectorStore(dims=2)
        store.append([1.0, 0.0])
        with pytest.raises(IndexError):
            store.row(1)

    def test_empty_store_and_empty_candidates(self):
        store = VectorStore(dims=2)
        assert store.top_k([1.0, 0.0], 5) == []
        store.append([1.0, 0.0])
        assert store.top_k([1.0, 0.0], 0) == []
        assert store.top_k([1.0, 0.0], 5, candidates=[]) == []

    @pytest.mark.skipif(np is None, reason="numpy unavailable")
    def test_numpy_and_python_backends_agree(self):
        dims = 16
        vectors = synthetic_vectors(200, dims)
        fast = VectorStore(dims=dims, use_numpy=True)
        slow = VectorStore(dims=dims, use_numpy=False)
        for vector in vectors:
            fast.append(vector)
            slow.append(vector)
        for query in synthetic_vectors(20, dims, seed="queries"):
            got = fast.top_k(query, 5)
            want = slow.top_k(query, 5)
            assert [index for index, _ in got] == [index for index, _ in want]
            for (_, a), (_, b) in zip(got, want):
                assert a == pytest.approx(b, abs=1e-9)

    def test_scores_match_exact_cosine(self):
        dims = 8
        vectors = synthetic_vectors(50, dims)
        store = VectorStore(dims=dims)
        for vector in vectors:
            store.append(vector)
        query = synthetic_vectors(1, dims, seed="q")[0]
        (best, score), *_ = store.top_k(query, 1)
        assert score == pytest.approx(exact_cosine(query, vectors[best]), abs=1e-12)

    def test_ties_break_toward_lower_row_index(self):
        store = VectorStore(dims=2)
        for _ in range(4):
            store.append([1.0, 0.0])
        store.append([0.0, 1.0])
        result = store.top_k([1.0, 0.0], 3)
        assert [index for index, _ in result] == [0, 1, 2]

    def test_candidate_restriction(self):
        store = VectorStore(dims=2)
        for vector in ([1.0, 0.0], [1.0, 0.0], [0.0, 1.0]):
            store.append(vector)
        result = store.top_k([1.0, 0.0], 2, candidates=[1, 2])
        assert [index for index, _ in result] == [1, 2]

    def test_query_longer_than_store_is_exact(self):
        # Components past the store's width meet only implicit zeros; the
        # full query norm must still be in the denominator.
        store = VectorStore(dims=2)
        store.append([1.0, 0.0])
        ((_, score),) = store.top_k([1.0, 0.0, 1.0], 1)
        assert score == pytest.approx(1.0 / math.sqrt(2.0), abs=1e-12)

    def test_zero_vectors_score_zero(self):
        store = VectorStore(dims=2)
        store.append([0.0, 0.0])
        ((_, score),) = store.top_k([1.0, 0.0], 1)
        assert score == 0.0

    def test_disable_numpy_env_is_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        assert resolve_numpy(None) is None
        assert not VectorStore(dims=2).uses_numpy


class TestEntryBatch:
    def make_store(self, pairs):
        store = VectorStore(dims=2)
        labels = []
        for vector, label in pairs:
            store.append(vector)
            labels.append(label)
        return store, labels

    def test_list_compatibility(self):
        pairs = [([1.0, 0.0], "A"), ([0.0, 1.0], "B")]
        store, labels = self.make_store(pairs)
        batch = EntryBatch(store, labels, 0)
        assert len(batch) == 2
        assert batch == pairs
        assert [label for _, label in batch] == ["A", "B"]
        vector, label = batch[-1]
        assert (list(vector), label) == ([0.0, 1.0], "B")
        with pytest.raises(IndexError):
            batch[2]

    def test_view_is_pinned_while_the_store_grows(self):
        pairs = [([1.0, 0.0], "A")]
        store, labels = self.make_store(pairs)
        batch = EntryBatch(store, labels, 0)
        store.append([0.5, 0.5])
        assert len(batch) == 1
        assert batch == pairs

    def test_inequality(self):
        store, labels = self.make_store([([1.0, 0.0], "A")])
        batch = EntryBatch(store, labels, 0)
        assert batch != [([1.0, 0.0], "B")]
        assert batch != [([2.0, 0.0], "A")]
        assert batch != []

    def test_to_wire_quantizes_exactly_once(self):
        store = VectorStore(dims=2)
        store.append([1.0 / 3.0, 0.1])
        batch = EntryBatch(store, ["A"], 0)
        (vector, label), = batch.to_wire()
        assert label == "A"
        assert vector == quantize_to_float32([1.0 / 3.0, 0.1])
        # Already-quantized values survive a second trip bit-identically.
        assert quantize_to_float32(vector) == vector

    @pytest.mark.skipif(np is None, reason="numpy unavailable")
    def test_to_wire_matches_between_backends(self):
        dims = 8
        vectors = synthetic_vectors(20, dims)
        fast = VectorStore(dims=dims, use_numpy=True)
        slow = VectorStore(dims=dims, use_numpy=False)
        for vector in vectors:
            fast.append(vector)
            slow.append(vector)
        labels = [f"L{i}" for i in range(len(vectors))]
        assert (
            EntryBatch(fast, labels, 0).to_wire()
            == EntryBatch(slow, labels, 0).to_wire()
        )


class TestHyperplaneStream:
    def test_deterministic_and_bounded(self):
        first = hyperplane_stream("seed", 100)
        assert first == hyperplane_stream("seed", 100)
        assert first != hyperplane_stream("other", 100)
        assert all(-1.0 <= value < 1.0 for value in first)

    def test_prefix_stability(self):
        # Asking for more floats must not change the ones already streamed.
        assert hyperplane_stream("seed", 200)[:100] == hyperplane_stream("seed", 100)


class TestSignRandomProjectionLSH:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SignRandomProjectionLSH(dims=0)
        with pytest.raises(ValueError):
            SignRandomProjectionLSH(dims=4, bits=31)
        with pytest.raises(ValueError):
            SignRandomProjectionLSH(dims=4, tables=0)

    def test_same_config_builds_identical_tables(self):
        dims = 16
        vectors = synthetic_vectors(100, dims)
        first = SignRandomProjectionLSH(dims=dims, seed_material="kqe-lsh:v1:16:2")
        second = SignRandomProjectionLSH(dims=dims, seed_material="kqe-lsh:v1:16:2")
        for index, vector in enumerate(vectors):
            first.insert(index, vector)
            second.insert(index, vector)
        for query in synthetic_vectors(10, dims, seed="queries"):
            assert first.candidates(query) == second.candidates(query)

    @pytest.mark.skipif(np is None, reason="numpy unavailable")
    def test_numpy_and_python_keys_agree(self):
        dims = 12
        fast = SignRandomProjectionLSH(dims=dims, use_numpy=True)
        slow = SignRandomProjectionLSH(dims=dims, use_numpy=False)
        for vector in synthetic_vectors(50, dims):
            assert fast.keys(vector) == slow.keys(vector)

    @pytest.mark.skipif(np is None, reason="numpy unavailable")
    def test_insert_matrix_matches_per_row_inserts(self):
        dims = 16
        vectors = synthetic_vectors(64, dims)
        one_by_one = SignRandomProjectionLSH(dims=dims)
        bulk = SignRandomProjectionLSH(dims=dims)
        for index, vector in enumerate(vectors):
            one_by_one.insert(index, vector)
        bulk.insert_matrix(0, np.asarray(vectors))
        assert len(bulk) == len(one_by_one) == 64
        for query in synthetic_vectors(10, dims, seed="queries"):
            assert bulk.candidates(query) == one_by_one.candidates(query)

    def test_self_query_finds_itself(self):
        dims = 16
        vectors = synthetic_vectors(200, dims)
        lsh = SignRandomProjectionLSH(dims=dims)
        for index, vector in enumerate(vectors):
            lsh.insert(index, vector)
        # A stored vector collides with itself in every table: perfect recall
        # on exact matches, the floor any prefilter must clear.
        for index, vector in enumerate(vectors):
            assert index in lsh.candidates(vector)


class TestApproximateNearest:
    def make_index(self, count, lsh_min_size):
        index = GraphIndex(lsh_min_size=lsh_min_size)
        dims = index.embedder.dimensions
        for position, vector in enumerate(synthetic_vectors(count, dims)):
            index.add_embedding(vector, f"L{position}")
        return index

    def test_small_indexes_use_the_exact_scan(self):
        index = self.make_index(64, lsh_min_size=4096)
        query = synthetic_vectors(1, index.embedder.dimensions, seed="q")[0]
        assert index.nearest_by_vector(query, k=3) == index.nearest_by_vector(
            query, k=3, approximate=False
        )

    def test_lsh_engages_and_finds_exact_matches(self):
        index = self.make_index(300, lsh_min_size=100)
        dims = index.embedder.dimensions
        hits = 0
        for position, vector in enumerate(synthetic_vectors(300, dims)):
            result = index.nearest_by_vector(vector, k=1)
            if result and result[0][0] == position:
                hits += 1
        # Self-queries collide with themselves in every table; the only misses
        # allowed are ties (distinct rows with identical similarity).
        assert hits >= 295


class TestLegacyBucketSkew:
    """Regression: the pre-LSH bucketing degenerated on realistic embeddings.

    The old index bucketed each vector by ``argmax(vector) % bucket_count``.
    KQE embeddings of real query graphs share their heaviest feature (the
    ubiquitous join-skeleton tokens), so nearly everything landed in one
    bucket and "approximate" lookups degenerated to full scans of it.  This
    test documents that skew and pins the LSH replacement's spread.
    """

    def test_argmax_bucketing_collapses_on_shared_dominant_features(self):
        dims = 16
        bucket_count = 16
        # Every vector shares one dominant feature (so argmax is constant)
        # but the rest of the geometry genuinely differs between vectors.
        base = [0.0] * dims
        base[3] = 2.0
        vectors = []
        for noise in synthetic_vectors(200, dims, seed="skew"):
            vectors.append([b + 0.9 * n for b, n in zip(base, noise)])

        legacy_counts = [0] * bucket_count
        for vector in vectors:
            argmax = max(range(dims), key=lambda i: vector[i])
            legacy_counts[argmax % bucket_count] += 1
        # The legacy scheme: one bucket holds (nearly) every entry.
        assert max(legacy_counts) >= 0.99 * len(vectors)

        lsh = SignRandomProjectionLSH(dims=dims, tables=4, bits=8)
        for index, vector in enumerate(vectors):
            lsh.insert(index, vector)
        largest = max(
            max(len(rows) for rows in table.values()) for table in lsh._buckets
        )
        # Sign projections split on the *noise*, not the shared dominant
        # component, so no single bucket degenerates into a full scan.
        assert largest <= 0.5 * len(vectors)
