"""Unit tests for the dialect-parameterized SQL renderer."""

from __future__ import annotations

import sqlite3
from decimal import Decimal

import pytest

from repro.backends import (
    ANSI_DIALECT,
    MYSQL_DIALECT,
    SQLITE_DIALECT,
    SQLRenderer,
)
from repro.errors import RenderError
from repro.expr.ast import (
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    FunctionCall,
    InList,
    IsNull,
    Not,
    Or,
    column,
    lit,
)
from repro.plan.logical import (
    AggregateFunction,
    JoinStep,
    JoinType,
    QuerySpec,
    SelectItem,
    TableRef,
)
from repro.sqlvalue.values import NULL


@pytest.fixture
def renderer() -> SQLRenderer:
    return SQLRenderer(SQLITE_DIALECT)


# ----------------------------------------------------------------- literals


def test_literals(renderer: SQLRenderer):
    assert renderer.literal(NULL) == "NULL"
    assert renderer.literal(None) == "NULL"
    assert renderer.literal(True) == "1"
    assert renderer.literal(False) == "0"
    assert renderer.literal(42) == "42"
    assert renderer.literal(-1.5) == "-1.5"
    assert renderer.literal(Decimal("15.10")) == "15.10"
    assert renderer.literal("it's") == "'it''s'"


def test_non_finite_floats_are_rejected(renderer: SQLRenderer):
    with pytest.raises(RenderError):
        renderer.literal(float("inf"))
    with pytest.raises(RenderError):
        renderer.literal(float("nan"))


def test_identifier_quoting(renderer: SQLRenderer):
    assert renderer.ident("orders") == '"orders"'
    assert renderer.qualified("t1", "userId") == '"t1"."userId"'
    mysql = SQLRenderer(MYSQL_DIALECT)
    assert mysql.ident("orders") == "`orders`"
    with pytest.raises(RenderError):
        renderer.ident('bad"name')


# -------------------------------------------------------------- expressions


def test_expression_rendering(renderer: SQLRenderer):
    expr = Or(
        Comparison("<=", column("t", "a"), lit(3)),
        Not(IsNull(column("t", "b"))),
        Between(column("t", "c"), lit(1), lit(9), negated=True),
        InList(column("t", "d"), (lit("x"), lit("y")), negated=True),
    )
    text = renderer.expression(expr)
    assert '("t"."a" <= 3)' in text
    assert '(NOT ("t"."b" IS NULL))' in text
    assert 'NOT BETWEEN 1 AND 9' in text
    assert "NOT IN ('x', 'y')" in text


def test_null_safe_equal_is_dialect_specific():
    expr = Comparison("<=>", column("t", "a"), lit(1))
    assert "IS 1" in SQLRenderer(SQLITE_DIALECT).expression(expr)
    assert "<=> 1" in SQLRenderer(MYSQL_DIALECT).expression(expr)
    assert "IS NOT DISTINCT FROM" in SQLRenderer(ANSI_DIALECT).expression(expr)


def test_division_casts_to_real_on_sqlite(renderer: SQLRenderer):
    expr = Arithmetic("/", column("t", "a"), lit(2))
    assert renderer.expression(expr) == '(CAST("t"."a" AS REAL) / 2)'
    # SQLite would otherwise truncate: the reference divides in decimals.
    connection = sqlite3.connect(":memory:")
    assert connection.execute("SELECT CAST(7 AS REAL) / 2").fetchone()[0] == 3.5
    assert connection.execute("SELECT 7 / 2").fetchone()[0] == 3


def test_function_rendering(renderer: SQLRenderer):
    expr = FunctionCall("coalesce", (column("t", "a"), lit(0)))
    assert renderer.expression(expr) == 'COALESCE("t"."a", 0)'


# ------------------------------------------------------------------ queries


def _two_table_query(join_type: JoinType) -> QuerySpec:
    step_kwargs = {}
    if join_type is not JoinType.CROSS:
        step_kwargs = dict(
            left_key=ColumnRef("a", "k"), right_key=ColumnRef("b", "k")
        )
    return QuerySpec(
        base=TableRef("ta", "a"),
        joins=[JoinStep(TableRef("tb", "b"), join_type, **step_kwargs)],
        select=[SelectItem(ColumnRef("a", "k"))],
    )


def test_semi_join_renders_as_exists(renderer: SQLRenderer):
    sql = renderer.query(_two_table_query(JoinType.SEMI))
    assert "EXISTS (SELECT 1 FROM" in sql
    assert "IN (SELECT" not in sql
    assert "JOIN" not in sql


def test_anti_join_renders_as_not_exists(renderer: SQLRenderer):
    sql = renderer.query(_two_table_query(JoinType.ANTI))
    assert "NOT EXISTS (SELECT 1 FROM" in sql


def test_unsupported_joins_raise_for_dialect():
    mysql = SQLRenderer(MYSQL_DIALECT)
    with pytest.raises(RenderError):
        mysql.query(_two_table_query(JoinType.FULL_OUTER))
    # SQLite 3.39+ parses FULL OUTER JOIN, so the sqlite spec allows it.
    assert "FULL OUTER JOIN" in SQLRenderer(SQLITE_DIALECT).query(
        _two_table_query(JoinType.FULL_OUTER)
    )


def test_aggregates_render_with_distinct(renderer: SQLRenderer):
    query = QuerySpec(
        base=TableRef("ta", "a"),
        joins=[
            JoinStep(TableRef("tb", "b"), JoinType.INNER,
                     left_key=ColumnRef("a", "k"), right_key=ColumnRef("b", "k"))
        ],
        select=[
            SelectItem(ColumnRef("a", "k")),
            SelectItem(ColumnRef("b", "v"), aggregate=AggregateFunction.COUNT),
        ],
        group_by=[ColumnRef("a", "k")],
    )
    sql = renderer.query(query)
    # The reference Project evaluates every aggregate over deduplicated inputs.
    assert 'COUNT(DISTINCT "b"."v")' in sql
    assert 'GROUP BY "a"."k"' in sql
    assert "SELECT DISTINCT" not in sql


def test_duplicate_output_names_are_disambiguated(renderer: SQLRenderer):
    query = QuerySpec(
        base=TableRef("ta", "a"),
        joins=[
            JoinStep(TableRef("tb", "b"), JoinType.INNER,
                     left_key=ColumnRef("a", "k"), right_key=ColumnRef("b", "k"))
        ],
        select=[SelectItem(ColumnRef("a", "k")), SelectItem(ColumnRef("b", "k"))],
    )
    assert query.output_columns() == ["k", "k_1"]
    sql = renderer.query(query)
    assert 'AS "k"' in sql and 'AS "k_1"' in sql


def test_hint_comments_only_where_meaningful():
    query = _two_table_query(JoinType.INNER)
    assert "/*+ HASH_JOIN */" in SQLRenderer(MYSQL_DIALECT).query(
        query, hint_comment="HASH_JOIN"
    )
    assert "/*+" not in SQLRenderer(SQLITE_DIALECT).query(
        query, hint_comment="HASH_JOIN"
    )


def test_rendered_query_parses_on_sqlite(renderer: SQLRenderer):
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE ta (k INTEGER)")
    connection.execute("CREATE TABLE tb (k INTEGER)")
    for join_type in JoinType:
        sql = renderer.query(_two_table_query(join_type))
        connection.execute(sql)  # must not raise
