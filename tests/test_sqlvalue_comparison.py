"""Tests for three-valued logic comparisons and hash-key normalization."""

from decimal import Decimal
from hypothesis import given, strategies as st

from repro.sqlvalue import (
    NULL,
    UNKNOWN,
    correct_hash_key,
    logical_and,
    logical_not,
    logical_or,
    null_safe_equal,
    sql_compare,
    sql_equal,
    sql_greater,
    sql_less,
    sql_less_equal,
    sql_not_equal,
    truth_value,
)


class TestSqlCompare:
    def test_null_is_unknown(self):
        assert sql_compare(NULL, 1) is UNKNOWN
        assert sql_compare(1, NULL) is UNKNOWN
        assert sql_compare(NULL, NULL) is UNKNOWN

    def test_numeric_cross_type(self):
        assert sql_compare(1, 1.0) == 0
        assert sql_compare(Decimal("2.5"), 2) == 1
        assert sql_compare(2, Decimal("2.5")) == -1

    def test_string_number_uses_exact_domain(self):
        assert sql_equal("123", 123) is True
        assert sql_equal("9007199254740993", 9007199254740993) is True
        assert sql_equal("9007199254740993", 9007199254740992) is False

    def test_negative_zero_equals_zero(self):
        assert sql_equal(-0.0, 0.0) is True
        assert sql_equal(Decimal("-0"), 0) is True

    def test_string_comparison(self):
        assert sql_less("apple", "banana") is True
        assert sql_greater("b", "a") is True

    def test_non_numeric_string_vs_number(self):
        assert sql_equal("abc", 0) is True  # MySQL leading-prefix conversion

    def test_operators(self):
        assert sql_not_equal(1, 2) is True
        assert sql_less_equal(2, 2) is True
        assert sql_greater(3, 2) is True


class TestNullSafeEqual:
    def test_null_null(self):
        assert null_safe_equal(NULL, NULL) is True

    def test_null_value(self):
        assert null_safe_equal(NULL, 0) is False
        assert null_safe_equal(0, NULL) is False

    def test_values(self):
        assert null_safe_equal(1, 1.0) is True
        assert null_safe_equal(1, 2) is False


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert logical_and(True, True) is True
        assert logical_and(True, False) is False
        assert logical_and(False, UNKNOWN) is False
        assert logical_and(True, UNKNOWN) is UNKNOWN

    def test_or_truth_table(self):
        assert logical_or(False, False) is False
        assert logical_or(False, True) is True
        assert logical_or(True, UNKNOWN) is True
        assert logical_or(False, UNKNOWN) is UNKNOWN

    def test_not(self):
        assert logical_not(True) is False
        assert logical_not(UNKNOWN) is UNKNOWN

    def test_truth_value_of_values(self):
        assert truth_value(NULL) is UNKNOWN
        assert truth_value(0) is False
        assert truth_value(2.5) is True
        assert truth_value("abc") is False
        assert truth_value("1x") is True


class TestCorrectHashKey:
    def test_negative_zero_same_bucket(self):
        assert correct_hash_key(-0.0) == correct_hash_key(0.0)

    def test_cross_type_same_bucket(self):
        assert correct_hash_key(1) == correct_hash_key(1.0) == correct_hash_key(Decimal(1))

    def test_null_passthrough(self):
        assert correct_hash_key(NULL) is NULL

    def test_big_integers_stay_distinct(self):
        assert correct_hash_key(2 ** 53) != correct_hash_key(2 ** 53 + 1)


@given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
def test_sql_compare_is_antisymmetric(a, b):
    assert sql_compare(a, b) == -sql_compare(b, a)


@given(st.one_of(st.integers(-100, 100), st.floats(-100, 100, allow_nan=False),
                 st.text(max_size=4)))
def test_sql_equal_is_reflexive_for_non_null(value):
    assert sql_equal(value, value) is True


@given(st.booleans() | st.none(), st.booleans() | st.none())
def test_de_morgan_holds_in_3vl(a, b):
    assert logical_not(logical_and(a, b)) == logical_or(logical_not(a), logical_not(b))
