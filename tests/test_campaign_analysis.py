"""Tests for campaigns, the ablation driver, parallel search and reporting."""

import pytest

from repro.analysis import (
    compare_final,
    growth_is_monotonic,
    linearity_score,
    render_ablation,
    render_bug_type_details,
    render_dbms_overview,
    render_detected_bugs,
    render_series,
    render_table,
    saturation_hour,
)
from repro.baselines import make_baseline
from repro.core import (
    CampaignConfig,
    ParallelSearchConfig,
    ParallelSearchSimulator,
    run_ablation,
    run_baseline_campaign,
    run_tqs_campaign,
)
from repro.engine import SIM_MYSQL, SIM_TIDB
from repro.errors import CampaignError

FAST = CampaignConfig(dataset="shopping", dataset_rows=90, hours=3,
                      queries_per_hour=4, seed=71)


@pytest.fixture(scope="module")
def tqs_campaign():
    return run_tqs_campaign(SIM_MYSQL, FAST)


class TestCampaign:
    def test_samples_cover_every_hour(self, tqs_campaign):
        assert [s.hour for s in tqs_campaign.samples] == [1, 2, 3]
        assert tqs_campaign.tool == "TQS"
        assert tqs_campaign.dbms == "SimMySQL"

    def test_series_are_cumulative_and_monotonic(self, tqs_campaign):
        for metric in ("queries_generated", "isomorphic_sets", "bug_count",
                       "bug_type_count"):
            assert growth_is_monotonic(tqs_campaign.series(metric)), metric

    def test_final_sample_and_bug_log(self, tqs_campaign):
        final = tqs_campaign.final
        assert final.queries_generated <= FAST.hours * FAST.queries_per_hour
        assert tqs_campaign.bug_log is not None
        assert tqs_campaign.bug_log.bug_count == final.bug_count

    def test_empty_campaign_result_raises(self):
        from repro.core import CampaignResult

        with pytest.raises(CampaignError):
            CampaignResult(tool="TQS", dbms="X", dataset="d").final

    def test_baseline_campaign_runs(self):
        result = run_baseline_campaign(make_baseline("NoRec"), SIM_MYSQL, FAST)
        assert result.tool == "NoRec"
        assert len(result.samples) == FAST.hours
        assert result.final.queries_generated > 0

    def test_ablation_variants_configured_correctly(self):
        config = CampaignConfig(dataset="shopping", dataset_rows=90, hours=2,
                                queries_per_hour=3, seed=73)
        results = run_ablation(SIM_TIDB, config)
        assert set(results) == {"TQS", "TQS!Noise", "TQS!GT", "TQS!KQE"}
        assert results["TQS!Noise"].tool == "TQS!Noise"
        # The TQS!GT variant must rely on differential testing exclusively.
        assert all(incident.detection_mode == "differential"
                   for incident in results["TQS!GT"].bug_log.incidents)
        assert all(incident.detection_mode == "ground_truth"
                   for incident in results["TQS"].bug_log.incidents)


class TestParallelSearch:
    def test_sweep_scales_query_throughput(self):
        simulator = ParallelSearchSimulator(
            ParallelSearchConfig(dataset="shopping", dataset_rows=80,
                                 per_client_budget=15, seed=75)
        )
        results = simulator.sweep(max_clients=3)
        assert [r.clients for r in results] == [1, 2, 3]
        totals = [r.queries_generated for r in results]
        assert totals[0] < totals[-1]
        assert all(r.sync_operations == r.queries_generated for r in results)
        assert all(r.queries_per_second > 0 for r in results)

    def test_invalid_client_count(self):
        with pytest.raises(ValueError):
            ParallelSearchSimulator().run(0)


class TestAnalysisHelpers:
    def test_compare_final(self, tqs_campaign):
        baseline = run_baseline_campaign(make_baseline("PQS"), SIM_MYSQL, FAST)
        comparisons = compare_final("isomorphic_sets", tqs_campaign,
                                    {"PQS": baseline})
        assert comparisons[0].metric == "isomorphic_sets"
        assert comparisons[0].ratio >= 0

    def test_series_shape_helpers(self):
        assert growth_is_monotonic([1, 2, 2, 5])
        assert not growth_is_monotonic([3, 2])
        assert saturation_hour([1, 4, 7, 7, 7]) == 3
        assert saturation_hour([]) is None
        assert linearity_score([1, 2, 3, 4]) == pytest.approx(1.0)
        assert linearity_score([5]) == 1.0

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, "xyz"], [22, "q"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a " in lines[1] and "bb" in lines[1]

    def test_render_dbms_overview_lists_all_dialects(self):
        text = render_dbms_overview()
        for name in ("SimMySQL", "SimMariaDB", "SimTiDB", "SimXDB"):
            assert name in text

    def test_render_detected_bugs_and_details(self, tqs_campaign):
        text = render_detected_bugs({"SimMySQL": tqs_campaign})
        assert "TOTAL" in text
        details = render_bug_type_details(tqs_campaign, SIM_MYSQL)
        assert "Semi-join" in details or "semi-join" in details.lower()

    def test_render_series_and_ablation(self, tqs_campaign):
        series_text = render_series("fig", [1, 2, 3],
                                    {"TQS": tqs_campaign.series("bug_count")})
        assert "hour" in series_text and "TQS" in series_text
        ablation_text = render_ablation({"SimMySQL": {"TQS": tqs_campaign}})
        assert "Table 5" in ablation_text
