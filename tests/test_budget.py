"""Tests for pluggable shard budget policies (repro.core.budget)."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import parallel_result_to_dict
from repro.core import (
    AdaptiveBudgetPolicy,
    CampaignConfig,
    EvenBudgetPolicy,
    ParallelCampaignConfig,
    budget_policy_from_name,
    register_budget_policy,
    registered_budget_policies,
    run_parallel_tqs_campaign,
    split_budget,
)
from repro.core.budget import _POLICY_FACTORIES, redistribute_budget
from repro.distributed.coordinator import CentralCoordinator
from repro.engine import SIM_MYSQL
from repro.errors import CampaignError


# ----------------------------------------------------------------- unit tests


class TestSplitBudget:
    def test_largest_remainder_split(self):
        assert split_budget(14, 4) == [4, 4, 3, 3]
        assert split_budget(12, 4) == [3, 3, 3, 3]
        assert split_budget(2, 3) == [1, 1, 0]

    def test_zero_shares_rejected(self):
        with pytest.raises(CampaignError):
            split_budget(10, 0)

    def test_zero_budget_splits_to_zeros(self):
        """Zero-budget hours are legal: every shard idles, nothing crashes."""
        assert split_budget(0, 3) == [0, 0, 0]


class TestRebalanceEdgeCases:
    def test_single_shard_rebalance_keeps_the_whole_budget(self):
        policy = AdaptiveBudgetPolicy()
        assert policy.rebalance({3: 7}, {3: 0}) == {3: 7}
        assert policy.rebalance({3: 7}, {3: 1000}) == {3: 7}

    def test_zero_total_budget_rebalances_to_zeros(self):
        policy = AdaptiveBudgetPolicy()
        allocation = policy.rebalance({0: 0, 1: 0}, {0: 5, 1: 0})
        assert allocation == {0: 0, 1: 0}

    def test_even_policy_zero_budget_identity(self):
        policy = EvenBudgetPolicy()
        assert policy.rebalance({0: 0, 1: 0}, {0: 9, 1: 9}) == {0: 0, 1: 0}


class TestRedistributeBudget:
    def test_freed_budget_goes_to_survivors_largest_remainder(self):
        assert redistribute_budget({0: 4, 1: 4, 2: 5}, 2) == {0: 7, 1: 6}

    def test_total_is_conserved(self):
        budgets = {0: 3, 1: 5, 2: 7, 3: 2}
        for evicted in budgets:
            result = redistribute_budget(budgets, evicted)
            assert sum(result.values()) == sum(budgets.values())
            assert evicted not in result

    def test_unknown_shard_is_a_no_op(self):
        budgets = {0: 4, 1: 4}
        assert redistribute_budget(budgets, 9) == budgets

    def test_sole_shard_eviction_empties_the_allocation(self):
        assert redistribute_budget({0: 6}, 0) == {}

    def test_zero_budget_eviction_changes_nothing_else(self):
        assert redistribute_budget({0: 0, 1: 6}, 0) == {1: 6}


class TestEvenPolicy:
    def test_rebalance_is_identity(self):
        policy = EvenBudgetPolicy()
        budgets = {0: 4, 1: 4, 2: 4}
        assert policy.rebalance(budgets, {0: 9, 1: 0, 2: 3}) == budgets


class TestAdaptivePolicy:
    def test_total_budget_conserved(self):
        policy = AdaptiveBudgetPolicy()
        budgets = {0: 6, 1: 6, 2: 6, 3: 6}
        for novel in ({0: 10, 1: 0, 2: 5, 3: 1}, {0: 0, 1: 0, 2: 0, 3: 0},
                      {0: 1, 1: 1, 2: 1, 3: 100}):
            allocation = policy.rebalance(budgets, novel)
            assert sum(allocation.values()) == sum(budgets.values())
            assert set(allocation) == set(budgets)
            budgets = allocation

    def test_monotone_rebalancing(self):
        """More novel labels never means a smaller allocation than a peer."""
        policy = AdaptiveBudgetPolicy()
        budgets = {0: 8, 1: 8, 2: 8}
        novel = {0: 12, 1: 3, 2: 0}
        allocation = policy.rebalance(budgets, novel)
        assert allocation[0] >= allocation[1] >= allocation[2]
        assert allocation[0] > allocation[2]  # the signal actually moves budget

    def test_floor_keeps_cold_shards_probing(self):
        policy = AdaptiveBudgetPolicy(min_budget=2)
        allocation = policy.rebalance({0: 10, 1: 10}, {0: 1000, 1: 0})
        assert allocation[1] >= 2
        assert sum(allocation.values()) == 20

    def test_small_total_falls_back_to_even(self):
        policy = AdaptiveBudgetPolicy(min_budget=5)
        allocation = policy.rebalance({0: 2, 1: 2}, {0: 50, 1: 0})
        assert sum(allocation.values()) == 4

    def test_rebalance_is_deterministic(self):
        policy = AdaptiveBudgetPolicy()
        budgets = {0: 7, 1: 7, 2: 7}
        novel = {0: 2, 1: 2, 2: 2}
        assert policy.rebalance(budgets, novel) == policy.rebalance(
            budgets, novel
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CampaignError):
            AdaptiveBudgetPolicy(min_budget=-1)
        with pytest.raises(CampaignError):
            AdaptiveBudgetPolicy(smoothing=0.0)


class TestPolicyRegistry:
    def test_builtin_policies_resolve(self):
        assert isinstance(budget_policy_from_name("even"), EvenBudgetPolicy)
        assert isinstance(budget_policy_from_name("adaptive"),
                          AdaptiveBudgetPolicy)
        assert {"even", "adaptive"} <= set(registered_budget_policies())

    def test_unknown_policy_rejected(self):
        with pytest.raises(CampaignError, match="unknown budget policy"):
            budget_policy_from_name("psychic")

    def test_third_party_registration(self):
        class GreedyPolicy(EvenBudgetPolicy):
            name = "greedy"

        register_budget_policy("greedy", GreedyPolicy)
        try:
            assert isinstance(budget_policy_from_name("greedy"), GreedyPolicy)
        finally:
            _POLICY_FACTORIES.pop("greedy", None)


# ------------------------------------------------- coordinator budget decisions


class TestCoordinatorBudgets:
    def entry(self, label):
        return ([0.0, 1.0], label)

    def test_novelty_credited_in_shard_order_and_budgets_broadcast(self):
        coordinator = CentralCoordinator(
            prune=True,
            budget_policy=AdaptiveBudgetPolicy(),
            initial_budgets={0: 5, 1: 5},
        )
        # Both ship L1; shard 0 (lower id) gets the novelty credit.  Shard 0
        # also ships a second novel label.
        broadcasts = coordinator.complete_round(
            {0: [self.entry("L1"), self.entry("L2")], 1: [self.entry("L1")]}
        )
        assert broadcasts[0].next_budget is not None
        assert broadcasts[1].next_budget is not None
        assert broadcasts[0].next_budget + broadcasts[1].next_budget == 10
        assert broadcasts[0].next_budget >= broadcasts[1].next_budget

    def test_no_policy_means_no_budget_broadcast(self):
        coordinator = CentralCoordinator(prune=True)
        broadcasts = coordinator.complete_round(
            {0: [self.entry("L1")], 1: [self.entry("L2")]}
        )
        assert broadcasts[0].next_budget is None
        assert broadcasts[1].next_budget is None


class TestCoordinatorEviction:
    def entry(self, label):
        return ([0.0, 1.0], label)

    def test_eviction_conserves_total_without_a_policy(self):
        coordinator = CentralCoordinator(
            prune=True, initial_budgets={0: 4, 1: 4, 2: 4}
        )
        coordinator.evict(1)
        assert coordinator.budgets == {0: 6, 2: 6}
        # Even without a policy, the next round's broadcasts must carry the
        # redistributed allocation to the survivors exactly once.
        first = coordinator.complete_round(
            {0: [self.entry("L1")], 2: [self.entry("L2")]}
        )
        assert first[0].next_budget == 6
        assert first[2].next_budget == 6
        second = coordinator.complete_round({0: [], 2: []})
        assert second[0].next_budget is None
        assert second[2].next_budget is None

    def test_eviction_conserves_total_under_adaptive_policy(self):
        coordinator = CentralCoordinator(
            prune=True,
            budget_policy=AdaptiveBudgetPolicy(),
            initial_budgets={0: 6, 1: 6, 2: 6},
        )
        coordinator.evict(0)
        assert sum(coordinator.budgets.values()) == 18
        broadcasts = coordinator.complete_round(
            {1: [self.entry("L1")], 2: []}
        )
        assert broadcasts[1].next_budget + broadcasts[2].next_budget == 18

    def test_eviction_drops_the_workers_novelty_bookkeeping(self):
        coordinator = CentralCoordinator(prune=True, initial_budgets={0: 2, 1: 2})
        coordinator.complete_round({0: [self.entry("L1")], 1: []})
        assert coordinator.known_labels(0)
        coordinator.evict(0)
        assert 0 not in coordinator._known
        assert coordinator.budgets == {1: 4}

    def test_evicting_an_unbudgeted_shard_is_harmless(self):
        coordinator = CentralCoordinator(prune=True, initial_budgets={0: 4})
        coordinator.evict(7)
        assert coordinator.budgets == {0: 4}
        broadcasts = coordinator.complete_round({0: []})
        assert broadcasts[0].next_budget is None


# ------------------------------------------------------------ end-to-end pool


FAST = CampaignConfig(dataset="shopping", dataset_rows=90, hours=4,
                      queries_per_hour=8, seed=71)


class TestAdaptiveParallelCampaign:
    def run_pool(self):
        return run_parallel_tqs_campaign(
            SIM_MYSQL, FAST,
            ParallelCampaignConfig(workers=2, sync_interval=1,
                                   worker_timeout=120.0,
                                   budget_policy="adaptive"),
        )

    def test_adaptive_campaign_is_deterministic(self):
        first = self.run_pool()
        second = self.run_pool()
        assert first.merged.samples == second.merged.samples
        assert ([s.hourly_budgets for s in first.sync_stats]
                == [s.hourly_budgets for s in second.sync_stats])

    def test_budget_series_conserve_hourly_total(self):
        outcome = self.run_pool()
        assert outcome.budget_policy == "adaptive"
        series = [stats.hourly_budgets for stats in outcome.sync_stats]
        assert all(len(budgets) == FAST.hours for budgets in series)
        for hour_index in range(FAST.hours):
            assert (sum(budgets[hour_index] for budgets in series)
                    == FAST.queries_per_hour)
        # Budget identity survives rebalancing: every inner-loop iteration is
        # still accounted as a success or a rejection.
        merged = outcome.merged.final
        assert (merged.queries_generated + merged.generations_rejected
                == FAST.hours * FAST.queries_per_hour)

    def test_budget_series_surface_in_campaign_json(self):
        outcome = self.run_pool()
        payload = parallel_result_to_dict(outcome)
        assert payload["summary"]["budget_policy"] == "adaptive"
        for shard in payload["summary"]["shards"]:
            assert len(shard["hourly_budgets"]) == FAST.hours

    def test_even_policy_keeps_static_budgets(self):
        outcome = run_parallel_tqs_campaign(
            SIM_MYSQL, FAST,
            ParallelCampaignConfig(workers=2, sync_interval=1,
                                   worker_timeout=120.0),
        )
        assert outcome.budget_policy == "even"
        for stats in outcome.sync_stats:
            assert len(set(stats.hourly_budgets)) == 1

    def test_unknown_policy_fails_fast(self):
        with pytest.raises(CampaignError, match="unknown budget policy"):
            run_parallel_tqs_campaign(
                SIM_MYSQL, FAST,
                ParallelCampaignConfig(workers=2, budget_policy="psychic"),
            )
