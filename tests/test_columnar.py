"""Row executor == columnar executor, exactly, over generated queries.

The columnar executor is only admissible as a reference backend if it is
indistinguishable from the row interpreter: same columns, same rows in the
same order, same value *types* (int vs float vs Decimal vs NULL), for every
query the DSG random walk can produce — with and without numpy.  The
property test below draws (dataset, seed, query, numpy-mode) combinations
from cached pools so hypothesis explores the space without rebuilding
databases per example.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro import DSG, DSGConfig, reference_engine
from repro.engine.columnar import ColumnarExecutor
from repro.engine.executor import executor_from_name, registered_executors
from repro.errors import ExecutionError

DATASETS = ("shopping", "kddcup")
SEEDS = (1, 2, 3)
POOL_SIZE = 30

_DSG_CACHE = {}
_QUERY_CACHE = {}


def dsg_for(dataset, seed):
    key = (dataset, seed)
    if key not in _DSG_CACHE:
        _DSG_CACHE[key] = DSG(
            DSGConfig(dataset=dataset, dataset_rows=90, seed=seed)
        )
    return _DSG_CACHE[key]


def query_pool(dataset, seed):
    key = (dataset, seed)
    if key not in _QUERY_CACHE:
        dsg = dsg_for(dataset, seed)
        _QUERY_CACHE[key] = dsg.query_generator.generate_many(POOL_SIZE)
    return _QUERY_CACHE[key]


def typed_rows(result):
    """Rows with every value tagged by its concrete type.

    ``1 == 1.0 == True`` in Python, so plain tuple equality would let a
    type drift (int result where the row engine produced float) slip by.
    """
    return [tuple((type(v).__name__, v) for v in row) for row in result.rows]


@settings(max_examples=60, deadline=None)
@given(
    dataset=st.sampled_from(DATASETS),
    seed=st.sampled_from(SEEDS),
    index=st.integers(0, POOL_SIZE - 1),
    use_numpy=st.booleans(),
)
def test_columnar_matches_row_executor_exactly(dataset, seed, index, use_numpy):
    dsg = dsg_for(dataset, seed)
    pool = query_pool(dataset, seed)
    query = pool[index % len(pool)]

    row_result = reference_engine(dsg.database).execute(query)
    columnar = ColumnarExecutor(use_numpy=use_numpy)
    col_result = reference_engine(dsg.database, executor=columnar).execute(query)

    assert col_result.columns == row_result.columns
    assert typed_rows(col_result) == typed_rows(row_result)
    assert col_result.normalized() == row_result.normalized()


def test_disable_numpy_env_forces_pure_python(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
    assert ColumnarExecutor()._np is None
    monkeypatch.delenv("REPRO_DISABLE_NUMPY")
    assert ColumnarExecutor(use_numpy=False)._np is None


def test_executor_registry_round_trip():
    names = registered_executors()
    assert "columnar" in names and "row" in names
    assert executor_from_name("columnar").name == "columnar"
    with pytest.raises(KeyError):
        executor_from_name("vectorized-but-wrong")


def test_engine_accepts_executor_by_name():
    dsg = dsg_for("shopping", 1)
    engine = reference_engine(dsg.database, executor="columnar")
    query = query_pool("shopping", 1)[0]
    assert engine.execute(query).columns == (
        reference_engine(dsg.database).execute(query).columns
    )


def test_columnar_rejects_negative_limit():
    dsg = dsg_for("shopping", 1)
    query = query_pool("shopping", 1)[0]
    bad = dataclasses.replace(query, limit=-1)
    engine = reference_engine(dsg.database, executor="columnar")
    with pytest.raises(ExecutionError):
        engine.execute(bad)
