"""Tests for NULL semantics, canonical numerics and row normalization."""

from decimal import Decimal
from hypothesis import given, strategies as st

from repro.sqlvalue import (
    NULL,
    canonical_numeric,
    is_null,
    normalize_row,
    null_if_none,
    render_literal,
    row_sort_key,
    value_sort_key,
)


class TestNullSingleton:
    def test_null_is_singleton(self):
        from repro.sqlvalue.values import _Null

        assert _Null() is NULL

    def test_is_null_accepts_none_and_marker(self):
        assert is_null(NULL)
        assert is_null(None)
        assert not is_null(0)
        assert not is_null("")

    def test_null_is_falsy(self):
        assert not NULL

    def test_null_if_none(self):
        assert null_if_none(None) is NULL
        assert null_if_none(5) == 5

    def test_null_repr(self):
        assert repr(NULL) == "NULL"

    def test_null_survives_deepcopy(self):
        import copy

        assert copy.deepcopy(NULL) is NULL
        assert copy.copy(NULL) is NULL


class TestCanonicalNumeric:
    def test_negative_zero_collapses(self):
        assert canonical_numeric(-0.0) == 0.0
        assert str(canonical_numeric(-0.0)) == "0.0"

    def test_int_float_decimal_collapse(self):
        assert canonical_numeric(1) == canonical_numeric(1.0) == canonical_numeric(Decimal("1.0"))

    def test_fractional_decimal_becomes_float(self):
        assert canonical_numeric(Decimal("1.5")) == 1.5

    def test_bool_becomes_int(self):
        assert canonical_numeric(True) == 1
        assert canonical_numeric(False) == 0

    def test_strings_untouched(self):
        assert canonical_numeric("abc") == "abc"

    def test_null_passthrough(self):
        assert canonical_numeric(NULL) is NULL


class TestRowNormalization:
    def test_normalize_row_mixes_types(self):
        assert normalize_row((1, 1.0, NULL)) == (1, 1, NULL)

    def test_normalize_row_is_hashable(self):
        assert hash(normalize_row((1, "a", NULL))) == hash(normalize_row((1.0, "a", None and NULL or NULL)))

    def test_rows_with_same_canonical_values_compare_equal(self):
        assert normalize_row((Decimal("2"), -0.0)) == normalize_row((2, 0.0))


class TestSortKeys:
    def test_null_sorts_first(self):
        values = ["b", NULL, 3, 1.5]
        ordered = sorted(values, key=value_sort_key)
        assert ordered[0] is NULL

    def test_numbers_before_strings(self):
        ordered = sorted(["a", 2], key=value_sort_key)
        assert ordered == [2, "a"]

    def test_row_sort_key_orders_rows(self):
        rows = [(2, "b"), (1, "a"), (NULL, "z")]
        ordered = sorted(rows, key=row_sort_key)
        assert ordered[0][0] is NULL
        assert ordered[1] == (1, "a")


class TestRenderLiteral:
    def test_null(self):
        assert render_literal(NULL) == "NULL"

    def test_string_escaping(self):
        assert render_literal("O'Hara") == "'O''Hara'"

    def test_numbers(self):
        assert render_literal(3) == "3"
        assert render_literal(Decimal("2.50")) == "2.50"

    def test_bool(self):
        assert render_literal(True) == "1"


@given(st.floats(allow_nan=False, allow_infinity=False))
def test_canonical_numeric_idempotent(value):
    once = canonical_numeric(value)
    assert canonical_numeric(once) == once


@given(st.lists(st.one_of(st.integers(-100, 100), st.text(max_size=5),
                          st.none()), max_size=5))
def test_normalize_row_is_deterministic(values):
    row = tuple(NULL if v is None else v for v in values)
    assert normalize_row(row) == normalize_row(row)
