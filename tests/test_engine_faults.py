"""Tests for the engine facade, result sets, fault injection and dialect profiles."""

import pytest

from repro.engine import (
    ALL_DIALECTS,
    ActiveFaults,
    BugSpec,
    Engine,
    FaultTrigger,
    ResultSet,
    SIM_MARIADB,
    SIM_MYSQL,
    SIM_TIDB,
    SIM_XDB,
    dialect_by_name,
    reference_engine,
)
from repro.engine.faults import HASH_BASED_ALGORITHMS
from repro.errors import ReproError
from repro.expr import ColumnRef, column
from repro.optimizer import (
    hash_join_hints,
    join_cache_off_hints,
    merge_join_hints,
    nested_loop_hints,
    standard_hint_sets,
)
from repro.plan import (
    JoinAlgorithm,
    JoinStep,
    JoinType,
    QuerySpec,
    SelectItem,
    TableRef,
    TriggerContext,
)
from repro.sqlvalue import NULL


class TestResultSet:
    def test_set_comparison_ignores_order_and_duplicates(self):
        left = ResultSet(["a"], [(1,), (2,), (2,)])
        right = ResultSet(["a"], [(2,), (1,)])
        assert left.same_rows(right)

    def test_numeric_normalization_in_comparison(self):
        left = ResultSet(["a"], [(1,)])
        right = ResultSet(["a"], [(1.0,)])
        assert left.same_rows(right)

    def test_contains_all(self):
        big = ResultSet(["a"], [(1,), (2,), (3,)])
        small = ResultSet(["a"], [(2,)])
        assert big.contains_all(small)
        assert not small.contains_all(big)

    def test_render_handles_empty_and_nulls(self):
        empty = ResultSet(["a", "b"], [])
        assert "(empty set)" in empty.render()
        with_null = ResultSet(["a"], [(NULL,)])
        assert "NULL" in with_null.render()

    def test_column_values(self):
        rs = ResultSet(["a", "b"], [(1, "x"), (2, "y")])
        assert rs.column_values("b") == ["x", "y"]


class TestFaultTrigger:
    def test_matching_conditions(self):
        trigger = FaultTrigger(
            algorithms=HASH_BASED_ALGORITHMS,
            join_types=frozenset({JoinType.SEMI}),
            require_materialization=True,
        )
        ctx = TriggerContext(algorithm=JoinAlgorithm.HASH, join_type=JoinType.SEMI,
                             materialization=True)
        assert trigger.matches(ctx)
        assert not trigger.matches(
            TriggerContext(algorithm=JoinAlgorithm.NESTED_LOOP,
                           join_type=JoinType.SEMI, materialization=True)
        )
        assert not trigger.matches(
            TriggerContext(algorithm=JoinAlgorithm.HASH, join_type=JoinType.SEMI,
                           materialization=False)
        )

    def test_disabled_switch_requirement(self):
        trigger = FaultTrigger(requires_disabled_switches=frozenset({"join_cache_bka"}))
        assert not trigger.matches(TriggerContext())
        assert trigger.matches(
            TriggerContext(disabled_switches=frozenset({"join_cache_bka", "other"}))
        )

    def test_plan_independence_classification(self):
        assert FaultTrigger(join_types=frozenset({JoinType.INNER})).plan_independent
        assert not FaultTrigger(algorithms=HASH_BASED_ALGORITHMS).plan_independent
        assert not FaultTrigger(requires_disabled_switches=frozenset({"semijoin"})).plan_independent


class TestBugSpec:
    def test_invalid_seam_rejected(self):
        with pytest.raises(ReproError):
            BugSpec(1, "X", "bogus_seam", "x", FaultTrigger())

    def test_invalid_behavior_rejected(self):
        with pytest.raises(ReproError):
            BugSpec(1, "X", "join_key", "not_a_behavior", FaultTrigger())
        with pytest.raises(ReproError):
            BugSpec(1, "X", "null_pad", "not_a_behavior", FaultTrigger())

    def test_active_faults_lookup(self):
        faults = ActiveFaults(SIM_MYSQL.bugs)
        assert faults.bug_by_id(1).dbms == "SimMySQL"
        with pytest.raises(ReproError):
            faults.bug_by_id(999)
        assert len(faults) == 7


class TestDialectProfiles:
    def test_table4_bug_type_counts(self):
        assert SIM_MYSQL.bug_type_count == 7
        assert SIM_MARIADB.bug_type_count == 5
        assert SIM_TIDB.bug_type_count == 5
        assert SIM_XDB.bug_type_count == 3

    def test_bug_ids_are_unique_and_cover_1_to_20(self):
        ids = [bug.bug_id for profile in ALL_DIALECTS for bug in profile.bugs]
        assert sorted(ids) == list(range(1, 21))

    def test_every_dialect_has_a_plan_independent_bug_or_not(self):
        # MySQL and X-DB seed plan-independent bugs (needed for the GT ablation).
        assert SIM_MYSQL.active_faults().plan_independent_ids()
        assert SIM_XDB.active_faults().plan_independent_ids()

    def test_dialect_by_name(self):
        assert dialect_by_name("simmysql") is SIM_MYSQL
        with pytest.raises(KeyError):
            dialect_by_name("oracle")


def left_join_query() -> QuerySpec:
    return QuerySpec(
        base=TableRef("orders", "orders"),
        joins=[JoinStep(TableRef("users", "users"), JoinType.LEFT_OUTER,
                        left_key=ColumnRef("orders", "userId"),
                        right_key=ColumnRef("users", "userId"))],
        select=[SelectItem(column("orders", "orderId")),
                SelectItem(column("users", "userName"))],
    )


class TestEngineExecution:
    def test_reference_engine_is_hint_insensitive(self, orders_db):
        engine = reference_engine(orders_db)
        results = {
            engine.execute(left_join_query(), hints).normalized()
            for hints in standard_hint_sets()
        }
        assert len(results) == 1
        assert engine.queries_executed == len(standard_hint_sets())

    def test_engine_name(self, orders_db):
        assert reference_engine(orders_db).name == "ReferenceEngine"
        assert "SimMySQL" in Engine(orders_db, SIM_MYSQL).name

    def test_explain_returns_plan_text(self, orders_db):
        engine = reference_engine(orders_db)
        text = engine.explain(left_join_query(), hash_join_hints())
        assert "Join[left_outer/hash]" in text

    def test_xdb_left_join_bug_fires_on_every_plan(self, orders_db):
        engine = Engine(orders_db, SIM_XDB)
        observed = set()
        for hints in (hash_join_hints(), nested_loop_hints(), merge_join_hints()):
            report = engine.execute_with_report(left_join_query(), hints)
            assert 18 in report.fired_bug_ids
            observed.add(report.result.normalized())
        # Plan-independent: every plan returns the same (wrong) result.
        assert len(observed) == 1
        reference = reference_engine(orders_db).execute(left_join_query())
        assert observed.pop() != reference.normalized()

    def test_mariadb_join_cache_bug_changes_result(self, orders_db):
        engine = Engine(orders_db, SIM_MARIADB)
        good = engine.execute(left_join_query(), hash_join_hints())
        bad = engine.execute(left_join_query(),
                             join_cache_off_hints("outer_join_with_cache"))
        assert good.normalized() != bad.normalized()

    def test_clean_hooks_never_fire(self, orders_db):
        engine = reference_engine(orders_db)
        report = engine.execute_with_report(left_join_query())
        assert report.fired_bug_ids == ()

    def test_execute_all_hints_returns_one_report_per_hint(self, orders_db):
        engine = Engine(orders_db, SIM_MYSQL)
        hint_sets = standard_hint_sets()[:5]
        reports = engine.execute_all_hints(left_join_query(), hint_sets)
        assert [r.hints.name for r in reports] == [h.name for h in hint_sets]
