"""Query cache: determinism contract, LRU bounds, telemetry, key hygiene."""

import pytest

from repro import CampaignSpec, QueryCache, obs, run_campaign
from repro.core.qcache import (
    dataset_fingerprint,
    render_cache_key,
    result_cache_key,
)

SPEC = dict(kind="differential", backend="sqlite", dataset="shopping",
            dataset_rows=70, hours=2, queries_per_hour=10, seed=3)


def fingerprint(result):
    assert result.bug_log is not None
    return (
        tuple(result.samples),
        tuple(incident.query_sql for incident in result.bug_log.incidents),
    )


# --------------------------------------------------------------- determinism


def test_cache_on_equals_cache_off_serial():
    plain = run_campaign(CampaignSpec(**SPEC))
    cached = run_campaign(
        CampaignSpec(**SPEC, use_query_cache=True,
                     reference_executor="columnar")
    )
    assert fingerprint(plain) == fingerprint(cached)


def test_cache_on_equals_cache_off_pooled():
    plain = run_campaign(CampaignSpec(**SPEC, workers=2))
    cached = run_campaign(
        CampaignSpec(**SPEC, workers=2, use_query_cache=True,
                     reference_executor="columnar")
    )
    assert fingerprint(plain.merged) == fingerprint(cached.merged)


# ------------------------------------------------------------- LRU mechanics


def test_max_entries_must_be_positive():
    with pytest.raises(ValueError):
        QueryCache(max_entries=0)


def test_eviction_keeps_cache_bounded_and_counts():
    previous = obs.set_enabled(True)
    obs.reset_registry()
    try:
        cache = QueryCache(max_entries=4)
        for i in range(10):
            cache.put(f"key-{i}", i, "result")
        assert len(cache) == 4
        snapshot = obs.get_registry().snapshot()
        evictions = snapshot.counters_by_name("qcache.evictions")
        assert evictions == {"qcache.evictions{kind=result}": 6}
    finally:
        obs.reset_registry()
        obs.set_enabled(previous)


def test_lru_recency_and_hit_miss_counters():
    previous = obs.set_enabled(True)
    obs.reset_registry()
    try:
        cache = QueryCache(max_entries=2)
        cache.put("a", 1, "render")
        cache.put("b", 2, "render")
        assert cache.get("a", "render") == (True, 1)   # refreshes "a"
        cache.put("c", 3, "render")                    # evicts "b"
        assert cache.get("b", "render") == (False, None)
        assert cache.get("a", "render") == (True, 1)
        snapshot = obs.get_registry().snapshot()
        assert snapshot.counters_by_name("qcache.hits") == {
            "qcache.hits{kind=render}": 2
        }
        assert snapshot.counters_by_name("qcache.misses") == {
            "qcache.misses{kind=render}": 1
        }
    finally:
        obs.reset_registry()
        obs.set_enabled(previous)


def test_clear_empties_without_touching_counters():
    cache = QueryCache()
    cache.put("a", 1, "result")
    cache.clear()
    assert len(cache) == 0
    assert cache.get("a", "result") == (False, None)


# ------------------------------------------------------------- key semantics


def test_result_key_sensitive_to_every_component():
    base = result_cache_key("row", "Q1", "fp", "SELECT 1")
    assert base == result_cache_key("row", "Q1", "fp", "SELECT 1")
    assert base != result_cache_key("columnar", "Q1", "fp", "SELECT 1")
    assert base != result_cache_key("row", "Q2", "fp", "SELECT 1")
    assert base != result_cache_key("row", "Q1", "fp2", "SELECT 1")
    assert base != result_cache_key("row", "Q1", "fp", "SELECT 2")


def test_render_key_is_dataset_independent_but_backend_specific():
    assert render_cache_key("sqlite", "SELECT 1") == render_cache_key(
        "sqlite", "SELECT 1"
    )
    assert render_cache_key("sqlite", "SELECT 1") != render_cache_key(
        "duckdb", "SELECT 1"
    )
    # Separator discipline: field boundaries cannot be forged by
    # concatenation games across adjacent fields.
    assert render_cache_key("ab", "c") != render_cache_key("a", "bc")


def test_dataset_fingerprint_tracks_content():
    from repro import DSG, DSGConfig

    dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=60, seed=2))
    twin = DSG(DSGConfig(dataset="shopping", dataset_rows=60, seed=2))
    other = DSG(DSGConfig(dataset="shopping", dataset_rows=60, seed=4))
    assert dataset_fingerprint(dsg.database) == dataset_fingerprint(twin.database)
    assert dataset_fingerprint(dsg.database) != dataset_fingerprint(other.database)
