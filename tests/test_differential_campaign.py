"""Differential oracle and campaign tests (acceptance criteria of the backends PR)."""

from __future__ import annotations

import pytest

from repro import (
    CampaignConfig,
    SIM_MYSQL,
    SQLiteBackend,
    SimulatedBackend,
    run_baseline_campaign,
    run_differential_campaign,
)
from repro.baselines.base import BaselineTester
from repro.core.differential import (
    DifferentialConfig,
    DifferentialOracle,
    DifferentialTester,
    result_sets_match,
)
from repro.dsg import DSG, DSGConfig
from repro.engine import ResultSet, reference_engine
from repro.errors import GenerationError
from repro.plan.logical import QuerySpec, SelectItem, TableRef
from repro.expr.ast import ColumnRef
from repro.sqlvalue.values import NULL


# ------------------------------------------------------------ result matching


def test_result_sets_match_ignores_order_and_duplicates():
    left = ResultSet(["a", "b"], [(1, "x"), (2, "y"), (2, "y")])
    right = ResultSet(["a", "b"], [(2, "y"), (1, "x")])
    assert result_sets_match(left, right)


def test_result_sets_match_canonicalizes_numerics():
    left = ResultSet(["a"], [(1,), (2.0,)])
    right = ResultSet(["a"], [(1.0,), (2,)])
    assert result_sets_match(left, right)


def test_result_sets_match_float_tolerance():
    left = ResultSet(["a", "b"], [(0.1 + 0.2, "x")])
    right = ResultSet(["a", "b"], [(0.3, "x")])
    assert result_sets_match(left, right)
    assert not result_sets_match(
        ResultSet(["a"], [(0.3,)]), ResultSet(["a"], [(0.4,)])
    )


def test_result_sets_match_null_only_matches_null():
    assert not result_sets_match(
        ResultSet(["a"], [(NULL,)]), ResultSet(["a"], [(0,)])
    )
    assert result_sets_match(
        ResultSet(["a"], [(NULL,)]), ResultSet(["a"], [(NULL,)])
    )


def test_result_sets_match_detects_genuine_mismatch():
    assert not result_sets_match(
        ResultSet(["a"], [(1,), (2,)]), ResultSet(["a"], [(1,)])
    )


def test_normalized_is_cached_and_rows_immutable():
    """normalized() runs once per result set (the differential hot path calls
    it twice per comparison); rows are frozen so the cache cannot go stale."""
    result = ResultSet(["a"], [(1,), (2,)])
    first = result.normalized()
    assert result.normalized() is first
    assert isinstance(result.rows, tuple)
    with pytest.raises((TypeError, AttributeError)):
        result.rows.append((3,))  # type: ignore[attr-defined]
    assert result.same_rows(ResultSet(["a"], [(2,), (1,)]))


# ----------------------------------------------------------------- the oracle


def test_oracle_skips_limit_queries():
    dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=80, seed=2))
    backend = SimulatedBackend()
    backend.deploy(dsg.database)
    oracle = DifferentialOracle(reference_engine(dsg.database), backend)
    table = dsg.database.table_names[0]
    first_column = dsg.ndb.data_columns(table)[0]
    query = QuerySpec(
        base=TableRef(table, table),
        select=[SelectItem(ColumnRef(table, first_column))],
        limit=3,
    )
    outcome = oracle.check(query)
    assert outcome.skipped and outcome.matched
    assert oracle.comparisons == 0 and oracle.skipped == 1


# ------------------------------------------------- acceptance: no false alarms


def test_sqlite_differential_campaign_end_to_end():
    """A real differential campaign runs on stdlib SQLite with zero false positives.

    The backend is a correct engine and the reference executor is bug-free, so
    every mismatch would be a false positive of the rendering/normalization
    pipeline.
    """
    result = run_differential_campaign(SQLiteBackend(), CampaignConfig(hours=2))
    assert len(result.samples) == 2
    final = result.final
    assert final.queries_executed > 0
    assert final.queries_generated >= final.queries_executed
    assert final.isomorphic_sets > 0
    assert final.bug_count == 0, (
        f"false positives against bug-free SQLite: "
        f"{[i.query_sql for i in result.bug_log.incidents[:3]]}"
    )
    assert result.dbms == "SQLite"


def test_sqlite_differential_campaign_other_dataset_seed():
    result = run_differential_campaign(
        SQLiteBackend(),
        CampaignConfig(dataset="tpch", hours=2, queries_per_hour=8, seed=29),
    )
    assert result.final.queries_executed > 0
    assert result.final.bug_count == 0


# ------------------------------------------ sensitivity: seeded bugs are found


def test_differential_campaign_detects_seeded_faults():
    """Against a faulty simulated engine the same oracle must report bugs."""
    result = run_differential_campaign(
        SimulatedBackend(SIM_MYSQL),
        CampaignConfig(hours=4, queries_per_hour=12, seed=5),
    )
    assert result.final.bug_count > 0
    assert result.final.bug_type_count > 0
    incident = result.bug_log.incidents[0]
    assert incident.detection_mode == "backend_differential"
    assert incident.fired_bug_ids  # simulated backends announce root causes


def test_differential_tester_counters():
    dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=80, seed=4))
    backend = SQLiteBackend()
    backend.deploy(dsg.database)
    tester = DifferentialTester(dsg, backend,
                                config=DifferentialConfig(seed=4))
    tester.run(10)
    assert tester.queries_generated > 0
    assert tester.queries_executed == tester.oracle.comparisons
    assert tester.explored_isomorphic_sets > 0
    assert tester.bug_log.bug_count == 0
    backend.close()


def test_backend_errors_are_skipped_not_fatal():
    """A runtime rejection by the backend must not abort a campaign."""
    from repro.errors import BackendError

    class CrashyBackend(SimulatedBackend):
        def execute(self, query):
            raise BackendError("engine fell over")

    result = run_differential_campaign(
        CrashyBackend(), CampaignConfig(hours=2, queries_per_hour=3)
    )
    assert len(result.samples) == 2
    assert result.final.queries_executed == 0
    assert result.final.bug_count == 0


# ------------------------------------------------ satellite: baseline campaign


class _AlwaysFailingBaseline(BaselineTester):
    name = "always-failing"

    def run_iteration(self) -> None:
        raise GenerationError("this baseline can never generate a query")


def test_baseline_campaign_survives_generation_errors():
    """One failed generation must not abort the whole baseline campaign."""
    result = run_baseline_campaign(
        _AlwaysFailingBaseline(), SIM_MYSQL,
        CampaignConfig(hours=3, queries_per_hour=2, dataset_rows=80),
    )
    assert len(result.samples) == 3
    assert result.final.queries_generated == 0
    assert result.final.bug_count == 0
