"""Tests for the schema graph and the random-walk join query generator."""

import random

import pytest

from repro.dsg import GenerationConfig
from repro.dsg.query_gen import RandomWalkQueryGenerator
from repro.errors import GenerationError
from repro.plan import JoinType


class TestSchemaGraph:
    def test_vertices_and_edges(self, shopping_dsg):
        graph = shopping_dsg.schema_graph
        assert set(graph.table_names) == set(shopping_dsg.ndb.schema.table_names)
        assert len(graph.join_edges) == len(shopping_dsg.ndb.schema.foreign_keys)
        assert graph.is_connected()

    def test_edges_of_and_degree(self, shopping_dsg):
        graph = shopping_dsg.schema_graph
        hub = shopping_dsg.ndb.hub_table
        assert graph.degree(hub) >= 2
        for edge in graph.edges_of(hub):
            assert hub in (edge.child, edge.parent)

    def test_edge_direction_helpers(self, shopping_dsg):
        edge = shopping_dsg.schema_graph.join_edges[0]
        assert edge.other(edge.child) == edge.parent
        assert edge.direction_from(edge.child) == "to_parent"
        assert edge.direction_from(edge.parent) == "to_child"
        with pytest.raises(KeyError):
            edge.other("nope")

    def test_frontier_excludes_used_tables(self, shopping_dsg):
        graph = shopping_dsg.schema_graph
        all_tables = set(graph.table_names)
        assert graph.edges_from_set(all_tables) == []

    def test_columns_of_excludes_rowid(self, shopping_dsg):
        graph = shopping_dsg.schema_graph
        for table in graph.table_names:
            assert "RowID" not in graph.columns_of(table)


class TestQueryGenerator:
    def test_generated_queries_are_valid_and_multi_table(self, shopping_dsg):
        for seed in range(10):
            generator = RandomWalkQueryGenerator(
                shopping_dsg.ndb, shopping_dsg.noise_report, random.Random(seed)
            )
            query = generator.generate()
            query.validate()
            assert len(query.tables) >= 2
            assert query.select

    def test_walk_length_bounds_join_count(self, shopping_dsg):
        generator = RandomWalkQueryGenerator(
            shopping_dsg.ndb, shopping_dsg.noise_report, random.Random(3),
            GenerationConfig(min_joins=1, max_joins=2),
        )
        for _ in range(20):
            assert len(generator.generate().joins) <= 2

    def test_start_table_respected(self, shopping_dsg):
        hub = shopping_dsg.ndb.hub_table
        generator = RandomWalkQueryGenerator(
            shopping_dsg.ndb, shopping_dsg.noise_report, random.Random(4)
        )
        query = generator.generate(start_table=hub)
        assert query.base.table == hub
        with pytest.raises(GenerationError):
            generator.generate(start_table="missing")

    def test_all_seven_join_types_reachable(self, shopping_dsg):
        generator = RandomWalkQueryGenerator(
            shopping_dsg.ndb, shopping_dsg.noise_report, random.Random(5)
        )
        seen = set()
        for _ in range(300):
            try:
                query = generator.generate()
            except GenerationError:
                continue
            seen.update(query.join_types)
        assert {JoinType.INNER, JoinType.LEFT_OUTER, JoinType.SEMI,
                JoinType.ANTI, JoinType.CROSS} <= seen

    def test_outer_join_soundness_constraints(self, shopping_dsg):
        """Right/full outer joins only appear as the terminal (first) step."""
        generator = RandomWalkQueryGenerator(
            shopping_dsg.ndb, shopping_dsg.noise_report, random.Random(6)
        )
        for _ in range(200):
            try:
                query = generator.generate()
            except GenerationError:
                continue
            for index, step in enumerate(query.joins):
                if step.join_type in (JoinType.RIGHT_OUTER, JoinType.FULL_OUTER):
                    assert index == 0
                    assert index == len(query.joins) - 1

    def test_semi_anti_tables_never_referenced_in_select(self, shopping_dsg):
        generator = RandomWalkQueryGenerator(
            shopping_dsg.ndb, shopping_dsg.noise_report, random.Random(7)
        )
        for _ in range(100):
            try:
                query = generator.generate()
            except GenerationError:
                continue
            hidden = {step.table.alias for step in query.joins
                      if step.join_type in (JoinType.SEMI, JoinType.ANTI)}
            referenced = set()
            for item in query.select:
                referenced.update(t for t, _ in item.expression.references() if t)
            if query.where is not None:
                referenced.update(t for t, _ in query.where.references() if t)
            assert not (hidden & referenced)

    def test_no_aggregates_with_cross_joins(self, shopping_dsg):
        generator = RandomWalkQueryGenerator(
            shopping_dsg.ndb, shopping_dsg.noise_report, random.Random(8),
            GenerationConfig(aggregate_probability=0.9),
        )
        for _ in range(100):
            try:
                query = generator.generate()
            except GenerationError:
                continue
            if any(step.join_type is JoinType.CROSS for step in query.joins):
                assert not query.has_aggregates()

    def test_extension_chooser_can_terminate_walk(self, shopping_dsg):
        generator = RandomWalkQueryGenerator(
            shopping_dsg.ndb, shopping_dsg.noise_report, random.Random(9)
        )
        calls = []

        def chooser(base, steps, candidates):
            calls.append(len(candidates))
            return candidates[0] if not steps else None

        query = generator.generate(extension_chooser=chooser, walk_length=4)
        assert len(query.joins) == 1
        assert calls and all(count > 0 for count in calls)

    def test_generate_many_returns_requested_count(self, shopping_dsg):
        generator = RandomWalkQueryGenerator(
            shopping_dsg.ndb, shopping_dsg.noise_report, random.Random(10)
        )
        queries = generator.generate_many(15)
        assert len(queries) == 15

    def test_rendered_sql_mentions_every_table(self, shopping_dsg):
        generator = RandomWalkQueryGenerator(
            shopping_dsg.ndb, shopping_dsg.noise_report, random.Random(11)
        )
        query = generator.generate()
        sql = query.render()
        for table in query.tables:
            assert table in sql
