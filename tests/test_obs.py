"""Tests for the campaign telemetry subsystem (``repro.obs``).

Covers the registry/snapshot semantics (merge algebra, histogram bucket
edges), the wire round-trip of snapshots through protocol v2, the STATS verb
against a live authenticated index server, Prometheus exposition, and — most
importantly — the regression contract that telemetry-on and telemetry-off
campaigns produce bit-identical verdicts.
"""

import json
import socket
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.backends.sqlite_backend import SQLiteBackend
from repro.core import (
    CampaignConfig,
    ParallelCampaignConfig,
    build_shard_specs,
    run_differential_campaign,
    run_parallel_shards,
    sync_schedule,
)
from repro.distributed import wire
from repro.distributed.client import fetch_stats
from repro.distributed.server import IndexServer
from repro.errors import ProtocolError, TelemetryError
from repro.obs import (
    HistogramState,
    MetricsRegistry,
    MetricsSnapshot,
    render_prometheus,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    """Each test starts from an empty process registry, telemetry enabled."""
    previous = obs.set_enabled(True)
    obs.reset_registry()
    yield
    obs.reset_registry()
    obs.set_enabled(previous)


# ------------------------------------------------------------------- registry


class TestRegistry:
    def test_counter_labels_are_order_insensitive(self):
        registry = MetricsRegistry()
        registry.counter("x", a=1, b=2).inc()
        registry.counter("x", b=2, a=1).inc(2)
        assert registry.snapshot().counter_value("x", a=1, b=2) == 3

    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("x").inc(-1)

    def test_gauge_set_and_max(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5.0)
        registry.gauge("g").max(3.0)
        assert registry.snapshot().gauges["g"] == 5.0
        registry.gauge("g").max(9.0)
        assert registry.snapshot().gauges["g"] == 9.0

    def test_histogram_bucket_edges_use_le_semantics(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        for value in (1.0, 1.5, 2.0, 2.5, 0.0):
            hist.observe(value)
        state = registry.snapshot().histograms["h"]
        # le-semantics: 1.0 and 0.0 land in the first bucket, 1.5 and 2.0 in
        # the second, 2.5 overflows.
        assert state.counts == (2, 2, 1)
        assert state.count == 5
        assert state.sum == pytest.approx(7.0)

    def test_histogram_re_registration_must_match_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)  # same: fine
        with pytest.raises(TelemetryError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_span_records_into_phase_histogram(self):
        registry = MetricsRegistry()
        with registry.span("generate"):
            pass
        phases = registry.snapshot().phase_seconds()
        assert "generate" in phases
        seconds, count = phases["generate"]
        assert count == 1 and seconds >= 0.0

    def test_disabled_registry_is_a_no_op(self):
        previous = obs.set_enabled(False)
        try:
            registry = obs.get_registry()
            registry.counter("x").inc()
            registry.gauge("g").set(1.0)
            registry.histogram("h").observe(1.0)
            with obs.span("generate"):
                pass
            assert obs.snapshot_dict() is None
        finally:
            obs.set_enabled(previous)

    def test_snapshot_dict_is_none_when_empty(self):
        assert obs.snapshot_dict() is None
        obs.get_registry().counter("x").inc()
        assert obs.snapshot_dict() is not None


# ------------------------------------------------------------ merge algebra


def _snapshot_strategy():
    names = st.sampled_from(["a", "b", "c{x=1}", "phase.seconds{phase=sync}"])
    counters = st.dictionaries(names, st.integers(0, 1000), max_size=4)
    gauges = st.dictionaries(names, st.floats(0, 100), max_size=4)
    bounds = (0.1, 1.0, 10.0)

    def histogram(counts):
        total = sum(counts)
        return HistogramState(
            bounds=bounds, counts=tuple(counts), sum=float(total), count=total
        )

    histograms = st.dictionaries(
        st.sampled_from(["h1", "h2"]),
        st.lists(st.integers(0, 50), min_size=4, max_size=4).map(histogram),
        max_size=2,
    )
    return st.builds(MetricsSnapshot, counters=counters, gauges=gauges,
                     histograms=histograms)


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(_snapshot_strategy(), _snapshot_strategy())
    def test_merge_commutes(self, left, right):
        assert left.merge(right).to_dict() == right.merge(left).to_dict()

    @settings(max_examples=50, deadline=None)
    @given(_snapshot_strategy(), _snapshot_strategy(), _snapshot_strategy())
    def test_merge_is_associative(self, a, b, c):
        assert (
            a.merge(b).merge(c).to_dict() == a.merge(b.merge(c)).to_dict()
        )

    @settings(max_examples=50, deadline=None)
    @given(_snapshot_strategy())
    def test_empty_snapshot_is_identity(self, snapshot):
        empty = MetricsSnapshot.from_dict(None)
        assert empty.merge(snapshot).to_dict() == snapshot.to_dict()
        assert snapshot.merge(empty).to_dict() == snapshot.to_dict()

    @settings(max_examples=50, deadline=None)
    @given(_snapshot_strategy())
    def test_dict_round_trip(self, snapshot):
        restored = MetricsSnapshot.from_dict(snapshot.to_dict())
        assert restored.to_dict() == snapshot.to_dict()
        # And survives JSON, the actual wire substrate.
        rejsoned = MetricsSnapshot.from_dict(
            json.loads(json.dumps(snapshot.to_dict()))
        )
        assert rejsoned.to_dict() == snapshot.to_dict()

    def test_incompatible_histogram_bounds_refuse_to_merge(self):
        one = HistogramState(bounds=(1.0,), counts=(1, 0), sum=0.5, count=1)
        two = HistogramState(bounds=(2.0,), counts=(1, 0), sum=0.5, count=1)
        with pytest.raises(TelemetryError):
            one.merge(two)


# ------------------------------------------------------------------- the wire


class TestWire:
    def test_sync_message_round_trips_telemetry(self):
        obs.get_registry().counter("campaign.bugs").inc(3)
        snapshot = obs.snapshot_dict()
        message = ("sync", 1, 4, [], snapshot)
        decoded = wire.decode_message(
            json.loads(json.dumps(wire.encode_message(message)))
        )
        assert decoded[0] == "sync" and decoded[1] == 1 and decoded[2] == 4
        assert len(decoded) == 5
        assert MetricsSnapshot.from_dict(decoded[4]).counter_value(
            "campaign.bugs"
        ) == 3

    def test_sync_message_without_telemetry_stays_four_tuple(self):
        decoded = wire.decode_message(wire.encode_message(("sync", 0, 1, [])))
        assert len(decoded) == 4

    def test_stats_round_trip(self):
        payload = {"frames_rejected": 2, "telemetry": None, "shards": [0, 1]}
        decoded = wire.decode_message(
            json.loads(json.dumps(wire.encode_message(("stats-ok", payload))))
        )
        assert decoded[0] == "stats-ok"
        assert decoded[1]["frames_rejected"] == 2
        assert decoded[1]["shards"] == [0, 1]

    def test_malformed_snapshot_is_rejected(self):
        obj = wire.encode_message(("sync", 0, 1, []))
        obj["telemetry"] = {"counters": {"x": "NaN-ish"}}
        with pytest.raises(ProtocolError):
            wire.decode_message(obj)

    def test_histogram_counts_length_is_validated(self):
        bad = {
            "counters": {},
            "gauges": {},
            "histograms": {
                "h": {"bounds": [1.0], "counts": [1], "sum": 0.0, "count": 1}
            },
        }
        obj = wire.encode_message(("sync", 0, 1, []))
        obj["telemetry"] = bad
        with pytest.raises(ProtocolError):
            wire.decode_message(obj)


# -------------------------------------------------- determinism regression


DET = CampaignConfig(
    dataset="shopping", dataset_rows=80, hours=2, queries_per_hour=8, seed=9
)


def _campaign_fingerprint(result):
    fingerprint = [
        (s.hour, s.queries_generated, s.isomorphic_sets, s.bug_count)
        for s in result.samples
    ]
    if result.bug_log is not None:
        fingerprint.append(
            sorted(
                (tuple(sorted(i.root_cause)), i.query_canonical_label)
                for i in result.bug_log.incidents
            )
        )
    return fingerprint


class TestDeterminismWithTelemetry:
    def test_serial_campaign_identical_with_telemetry_on_and_off(self):
        with_telemetry = run_differential_campaign(SQLiteBackend(), DET)
        previous = obs.set_enabled(False)
        try:
            obs.reset_registry()
            without = run_differential_campaign(SQLiteBackend(), DET)
        finally:
            obs.set_enabled(previous)
        assert _campaign_fingerprint(with_telemetry) == _campaign_fingerprint(
            without
        )

    def test_parallel_pool_identical_with_telemetry_on_and_off(self):
        shards = build_shard_specs("differential", DET, 2, backend="sqlite")
        config = ParallelCampaignConfig(workers=2, sync_interval=1)
        with_telemetry = run_parallel_shards(shards, config)
        assert with_telemetry.telemetry is not None
        previous = obs.set_enabled(False)
        try:
            without = run_parallel_shards(shards, config)
        finally:
            obs.set_enabled(previous)
        assert _campaign_fingerprint(
            with_telemetry.merged
        ) == _campaign_fingerprint(without.merged)
        # Budgets (the adaptive-policy inputs) must match too.
        assert [
            list(s.hourly_budgets) for s in with_telemetry.sync_stats
        ] == [list(s.hourly_budgets) for s in without.sync_stats]


# ------------------------------------------------------- pool-level merging


class TestPoolTelemetry:
    def test_two_worker_pool_merges_worker_snapshots(self):
        shards = build_shard_specs("differential", DET, 2, backend="sqlite")
        outcome = run_parallel_shards(
            shards, ParallelCampaignConfig(workers=2, sync_interval=1)
        )
        assert outcome.telemetry is not None
        snapshot = MetricsSnapshot.from_dict(outcome.telemetry)
        final = outcome.merged.final
        assert snapshot.counter_value(
            "campaign.queries_generated"
        ) == final.queries_generated
        assert snapshot.counter_value("campaign.bugs") == final.bug_count
        # Phase spans cover most of the workers' wall-clock: the acceptance
        # bar for the artifact is 90%; stay lenient against CI noise here.
        covered = obs.phase_total_seconds(snapshot)
        wall = obs.worker_run_seconds(snapshot)
        assert wall > 0.0
        assert covered >= 0.5 * wall
        # Both workers contributed a run-duration observation.
        assert snapshot.histograms["worker.run.seconds"].count == 2

    def test_phase_breakdown_renders(self):
        shards = build_shard_specs("differential", DET, 1, backend="sqlite")
        outcome = run_parallel_shards(
            shards, ParallelCampaignConfig(workers=1, sync_interval=1)
        )
        text = obs.render_phase_breakdown(
            MetricsSnapshot.from_dict(outcome.telemetry)
        )
        assert "span coverage" in text and "generate" in text

    def test_campaign_json_carries_telemetry_outside_summary(self):
        from repro.analysis.reporting import parallel_result_to_dict

        shards = build_shard_specs("differential", DET, 1, backend="sqlite")
        outcome = run_parallel_shards(
            shards, ParallelCampaignConfig(workers=1, sync_interval=1)
        )
        payload = parallel_result_to_dict(outcome, campaign={"kind": "x"})
        assert payload["telemetry"] is not None
        assert "telemetry" not in payload["summary"]
        phases = {entry["phase"] for entry in payload["telemetry"]["phases"]}
        assert "generate" in phases
        assert isinstance(payload["telemetry"]["execute_errors"], list)
        json.dumps(payload)  # JSON-serializable end to end


# ----------------------------------------------------------- STATS over TCP


class TestStatsVerb:
    def test_stats_over_authenticated_tcp(self):
        key = b"k" * 32
        shards = build_shard_specs("differential", DET, 2, backend="sqlite")
        server = IndexServer(
            shards=shards,
            sync_hours=sync_schedule(DET.hours, 1),
            round_timeout=30.0,
            auth_key=key,
        )
        server.start()
        try:
            # An unauthenticated garbage frame bumps the rejection counter.
            with socket.create_connection(
                (server.host, server.port), timeout=5.0
            ) as sock:
                sock.sendall(b"\x00" * 16)
            # The rejection happens on the server's connection thread; poll
            # briefly instead of racing it.
            deadline = time.monotonic() + 5.0
            stats = fetch_stats(server.host, server.port, auth_key=key)
            while not stats["frames_rejected"] and time.monotonic() < deadline:
                time.sleep(0.05)
                stats = fetch_stats(server.host, server.port, auth_key=key)
            assert stats["expected_shards"] == 2
            assert stats["registered_shards"] == []
            assert stats["frames_rejected"] >= 1
            assert stats["rounds_completed"] == 0
            assert stats["sync_rounds_scheduled"] == len(server.sync_hours)
            assert set(stats["shard_last_heard_seconds"]) == {"0", "1"}
            assert stats["completed"] is False
            assert stats["eviction_count"] == 0
        finally:
            server.stop()

    def test_stats_requires_the_auth_key(self):
        from repro.errors import TransportError

        shards = build_shard_specs("differential", DET, 1, backend="sqlite")
        server = IndexServer(
            shards=shards, sync_hours=(), round_timeout=30.0, auth_key=b"s" * 32
        )
        server.start()
        try:
            with pytest.raises(TransportError):
                fetch_stats(server.host, server.port, auth_key=b"wrong" * 8)
        finally:
            server.stop()


# ---------------------------------------------------------------- prometheus


class TestPrometheus:
    def test_render_families(self):
        registry = MetricsRegistry()
        registry.counter("execute.errors", backend="sqlite", kind="X").inc(2)
        registry.gauge("pool.workers").set(2.0)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        text = render_prometheus(
            registry.snapshot(), extra_gauges={"server.frames_rejected": 3}
        )
        assert (
            'tqs_execute_errors_total{backend="sqlite",kind="X"} 2' in text
        )
        assert "tqs_pool_workers 2" in text
        assert 'tqs_h_bucket{le="1"} 0' in text
        assert 'tqs_h_bucket{le="2"} 1' in text
        assert 'tqs_h_bucket{le="+Inf"} 1' in text
        assert "tqs_h_count 1" in text
        assert "tqs_server_frames_rejected 3" in text

    def test_http_endpoint_serves_snapshot(self):
        import urllib.request

        registry = MetricsRegistry()
        registry.counter("campaign.bugs").inc(7)
        endpoint = obs.MetricsHTTPServer(
            "127.0.0.1", 0, lambda: render_prometheus(registry.snapshot())
        )
        endpoint.start()
        try:
            host, port = endpoint.address
            body = urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5.0
            ).read().decode("utf-8")
            assert "tqs_campaign_bugs_total 7" in body
        finally:
            endpoint.stop()


# ------------------------------------------------------------ error counters


class TestExecuteErrors:
    def test_execute_errors_counter_and_breakdown(self):
        registry = obs.get_registry()
        registry.counter("execute.errors", backend="duckdb", kind="B").inc(2)
        registry.counter("execute.errors", backend="sqlite", kind="A").inc()
        snapshot = registry.snapshot()
        assert obs.error_counts(snapshot) == {
            "execute.errors{backend=duckdb,kind=B}": 2,
            "execute.errors{backend=sqlite,kind=A}": 1,
        }
        assert obs.error_breakdown(snapshot) == [
            {"backend": "duckdb", "kind": "B", "count": 2},
            {"backend": "sqlite", "kind": "A", "count": 1},
        ]
