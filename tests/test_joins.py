"""Join operator semantics: every algorithm, every join type, NULL handling."""

import pytest

from repro.expr import Comparison, column, lit
from repro.plan import (
    ExecutionHooks,
    Join,
    JoinAlgorithm,
    JoinKeySpec,
    JoinType,
    TableScan,
)
from repro.sqlvalue import NULL, TypeCategory
from repro.sqlvalue.values import normalize_row, row_sort_key

ALGORITHMS = list(JoinAlgorithm)


def run_join(db, join_type, algorithm, extra_condition=None):
    left = TableScan(db, "orders", "o")
    right = TableScan(db, "users", "u")
    key = JoinKeySpec("o.userId", "u.userId", TypeCategory.STRING)
    join = Join(left, right, join_type, algorithm, key,
                hooks=ExecutionHooks(), extra_condition=extra_condition)
    return join.execute()


def projected(rows, *columns):
    return sorted(
        (normalize_row(tuple(row[c] for c in columns)) for row in rows),
        key=row_sort_key,
    )


class TestInnerJoin:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_inner_join_matches(self, orders_db, algorithm):
        rows = run_join(orders_db, JoinType.INNER, algorithm)
        # 6 orders rows have a matching user; the NULL-key row never matches.
        assert len(rows) == 6
        assert all(row["u.userName"] is not NULL for row in rows)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_algorithms_agree(self, orders_db, algorithm):
        baseline = projected(
            run_join(orders_db, JoinType.INNER, JoinAlgorithm.NESTED_LOOP),
            "o.orderId", "u.userName",
        )
        assert projected(run_join(orders_db, JoinType.INNER, algorithm),
                         "o.orderId", "u.userName") == baseline

    def test_residual_condition(self, orders_db):
        residual = Comparison("=", column("u", "userName"), lit("Tom"))
        rows = run_join(orders_db, JoinType.INNER, JoinAlgorithm.HASH,
                        extra_condition=residual)
        assert {row["u.userName"] for row in rows} == {"Tom"}


class TestOuterJoins:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_left_outer_pads_unmatched(self, orders_db, algorithm):
        rows = run_join(orders_db, JoinType.LEFT_OUTER, algorithm)
        assert len(rows) == 7
        padded = [row for row in rows if row["u.userName"] is NULL]
        assert len(padded) == 1  # only the NULL-key order

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_right_outer_preserves_right(self, orders_db, algorithm):
        rows = run_join(orders_db, JoinType.RIGHT_OUTER, algorithm)
        users = {row["u.userId"] for row in rows}
        assert users == {"str1", "str2", "str3"}
        assert len(rows) == 6  # every user matches at least one order

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_full_outer_union(self, orders_db, algorithm):
        rows = run_join(orders_db, JoinType.FULL_OUTER, algorithm)
        # 6 matches + 1 unmatched order; every user is matched.
        assert len(rows) == 7

    def test_right_outer_pads_left_columns(self, orders_db):
        # Remove the orders of str3 so that user becomes unmatched.
        db = orders_db.copy()
        db.table("orders").rows[:] = [
            row for row in db.table("orders").rows if row["userId"] != "str3"
        ]
        left = TableScan(db, "orders", "o")
        right = TableScan(db, "users", "u")
        key = JoinKeySpec("o.userId", "u.userId", TypeCategory.STRING)
        rows = Join(left, right, JoinType.RIGHT_OUTER, JoinAlgorithm.HASH, key).execute()
        padded = [row for row in rows if row["o.orderId"] is NULL]
        assert len(padded) == 1
        assert padded[0]["u.userId"] == "str3"


class TestSemiAntiJoins:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_semi_join_returns_left_rows_once(self, orders_db, algorithm):
        rows = run_join(orders_db, JoinType.SEMI, algorithm)
        assert len(rows) == 6
        assert all(key.startswith("o.") for key in rows[0])

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_anti_join_keeps_unmatched_and_null_keys(self, orders_db, algorithm):
        rows = run_join(orders_db, JoinType.ANTI, algorithm)
        # Only the NULL-userId order has no match (all user ids exist).
        assert len(rows) == 1
        assert rows[0]["o.userId"] is NULL

    def test_anti_join_with_missing_parent(self, orders_db):
        db = orders_db.copy()
        db.table("users").rows[:] = [
            row for row in db.table("users").rows if row["userId"] != "str3"
        ]
        rows_by_algo = set()
        for algorithm in ALGORITHMS:
            left = TableScan(db, "orders", "o")
            right = TableScan(db, "users", "u")
            key = JoinKeySpec("o.userId", "u.userId", TypeCategory.STRING)
            rows = Join(left, right, JoinType.ANTI, algorithm, key).execute()
            rows_by_algo.add(tuple(projected(rows, "o.orderId", "o.userId")))
            assert len(rows) == 2  # the str3 order plus the NULL-key order
        assert len(rows_by_algo) == 1


class TestCrossJoin:
    def test_cross_join_cardinality(self, orders_db):
        left = TableScan(orders_db, "orders", "o")
        right = TableScan(orders_db, "users", "u")
        rows = Join(left, right, JoinType.CROSS, JoinAlgorithm.NESTED_LOOP, None).execute()
        assert len(rows) == 7 * 3

    def test_cross_join_requires_no_key_but_equi_join_does(self, orders_db):
        from repro.errors import ExecutionError

        left = TableScan(orders_db, "orders", "o")
        right = TableScan(orders_db, "users", "u")
        with pytest.raises(ExecutionError):
            Join(left, right, JoinType.INNER, JoinAlgorithm.HASH, None)


class TestOutputColumns:
    def test_semi_join_hides_right_columns(self, orders_db):
        left = TableScan(orders_db, "orders", "o")
        right = TableScan(orders_db, "users", "u")
        key = JoinKeySpec("o.userId", "u.userId", TypeCategory.STRING)
        join = Join(left, right, JoinType.SEMI, JoinAlgorithm.HASH, key)
        assert all(name.startswith("o.") for name in join.output_columns())

    def test_inner_join_exposes_both_sides(self, orders_db):
        left = TableScan(orders_db, "orders", "o")
        right = TableScan(orders_db, "users", "u")
        key = JoinKeySpec("o.userId", "u.userId", TypeCategory.STRING)
        join = Join(left, right, JoinType.INNER, JoinAlgorithm.HASH, key)
        names = join.output_columns()
        assert any(name.startswith("o.") for name in names)
        assert any(name.startswith("u.") for name in names)

    def test_describe_mentions_algorithm(self, orders_db):
        left = TableScan(orders_db, "orders", "o")
        right = TableScan(orders_db, "users", "u")
        key = JoinKeySpec("o.userId", "u.userId", TypeCategory.STRING)
        join = Join(left, right, JoinType.INNER, JoinAlgorithm.SORT_MERGE, key)
        assert "sort_merge" in join.describe()
