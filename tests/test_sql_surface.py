"""The widened SQL surface: set operations, scalar subqueries and CTEs.

Three soundness contracts are pinned here:

* **multiset comparison** — UNION ALL results are bags, and the oracle must
  compare them as bags: ``[1, 1]`` vs ``[1]`` is a mismatch, not a match;
* **NULL ordering** — the renderer emits explicit NULLS FIRST / NULLS LAST
  matching the reference executor's sort order, so ORDER BY over a nullable
  column agrees between engines whose *default* placements differ;
* **executor duality** — the row and columnar executors stay bit-identical
  (same value types, same rows) over every new operator class, numpy on or
  off, which is what admits either as the differential reference.

The end-to-end acceptance lives in ``TestWidenedCampaign``: a differential
campaign over SQLite with all three grammar knobs enabled completes 500+
comparisons with zero false positives.
"""

from __future__ import annotations

import logging

import pytest
from hypothesis import given, settings, strategies as st

from repro import DSG, DSGConfig, reference_engine
from repro.backends import SQLiteBackend
from repro.backends.sqlrender import (
    MYSQL_DIALECT,
    SQLITE_DIALECT,
    SQLRenderer,
)
from repro.core.campaign import CampaignConfig, CampaignSpec, run_campaign
from repro.core.differential import (
    DifferentialOracle,
    preserves_duplicates,
    result_sets_match,
)
from repro.distributed.wire import (
    decode_campaign_config,
    encode_campaign_config,
)
from repro.dsg.query_gen import GenerationConfig
from repro.engine.columnar import ColumnarExecutor
from repro.engine.resultset import ResultSet
from repro.errors import GenerationError, PlanError
from repro.expr.ast import ColumnRef, ScalarSubquery
from repro.plan.logical import (
    CompoundQuerySpec,
    OrderItem,
    QuerySpec,
    SelectItem,
    SetOperator,
    TableRef,
    combine_set_rows,
)
from repro.sqlvalue.values import is_null

WIDE_GENERATION = GenerationConfig(
    setop_probability=0.45,
    scalar_subquery_probability=0.35,
    cte_probability=0.30,
)

DATASETS = ("shopping", "kddcup")
SEEDS = (1, 2)
POOL_SIZE = 25

_DSG_CACHE = {}
_STATEMENT_CACHE = {}


def dsg_for(dataset, seed):
    key = (dataset, seed)
    if key not in _DSG_CACHE:
        _DSG_CACHE[key] = DSG(
            DSGConfig(dataset=dataset, dataset_rows=90, seed=seed,
                      generation=dataclasses_replace(WIDE_GENERATION))
        )
    return _DSG_CACHE[key]


def dataclasses_replace(config):
    # Each DSG gets its own GenerationConfig instance (the dataclass holds a
    # mutable weights dict).
    import dataclasses

    return dataclasses.replace(
        config, join_type_weights=dict(config.join_type_weights)
    )


def statement_pool(dataset, seed):
    key = (dataset, seed)
    if key not in _STATEMENT_CACHE:
        dsg = dsg_for(dataset, seed)
        pool = []
        while len(pool) < POOL_SIZE:
            try:
                pool.append(dsg.generate_statement())
            except GenerationError:
                continue
        _STATEMENT_CACHE[key] = pool
    return _STATEMENT_CACHE[key]


def typed_rows(result):
    """Rows with every value tagged by its concrete type."""
    return [tuple((type(v).__name__, v) for v in row) for row in result.rows]


def two_arm_compound(operator):
    """A tiny single-table compound over the shopping dataset."""
    dsg = dsg_for("shopping", 1)
    table = dsg.database.table_names[0]
    arm = QuerySpec(
        base=TableRef(table, table),
        select=[SelectItem(ColumnRef(table, dsg.ndb.data_columns(table)[0]))],
        distinct=False,
    )
    return CompoundQuerySpec(arms=[arm, arm], operators=[operator])


# --------------------------------------------------------------- IR contracts


class TestCompoundSpec:
    def test_mixed_operators_rejected(self):
        dsg = dsg_for("shopping", 1)
        table = dsg.database.table_names[0]
        arm = QuerySpec(
            base=TableRef(table, table),
            select=[SelectItem(ColumnRef(table, dsg.ndb.data_columns(table)[0]))],
        )
        spec = CompoundQuerySpec(
            arms=[arm, arm, arm],
            operators=[SetOperator.UNION, SetOperator.INTERSECT],
        )
        with pytest.raises(PlanError, match="one operator"):
            spec.validate()

    def test_single_arm_requires_cte_name(self):
        dsg = dsg_for("shopping", 1)
        table = dsg.database.table_names[0]
        arm = QuerySpec(
            base=TableRef(table, table),
            select=[SelectItem(ColumnRef(table, dsg.ndb.data_columns(table)[0]))],
        )
        with pytest.raises(PlanError, match="cte_name"):
            CompoundQuerySpec(arms=[arm]).validate()
        CompoundQuerySpec(arms=[arm], cte_name="cte0").validate()

    def test_combine_set_rows_semantics(self):
        left = [(1,), (1,), (2,)]
        right = [(2,), (3,)]
        assert combine_set_rows([left, right], [SetOperator.UNION_ALL]) == [
            (1,), (1,), (2,), (2,), (3,)
        ]
        assert combine_set_rows([left, right], [SetOperator.UNION]) == [
            (1,), (2,), (3,)
        ]
        assert combine_set_rows([left, right], [SetOperator.INTERSECT]) == [(2,)]
        assert combine_set_rows([left, right], [SetOperator.EXCEPT]) == [(1,)]

    def test_cte_render_wraps_body(self):
        dsg = dsg_for("shopping", 1)
        table = dsg.database.table_names[0]
        column = dsg.ndb.data_columns(table)[0]
        arm = QuerySpec(
            base=TableRef(table, table),
            select=[SelectItem(ColumnRef(table, column))],
        )
        spec = CompoundQuerySpec(arms=[arm], cte_name="cte0")
        sql = spec.render()
        assert sql.startswith("WITH cte0 AS (")
        assert f"SELECT {column} FROM cte0" in sql


# ----------------------------------------------------- satellite 1: bag mode


class TestBagComparison:
    def test_duplicate_rows_mismatch_under_bag(self):
        doubled = ResultSet(["v"], [(1,), (1,)])
        single = ResultSet(["v"], [(1,)])
        # Set comparison silently equates them; bag comparison must not.
        assert doubled.same_rows(single)
        assert not doubled.same_bag(single)
        assert result_sets_match(doubled, single, bag=False)
        assert not result_sets_match(doubled, single, bag=True)
        assert result_sets_match(doubled, ResultSet(["v"], [(1,), (1,)]),
                                 bag=True)

    def test_oracle_selects_bag_for_union_all(self):
        assert preserves_duplicates(two_arm_compound(SetOperator.UNION_ALL))
        assert not preserves_duplicates(two_arm_compound(SetOperator.UNION))
        assert not preserves_duplicates(two_arm_compound(SetOperator.EXCEPT))

    def test_oracle_selects_set_for_distinct_projection(self):
        dsg = dsg_for("shopping", 1)
        query = dsg.generate_query()
        assert query.distinct
        assert not preserves_duplicates(query)

    def test_bag_mode_float_tolerance(self):
        left = ResultSet(["v"], [(1.0,), (1.0,)])
        right = ResultSet(["v"], [(1.0 + 1e-12,), (1.0 + 1e-12,)])
        assert result_sets_match(left, right, bag=True)
        assert not result_sets_match(left, ResultSet(["v"], [(1.0,)]),
                                     bag=True)


# ------------------------------------------------- satellite 2: NULL ordering


class TestNullOrdering:
    def _nullable_query(self, descending):
        # T1.goodsId carries injected NULLs in the noisy shopping dataset.
        return QuerySpec(
            base=TableRef("T1", "T1"),
            select=[SelectItem(ColumnRef("T1", "goodsId"))],
            order_by=[OrderItem(ColumnRef("T1", "goodsId"),
                                descending=descending)],
            distinct=False,
        )

    def test_renderer_emits_explicit_placement(self):
        renderer = SQLRenderer(SQLITE_DIALECT)
        asc = renderer.query(self._nullable_query(descending=False))
        desc = renderer.query(self._nullable_query(descending=True))
        if SQLITE_DIALECT.supports_nulls_ordering:
            assert "NULLS FIRST" in asc
            assert "NULLS LAST" in desc

    def test_mysql_dialect_omits_placement_syntax(self):
        # MySQL has no NULLS FIRST/LAST syntax; its default placement (NULLs
        # first ascending, last descending) already matches the reference.
        assert not MYSQL_DIALECT.supports_nulls_ordering
        sql = SQLRenderer(MYSQL_DIALECT).query(
            self._nullable_query(descending=False)
        )
        assert "NULLS" not in sql

    @pytest.mark.parametrize("descending", [False, True])
    def test_sqlite_agrees_with_reference_order(self, descending):
        dsg = dsg_for("shopping", 1)
        backend = SQLiteBackend()
        backend.deploy(dsg.database)
        try:
            query = self._nullable_query(descending)
            reference = reference_engine(dsg.database).execute(query)
            execution = backend.execute(query)
            # Order-sensitive: the whole point is the NULL placement.
            assert list(reference.rows) == list(execution.result.rows)
            nulls = [is_null(row[0]) for row in reference.rows]
            assert any(nulls), "dataset must exercise NULL ordering"
            if descending:
                assert nulls == sorted(nulls)  # NULLs last
            else:
                assert nulls == sorted(nulls, reverse=True)  # NULLs first
        finally:
            backend.close()


# --------------------------------------------- satellite 3: generate_many fix


class TestGenerateMany:
    def test_explicit_parameters(self):
        dsg = dsg_for("shopping", 2)
        queries = dsg.query_generator.generate_many(3, walk_length=2)
        assert len(queries) == 3
        with pytest.raises(TypeError):
            dsg.query_generator.generate_many(1, bogus_kwarg=1)

    def test_shortfall_warns_and_accounts_rejections(self, caplog):
        dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=60, seed=4))
        generator = dsg.query_generator
        before = generator.rejected_queries
        with caplog.at_level(logging.WARNING, logger="repro.dsg.query_gen"):
            queries = generator.generate_many(3, start_table="no_such_table")
        assert queries == []
        assert generator.rejected_queries == before + 30
        assert any("generate_many produced 0 of 3" in record.message
                   for record in caplog.records)

    def test_no_warning_when_fulfilled(self, caplog):
        dsg = dsg_for("shopping", 2)
        with caplog.at_level(logging.WARNING, logger="repro.dsg.query_gen"):
            queries = dsg.query_generator.generate_many(2)
        assert len(queries) == 2
        assert not caplog.records


# ----------------------------------------------------- generator determinism


class TestGeneratorStreams:
    def test_zero_probabilities_leave_stream_untouched(self):
        # The widened grammar must not consume RNG draws while disabled:
        # a seeded campaign replays byte-identically whether the generator
        # routes through generate() or generate_statement().
        plain = DSG(DSGConfig(dataset="shopping", dataset_rows=90, seed=6))
        routed = DSG(DSGConfig(dataset="shopping", dataset_rows=90, seed=6))
        for _ in range(12):
            left = plain.generate_query()
            right = routed.generate_statement()
            assert isinstance(right, QuerySpec)
            assert left.render() == right.render()

    def test_statement_generation_is_deterministic(self):
        def renders(seed):
            dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=90, seed=seed,
                                generation=dataclasses_replace(WIDE_GENERATION)))
            return [dsg.generate_statement().render() for _ in range(15)]

        assert renders(8) == renders(8)
        shapes = renders(8)
        assert any("UNION" in sql or "INTERSECT" in sql or "EXCEPT" in sql
                   for sql in shapes)
        assert any("WITH cte0 AS" in sql for sql in shapes)
        assert any("sq0" in sql or "sq1" in sql for sql in shapes)


# ------------------------------------------------ scalar subquery semantics


class TestScalarSubquery:
    def test_resolve_rows(self):
        assert is_null(ScalarSubquery.resolve_rows([]))
        assert ScalarSubquery.resolve_rows([(7,)]) == 7
        with pytest.raises(Exception):
            ScalarSubquery.resolve_rows([(1,), (2,)])

    def test_generated_subqueries_are_single_row(self):
        # Every generated scalar subquery is an aggregate with no GROUP BY —
        # the construction that makes multi-row divergence (SQLite picks the
        # first row, DuckDB errors) unreachable.
        found = 0
        for dataset in DATASETS:
            for seed in SEEDS:
                for statement in statement_pool(dataset, seed):
                    arms = (statement.arms
                            if isinstance(statement, CompoundQuerySpec)
                            else [statement])
                    for arm in arms:
                        for item in arm.select:
                            if isinstance(item.expression, ScalarSubquery):
                                found += 1
                                inner = item.expression.subquery
                                assert inner.has_aggregates()
                                assert not inner.group_by
        assert found > 0


# ----------------------------------- satellite 4: property-tested executors


@settings(max_examples=60, deadline=None)
@given(
    dataset=st.sampled_from(DATASETS),
    seed=st.sampled_from(SEEDS),
    index=st.integers(0, POOL_SIZE - 1),
    use_numpy=st.booleans(),
)
def test_columnar_matches_row_on_widened_grammar(dataset, seed, index,
                                                 use_numpy):
    dsg = dsg_for(dataset, seed)
    statement = statement_pool(dataset, seed)[index]
    row_result = reference_engine(dsg.database).execute(statement)
    columnar = ColumnarExecutor(use_numpy=use_numpy)
    col_result = reference_engine(dsg.database,
                                  executor=columnar).execute(statement)
    assert col_result.columns == row_result.columns
    assert typed_rows(col_result) == typed_rows(row_result)


@settings(max_examples=40, deadline=None)
@given(
    dataset=st.sampled_from(DATASETS),
    seed=st.sampled_from(SEEDS),
    index=st.integers(0, POOL_SIZE - 1),
)
def test_render_roundtrip_on_sqlite(dataset, seed, index):
    """Rendered SQL for every statement shape parses and runs on SQLite."""
    dsg = dsg_for(dataset, seed)
    statement = statement_pool(dataset, seed)[index]
    key = (dataset, seed)
    if key not in _BACKEND_CACHE:
        backend = SQLiteBackend()
        backend.deploy(dsg.database)
        _BACKEND_CACHE[key] = backend
    backend = _BACKEND_CACHE[key]
    execution = backend.execute(statement)
    reference = reference_engine(dsg.database).execute(statement)
    assert result_sets_match(reference, execution.result,
                             bag=preserves_duplicates(statement))


_BACKEND_CACHE = {}


# -------------------------------------------------- satellite 6: wire codec


class TestWireConfig:
    def test_grammar_probabilities_roundtrip(self):
        config = CampaignConfig(setop_probability=0.4,
                                scalar_subquery_probability=0.3,
                                cte_probability=0.25)
        decoded = decode_campaign_config(encode_campaign_config(config))
        assert decoded == config
        assert decoded.setop_probability == 0.4
        assert decoded.scalar_subquery_probability == 0.3
        assert decoded.cte_probability == 0.25

    def test_spec_passes_probabilities_to_generation(self):
        spec = CampaignSpec(kind="differential", setop_probability=0.2,
                            scalar_subquery_probability=0.1,
                            cte_probability=0.05)
        generation = spec.campaign_config().dsg_config().generation
        assert generation.setop_probability == 0.2
        assert generation.scalar_subquery_probability == 0.1
        assert generation.cte_probability == 0.05


# --------------------------------------------------- acceptance: the campaign


class TestWidenedCampaign:
    def test_sqlite_campaign_500_comparisons_zero_false_positives(self):
        spec = CampaignSpec(
            kind="differential", backend="sqlite",
            dataset="shopping", dataset_rows=100,
            hours=5, queries_per_hour=110, seed=13,
            reference_executor="columnar", use_query_cache=True,
            setop_probability=0.4,
            scalar_subquery_probability=0.3,
            cte_probability=0.25,
        )
        result = run_campaign(spec)
        final = result.final
        assert final.queries_executed >= 500
        assert final.bug_count == 0

    def test_oracle_handles_every_pool_statement(self):
        dsg = dsg_for("shopping", 1)
        backend = SQLiteBackend()
        backend.deploy(dsg.database)
        oracle = DifferentialOracle(reference_engine(dsg.database), backend)
        try:
            for statement in statement_pool("shopping", 1):
                outcome = oracle.check(statement)
                assert not outcome.detected, outcome.sql
        finally:
            backend.close()
