"""Kill-and-restore tests for the index server's snapshot round log."""

import threading

import pytest

from repro.core import (
    CampaignConfig,
    build_shard_specs,
    finalize_parallel_result,
    run_shard_with_transport,
    sync_schedule,
)
from repro.distributed import protocol
from repro.distributed.client import RemoteSyncTransport, run_remote_client
from repro.distributed.server import SNAPSHOT_FILENAME, IndexServer
from repro.errors import TransportError

FAST = CampaignConfig(
    dataset="shopping", dataset_rows=90, hours=3, queries_per_hour=6, seed=71
)

ROUND_ONE = {
    0: [([1.0, 0.0, 0.0], "A"), ([0.0, 1.0, 0.0], "B")],
    1: [([0.0, 0.0, 1.0], "C")],
}


def make_server(tmp_path, **overrides):
    defaults = dict(
        shards=build_shard_specs("tqs", FAST, 2),
        sync_hours=sync_schedule(FAST.hours, 1),
        round_timeout=60.0,
        snapshot_dir=str(tmp_path),
    )
    defaults.update(overrides)
    return IndexServer(**defaults).start()


def complete_one_round(server, batches, hour=1):
    """Drive one sync barrier to completion via the server's own entry point."""
    results = {}

    def worker(shard_id):
        results[shard_id] = server._sync(shard_id, hour, batches[shard_id])

    with server._cond:
        server._registered.update(batches)
    threads = [threading.Thread(target=worker, args=(sid,)) for sid in batches]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert all(reply[0] == protocol.BROADCAST for reply in results.values())
    return {sid: reply[1] for sid, reply in results.items()}


class TestRoundLogRestore:
    def test_restart_replays_logged_rounds_bit_identically(self, tmp_path):
        server = make_server(tmp_path)
        try:
            first_broadcasts = complete_one_round(server, ROUND_ONE)
        finally:
            server.stop()

        restarted = make_server(tmp_path)
        try:
            assert restarted.restored_rounds == 1
            assert restarted.stats_payload()["rounds_restored"] == 1
            # The central index already holds the logged entries.
            assert restarted.coordinator.index.contains_label("A")
            assert restarted.coordinator.index.contains_label("C")
            # Re-running shards get the *stored* broadcasts, not a re-merge.
            replayed = complete_one_round(restarted, ROUND_ONE)
            assert replayed == first_broadcasts
            assert restarted.failure is None
            # The replayed hour is now complete; index state must match a
            # server that ran the round live (one copy of each label).
            live = make_server(tmp_path / "live")
            try:
                complete_one_round(live, ROUND_ONE)
                assert (
                    len(restarted.coordinator.index)
                    == len(live.coordinator.index)
                )
            finally:
                live.stop()
        finally:
            restarted.stop()

    def test_restore_divergence_fails_the_campaign(self, tmp_path):
        server = make_server(tmp_path)
        try:
            complete_one_round(server, ROUND_ONE)
        finally:
            server.stop()

        restarted = make_server(tmp_path)
        try:
            with restarted._cond:
                restarted._registered.update({0, 1})
            # Shard 0 ships one entry where the log recorded two: the restarted
            # campaign is not deterministic, which must fail loudly instead of
            # silently corrupting the merge.
            reply = restarted._sync(0, 1, ROUND_ONE[0][:1])
            assert reply[0] == protocol.ABORT
            assert "divergence" in restarted.failure
        finally:
            restarted.stop()

    def test_unrelated_campaign_starts_a_fresh_log(self, tmp_path):
        server = make_server(tmp_path)
        try:
            complete_one_round(server, ROUND_ONE)
        finally:
            server.stop()

        other = CampaignConfig(
            dataset="shopping", dataset_rows=90, hours=3, queries_per_hour=9, seed=71
        )
        restarted = make_server(tmp_path, shards=build_shard_specs("tqs", other, 2))
        try:
            assert restarted.restored_rounds == 0
        finally:
            restarted.stop()

    def test_torn_tail_record_is_shed_on_restart(self, tmp_path):
        server = make_server(tmp_path)
        try:
            complete_one_round(server, ROUND_ONE, hour=1)
            complete_one_round(
                server, {0: [([1.0, 1.0, 0.0], "D")], 1: []}, hour=2
            )
        finally:
            server.stop()

        path = tmp_path / SNAPSHOT_FILENAME
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # tear the final (hour-2) record

        restarted = make_server(tmp_path)
        try:
            # Hour 1 replays; the torn hour-2 record is dropped and that round
            # simply re-runs live — and gets logged again on completion.
            assert restarted.restored_rounds == 1
            rerun = complete_one_round(
                restarted, {0: [([1.0, 1.0, 0.0], "D")], 1: []}, hour=2
            )
            assert rerun[1].entries == [([1.0, 1.0, 0.0], "D")]
        finally:
            restarted.stop()
        # The rewritten-and-appended log now restores both rounds.
        final = make_server(tmp_path)
        try:
            assert final.restored_rounds == 2
        finally:
            final.stop()

    def test_corrupt_header_is_a_typed_startup_error(self, tmp_path):
        server = make_server(tmp_path)
        server.stop()
        path = tmp_path / SNAPSHOT_FILENAME
        data = bytearray(path.read_bytes())
        data[20] ^= 0xFF  # scribble inside the header JSON
        path.write_bytes(bytes(data))
        with pytest.raises(TransportError, match="cannot restore snapshot"):
            make_server(tmp_path)


class _CrashAfterFirstSync:
    """A transport that dies between rounds, simulating a mid-campaign crash.

    The first sync completes normally — so the server's round-1 record is
    durable before the broadcast is even released — and the next one raises
    as if the worker process was killed.
    """

    def __init__(self, inner):
        self._inner = inner
        self._synced = False

    def register(self, shard_id):
        return self._inner.register(shard_id)

    def sync(self, shard_id, hour, entries, telemetry=None):
        if self._synced:
            raise TransportError("simulated worker crash before round 2")
        self._synced = True
        return self._inner.sync(shard_id, hour, entries, telemetry)

    def report(self, report):
        self._inner.report(report)

    def error(self, shard_id, text):
        self._inner.error(shard_id, text)

    def tick(self, shard_id):
        self._inner.tick(shard_id)

    def close(self):
        self._inner.close()


def run_full_clients(server):
    results = []
    errors = []

    def client():
        try:
            results.append(run_remote_client(server.host, server.port))
        except BaseException as exc:  # surfaced via the errors list
            errors.append(exc)

    threads = [threading.Thread(target=client) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert not errors
    assert server.wait(5.0) and server.failure is None
    return finalize_parallel_result(
        list(server.reports.values()),
        server.coordinator,
        workers=2,
        sync_rounds=len(server.sync_hours),
        elapsed_seconds=0.0,
        transport="tcp",
    )


class TestKillAndRestoreCampaign:
    def test_restored_campaign_is_bit_identical_to_uninterrupted(self, tmp_path):
        """The acceptance bar: crash after round 1, restore, identical result."""
        shards = build_shard_specs("tqs", FAST, 2)
        sync_hours = sync_schedule(FAST.hours, 1)
        baseline_server = make_server(tmp_path / "baseline")
        try:
            baseline = run_full_clients(baseline_server)
        finally:
            baseline_server.stop()

        # Phase one: both workers crash after their first sync round.
        crashed = make_server(tmp_path / "snap")
        try:
            crash_errors = []

            def doomed_client(spec):
                transport = _CrashAfterFirstSync(
                    RemoteSyncTransport(crashed.host, crashed.port)
                )
                try:
                    transport.register(spec.shard_id)
                    run_shard_with_transport(spec, sync_hours, transport)
                except TransportError as exc:
                    crash_errors.append(exc)
                finally:
                    transport.close()

            threads = [
                threading.Thread(target=doomed_client, args=(spec,))
                for spec in shards
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert len(crash_errors) == 2
        finally:
            crashed.stop()

        # Phase two: a restarted server replays round 1 from the log and fresh
        # clients re-run the campaign from hour 0.
        restored_server = make_server(tmp_path / "snap")
        try:
            assert restored_server.restored_rounds >= 1
            restored = run_full_clients(restored_server)
        finally:
            restored_server.stop()

        assert restored.merged.samples == baseline.merged.samples
        assert restored.sync_stats == baseline.sync_stats
        assert restored.merged.bug_log is not None
        assert baseline.merged.bug_log is not None
        assert {
            (i.root_cause, i.query_canonical_label)
            for i in restored.merged.bug_log.incidents
        } == {
            (i.root_cause, i.query_canonical_label)
            for i in baseline.merged.bug_log.incidents
        }
