"""Tests for the distributed KQE index server and the TCP sync transport."""

import json
import socket
import threading

import pytest

from repro.analysis.reporting import parallel_result_to_dict
from repro.core import (
    CampaignConfig,
    ParallelCampaignConfig,
    build_shard_specs,
    finalize_parallel_result,
    run_parallel_shards,
    run_parallel_tqs_campaign,
    run_tqs_campaign,
    sync_schedule,
)
from repro.distributed import protocol
from repro.distributed.cli import _diff_summaries, main as distributed_main
from repro.distributed.client import request_shutdown, run_remote_client
from repro.distributed.coordinator import CentralCoordinator
from repro.distributed.server import IndexServer
from repro.engine import SIM_MYSQL
from repro.errors import CampaignError, TransportError

FAST = CampaignConfig(
    dataset="shopping", dataset_rows=90, hours=3, queries_per_hour=6, seed=71
)
# A longer campaign for the payload-reduction assertions: more rounds and a
# bigger per-hour budget mean more repeated join skeletons to suppress.
LONG = CampaignConfig(
    dataset="shopping", dataset_rows=90, hours=4, queries_per_hour=10, seed=23
)


def pool_config(workers, **overrides):
    defaults = dict(workers=workers, sync_interval=1, worker_timeout=120.0)
    defaults.update(overrides)
    return ParallelCampaignConfig(**defaults)


def bug_keys(result):
    assert result.bug_log is not None
    return {
        (incident.root_cause, incident.query_canonical_label)
        for incident in result.bug_log.incidents
    }


@pytest.fixture(scope="module")
def serial_result():
    return run_tqs_campaign(SIM_MYSQL, FAST)


@pytest.fixture(scope="module")
def local_pool2():
    return run_parallel_tqs_campaign(SIM_MYSQL, FAST, pool_config(2))


@pytest.fixture(scope="module")
def tcp_pool2():
    return run_parallel_tqs_campaign(SIM_MYSQL, FAST, pool_config(2, transport="tcp"))


class TestProtocolFraming:
    def test_round_trip(self):
        left, right = socket.socketpair()
        try:
            message = ("sync", 3, 2, [([0.5, 1.0], "label-a")])
            protocol.send_frame(left, message)
            assert protocol.recv_frame(right) == message
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none_when_allowed(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert protocol.recv_frame(right, allow_eof=True) is None
            with pytest.raises(TransportError):
                protocol.recv_frame(right)
        finally:
            right.close()

    def test_oversized_length_prefix_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall((protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(TransportError):
                protocol.recv_frame(right)
        finally:
            left.close()
            right.close()


class TestNoveltyPruning:
    def entry(self, label, value=1.0):
        return ([value, 0.0], label)

    def test_worker_never_receives_labels_it_already_holds(self):
        coordinator = CentralCoordinator(prune=True)
        # Round 1: worker 0 submits L1; worker 1 submits L2.  Both labels are
        # novel to the other side, so both entries cross.
        first = coordinator.complete_round(
            {0: [self.entry("L1")], 1: [self.entry("L2")]}
        )
        assert [label for _, label in first[0].entries] == ["L2"]
        assert [label for _, label in first[1].entries] == ["L1"]
        assert first[0].suppressed == 0 and first[1].suppressed == 0
        # Round 2: worker 1 rediscovers L1 (which worker 0 submitted itself)
        # and L2 (which worker 0 received in round 1); both must be withheld
        # from worker 0, and the novel L3 must still cross.
        second = coordinator.complete_round(
            {
                0: [],
                1: [self.entry("L1"), self.entry("L2"), self.entry("L3")],
            }
        )
        assert [label for _, label in second[0].entries] == ["L3"]
        assert second[0].suppressed == 2
        assert second[1].entries == [] and second[1].suppressed == 0

    def test_duplicate_labels_within_one_round_collapse(self):
        coordinator = CentralCoordinator(prune=True)
        broadcasts = coordinator.complete_round(
            {0: [self.entry("L1")], 1: [self.entry("L1")], 2: []}
        )
        # Worker 2 hears L1 once (from the lowest shard id); the copy is
        # suppressed.  Workers 0 and 1 already hold L1 themselves.
        assert [label for _, label in broadcasts[2].entries] == ["L1"]
        assert broadcasts[2].suppressed == 1
        assert broadcasts[0].entries == [] and broadcasts[0].suppressed == 1
        assert broadcasts[1].entries == [] and broadcasts[1].suppressed == 1

    def test_unpruned_coordinator_forwards_everything(self):
        coordinator = CentralCoordinator(prune=False)
        coordinator.complete_round({0: [self.entry("L1")], 1: [self.entry("L1")]})
        broadcasts = coordinator.complete_round(
            {0: [self.entry("L1")], 1: [self.entry("L1")]}
        )
        assert [label for _, label in broadcasts[0].entries] == ["L1"]
        assert coordinator.broadcast_entries_suppressed == 0
        assert coordinator.broadcast_entries_sent == 4

    def test_totals_track_every_round(self):
        coordinator = CentralCoordinator(prune=True)
        coordinator.complete_round({0: [self.entry("L1")], 1: [self.entry("L1")]})
        assert coordinator.broadcast_entries_sent == 0
        assert coordinator.broadcast_entries_suppressed == 2
        assert len(coordinator.index) == 2
        assert coordinator.index.distinct_canonical_labels() == 1


class TestTCPDeterminism:
    def test_one_client_tcp_run_equals_serial_runner(self, serial_result):
        """The determinism contract: 1-client TCP == the serial loop, bitwise."""
        tcp = run_parallel_tqs_campaign(
            SIM_MYSQL, FAST, pool_config(1, transport="tcp")
        )
        assert tcp.merged.samples == serial_result.samples
        assert bug_keys(tcp.merged) == bug_keys(serial_result)
        assert tcp.transport == "tcp"

    def test_two_client_tcp_run_equals_in_process_pool(self, local_pool2, tcp_pool2):
        assert tcp_pool2.merged.samples == local_pool2.merged.samples
        assert bug_keys(tcp_pool2.merged) == bug_keys(local_pool2.merged)
        assert tcp_pool2.central_index_size == local_pool2.central_index_size
        assert tcp_pool2.central_distinct_labels == local_pool2.central_distinct_labels
        assert tcp_pool2.sync_stats == local_pool2.sync_stats
        assert tcp_pool2.broadcast_entries_sent == local_pool2.broadcast_entries_sent
        assert (
            tcp_pool2.broadcast_entries_suppressed
            == local_pool2.broadcast_entries_suppressed
        )

    def test_summary_dicts_identical_across_transports(self, local_pool2, tcp_pool2):
        local = parallel_result_to_dict(local_pool2)
        tcp = parallel_result_to_dict(tcp_pool2)
        assert _diff_summaries(tcp["summary"], local["summary"]) == []
        # The JSON artifact survives a serialization round trip unchanged.
        rehydrated = json.loads(json.dumps(tcp))
        assert _diff_summaries(rehydrated["summary"], local["summary"]) == []

    def test_diff_summaries_pinpoints_mismatches(self, local_pool2):
        summary = parallel_result_to_dict(local_pool2)["summary"]
        perturbed = json.loads(json.dumps(summary))
        perturbed["merged"]["samples"][-1]["bug_count"] += 1
        lines = _diff_summaries(summary, perturbed)
        assert len(lines) == 1
        assert "bug_count" in lines[0]

    def test_pickle_protocol_pool_matches_local_pool(self, local_pool2):
        """v1 back-compat: the legacy pickle framing is still bit-identical."""
        pickle_pool = run_parallel_tqs_campaign(
            SIM_MYSQL, FAST, pool_config(2, transport="tcp", protocol="pickle")
        )
        assert pickle_pool.merged.samples == local_pool2.merged.samples
        assert bug_keys(pickle_pool.merged) == bug_keys(local_pool2.merged)

    def test_unknown_transport_rejected(self):
        shards = build_shard_specs("tqs", FAST, 2)
        with pytest.raises(CampaignError):
            run_parallel_shards(shards, pool_config(2, transport="carrier-pigeon"))

    def test_unknown_wire_protocol_rejected_before_spawning(self):
        shards = build_shard_specs("tqs", FAST, 2)
        with pytest.raises(CampaignError, match="unknown wire protocol"):
            run_parallel_shards(
                shards, pool_config(2, transport="tcp", protocol="telegraph")
            )


class TestPayloadReduction:
    def test_pruning_reduces_broadcast_volume_on_a_long_campaign(self):
        pruned = run_parallel_tqs_campaign(SIM_MYSQL, LONG, pool_config(2))
        unpruned = run_parallel_tqs_campaign(
            SIM_MYSQL, LONG, pool_config(2, prune_broadcasts=False)
        )
        assert pruned.broadcast_entries_suppressed > 0
        assert pruned.broadcast_entries_sent < unpruned.broadcast_entries_sent
        assert unpruned.broadcast_entries_suppressed == 0
        # Suppressed-entry counts reconcile: what the workers report adds up
        # to what the coordinator counted, and likewise for delivered entries.
        assert (
            sum(s.broadcast_entries_suppressed for s in pruned.sync_stats)
            == pruned.broadcast_entries_suppressed
        )
        assert (
            sum(s.broadcast_entries_received for s in pruned.sync_stats)
            == pruned.broadcast_entries_sent
        )
        # Pruning withholds duplicate labels, never distinct structures: the
        # central index sees every generated query either way.
        assert pruned.central_index_size == pruned.merged.final.queries_generated

    def test_worker_reports_surface_suppressed_counts(self, tcp_pool2):
        assert (
            sum(s.broadcast_entries_suppressed for s in tcp_pool2.sync_stats)
            == tcp_pool2.broadcast_entries_suppressed
        )
        assert all(s.entries_shipped > 0 for s in tcp_pool2.sync_stats)


class TestIndexServerProtocol:
    def test_server_assigns_shards_to_bare_clients(self, local_pool2):
        """CLI-style clients (no shard preassignment) match the local pool."""
        shards = build_shard_specs("tqs", FAST, 2)
        server = IndexServer(
            shards=shards,
            sync_hours=sync_schedule(FAST.hours, 1),
            round_timeout=120.0,
        )
        server.start()
        try:
            results = []
            errors = []

            def client():
                try:
                    results.append(run_remote_client(server.host, server.port))
                except BaseException as exc:  # surfaced via the errors list
                    errors.append(exc)

            threads = [threading.Thread(target=client) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not errors
            assert server.wait(5.0) and server.failure is None
            outcome = finalize_parallel_result(
                list(server.reports.values()),
                server.coordinator,
                workers=2,
                sync_rounds=len(server.sync_hours),
                elapsed_seconds=0.0,
                transport="tcp",
            )
        finally:
            server.stop()
        assert outcome.merged.samples == local_pool2.merged.samples
        assert bug_keys(outcome.merged) == bug_keys(local_pool2.merged)

    def test_extra_client_is_turned_away_without_killing_the_campaign(self):
        shards = build_shard_specs("tqs", FAST, 1)
        server = IndexServer(shards=shards, sync_hours=(), round_timeout=30.0)
        server.start()
        try:
            from repro.distributed.client import RemoteSyncTransport

            first = RemoteSyncTransport(server.host, server.port)
            assert first.register(None) is not None
            second = RemoteSyncTransport(server.host, server.port)
            with pytest.raises(TransportError):
                second.register(None)
            # The turned-away client reports an error on its way out (that is
            # what run_remote_client does); a healthy campaign must survive it.
            second.error(-1, "rejected registration")
            assert server.failure is None
            first.close()
            second.close()
        finally:
            server.stop()

    def test_disconnect_after_reporting_is_harmless(self, local_pool2):
        """An abrupt close after a delivered report must not fail the run."""
        shards = build_shard_specs("tqs", FAST, 2)
        server = IndexServer(
            shards=shards,
            sync_hours=sync_schedule(FAST.hours, 1),
            round_timeout=30.0,
        )
        server.start()
        try:
            # Shard 0 reported already; its connection breaking afterwards is
            # routine (process exit, NAT reset) while shard 1 is still running.
            server.reports[0] = object()
            server.connection_broken([0], "connection reset by peer")
            assert server.failure is None
            server.connection_closed([0])
            assert server.failure is None
            # An unreported shard's broken connection still fails the run.
            server.connection_broken([1], "connection reset by peer")
            assert server.failure is not None
        finally:
            server.stop()

    def test_completed_rounds_are_freed(self):
        """Long campaigns must not accumulate every round's payload in RAM."""
        shards = build_shard_specs("tqs", FAST, 2)
        server = IndexServer(shards=shards, sync_hours=(1, 2), round_timeout=30.0)
        try:
            results = {}

            def worker(shard_id):
                results[shard_id] = server._sync(
                    shard_id, 1, [([1.0, 0.0], f"L{shard_id}")]
                )

            threads = [threading.Thread(target=worker, args=(sid,)) for sid in (0, 1)]
            server._registered.update({0, 1})
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert results[0][0] == protocol.BROADCAST
            assert server._round_batches == {} and server._round_broadcasts == {}
            # Re-syncing a completed hour is a protocol violation, not a hang.
            assert server._sync(0, 1, [])[0] == protocol.ABORT
        finally:
            server._server.server_close()

    def test_shutdown_verb_stops_an_incomplete_campaign(self):
        shards = build_shard_specs("tqs", FAST, 2)
        server = IndexServer(
            shards=shards,
            sync_hours=sync_schedule(FAST.hours, 1),
            round_timeout=30.0,
        )
        server.start()
        try:
            request_shutdown(server.host, server.port)
            assert server.wait(10.0)
            assert server.failure is not None
            assert "shutdown" in server.failure
        finally:
            server.stop()

    def test_worker_disconnect_fails_the_campaign(self):
        shards = build_shard_specs("tqs", FAST, 2)
        server = IndexServer(
            shards=shards,
            sync_hours=sync_schedule(FAST.hours, 1),
            round_timeout=30.0,
        )
        server.start()
        try:
            from repro.distributed.client import RemoteSyncTransport

            transport = RemoteSyncTransport(server.host, server.port)
            transport.register(0)
            transport.close()
            assert server.wait(10.0)
            assert server.failure is not None
            assert "disconnected" in server.failure
        finally:
            server.stop()


class TestVerifyLocalCLI:
    def test_verify_local_accepts_a_recorded_tcp_campaign(self, tmp_path):
        from repro.analysis.reporting import write_parallel_result_json

        outcome = run_parallel_tqs_campaign(
            SIM_MYSQL, FAST, pool_config(2, transport="tcp")
        )
        campaign = {
            "kind": "tqs",
            "workers": 2,
            "dataset": FAST.dataset,
            "dataset_rows": FAST.dataset_rows,
            "hours": FAST.hours,
            "queries_per_hour": FAST.queries_per_hour,
            "seed": FAST.seed,
            "sync_interval": 1,
            "dialect": "SimMySQL",
            "baseline": "NoRec",
            "backend": "sqlite",
            "prune": True,
        }
        path = tmp_path / "campaign.json"
        write_parallel_result_json(outcome, str(path), campaign=campaign)
        rc = distributed_main(
            ["verify-local", "--json", str(path), "--worker-timeout", "120"]
        )
        assert rc == 0
