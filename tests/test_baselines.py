"""Tests for the PQS / TLP / NoRec baselines."""

import pytest

from repro.baselines import BASELINES, NoRecTester, PQSTester, TLPTester, make_baseline
from repro.dsg import DSG, DSGConfig
from repro.engine import Engine, SIM_MARIADB, SIM_XDB, reference_engine


@pytest.fixture(scope="module")
def baseline_dsg():
    return DSG(DSGConfig(dataset="shopping", dataset_rows=100, seed=61))


class TestRegistry:
    def test_registry_contents(self):
        assert set(BASELINES) == {"PQS", "TLP", "NoRec"}
        assert isinstance(make_baseline("PQS"), PQSTester)
        with pytest.raises(KeyError):
            make_baseline("fuzzer9000")


class TestSharedGenerator:
    def test_random_join_query_is_valid(self, baseline_dsg):
        tester = make_baseline("PQS")
        tester.bind(baseline_dsg, reference_engine(baseline_dsg.database), seed=1)
        for _ in range(10):
            query = tester.random_join_query()
            query.validate()
            assert len(query.tables) >= 2

    def test_record_query_tracks_diversity(self, baseline_dsg):
        tester = make_baseline("TLP")
        tester.bind(baseline_dsg, reference_engine(baseline_dsg.database), seed=2)
        before = tester.explored_isomorphic_sets
        tester.record_query(tester.random_join_query())
        assert tester.explored_isomorphic_sets >= before
        assert tester.queries_generated == 1


@pytest.mark.parametrize("name", sorted(BASELINES))
class TestNoFalsePositives:
    def test_clean_engine_yields_no_bugs(self, name, baseline_dsg):
        tester = make_baseline(name)
        tester.bind(baseline_dsg, reference_engine(baseline_dsg.database), seed=3)
        for _ in range(40):
            tester.run_iteration()
        assert tester.bug_log.bug_count == 0
        assert tester.queries_executed > 0


class TestDetectionCapability:
    def test_norec_detects_plan_dependent_bugs(self):
        dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=110, seed=63))
        tester = NoRecTester()
        tester.bind(dsg, Engine(dsg.database, SIM_MARIADB), seed=4)
        for _ in range(150):
            tester.run_iteration()
        # NoRec compares the optimized plan against the nested-loop reference, so
        # it can reveal plan-dependent MariaDB bugs but far from all of them.
        assert tester.bug_log.bug_type_count <= SIM_MARIADB.bug_type_count

    def test_pqs_misses_plan_independent_extra_row_bugs(self):
        """PQS only checks pivot containment, so extra-row bugs stay invisible."""
        dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=110, seed=65))
        tester = PQSTester()
        tester.bind(dsg, Engine(dsg.database, SIM_XDB), seed=5)
        for _ in range(120):
            tester.run_iteration()
        assert 19 not in tester.bug_log.bug_types
        assert 20 not in tester.bug_log.bug_types

    def test_tlp_runs_and_counts_queries(self):
        dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=100, seed=67))
        tester = TLPTester()
        tester.bind(dsg, Engine(dsg.database, SIM_MARIADB), seed=6)
        for _ in range(30):
            tester.run_iteration()
        # Each TLP iteration runs the full query plus three partitions.
        assert tester.queries_executed >= tester.queries_generated * 4
