"""The central soundness property: a bug-free engine never disagrees with the oracle.

This is the invariant the whole TQS methodology rests on: every mismatch reported
against a real engine must be attributable to that engine, never to the oracle.
The tests sweep generated queries across datasets, seeds and hint sets on the
clean reference engine and require zero mismatches, and additionally check the
complementary property that seeded faults *are* observable.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dsg import DSG, DSGConfig
from repro.engine import ALL_DIALECTS, Engine, reference_engine
from repro.errors import GenerationError


def sweep_clean_engine(dsg, queries, hint_limit=6):
    engine = reference_engine(dsg.database)
    mismatches = []
    for _ in range(queries):
        try:
            query = dsg.generate_query()
        except GenerationError:
            continue
        truth = dsg.ground_truth(query)
        for transformed in dsg.transform_query(query)[:hint_limit]:
            result = engine.execute(query, transformed.hints)
            if not truth.matches(result):
                mismatches.append((query.render(), transformed.hints.name))
    return mismatches


@pytest.mark.parametrize("dataset", ["shopping", "kddcup", "tpch"])
def test_clean_engine_never_disagrees_with_oracle(dataset):
    dsg = DSG(DSGConfig(dataset=dataset, dataset_rows=110, seed=33))
    assert sweep_clean_engine(dsg, queries=25) == []


def test_clean_engine_agrees_even_without_noise():
    dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=110, seed=35,
                        inject_noise=False))
    assert sweep_clean_engine(dsg, queries=25) == []


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_clean_engine_agrees_for_random_seeds(seed):
    dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=90, seed=seed))
    assert sweep_clean_engine(dsg, queries=8, hint_limit=4) == []


@pytest.mark.parametrize("dialect", ALL_DIALECTS, ids=lambda d: d.name)
def test_seeded_faults_are_observable(dialect):
    """Every dialect's fault profile produces at least one oracle mismatch."""
    detected_types = set()
    for dataset in ("shopping", "tpch"):
        dsg = DSG(DSGConfig(dataset=dataset, dataset_rows=110, seed=37))
        engine = Engine(dsg.database, dialect)
        for _ in range(40):
            try:
                query = dsg.generate_query()
            except GenerationError:
                continue
            truth = dsg.ground_truth(query)
            for transformed in dsg.transform_query(query):
                report = engine.execute_with_report(query, transformed.hints)
                if not truth.matches(report.result):
                    detected_types.update(report.fired_bug_ids)
        if len(detected_types) >= 2:
            break
    assert len(detected_types) >= 2


def test_mismatch_attribution_points_at_seeded_bugs():
    """When the oracle flags a result, at least one seeded fault fired."""
    dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=110, seed=39))
    engine = Engine(dsg.database, ALL_DIALECTS[0])
    attributed = unattributed = 0
    for _ in range(30):
        try:
            query = dsg.generate_query()
        except GenerationError:
            continue
        truth = dsg.ground_truth(query)
        for transformed in dsg.transform_query(query):
            report = engine.execute_with_report(query, transformed.hints)
            if truth.matches(report.result):
                continue
            if report.fired_bug_ids:
                attributed += 1
            else:
                unattributed += 1
    assert attributed > 0
    assert unattributed == 0
