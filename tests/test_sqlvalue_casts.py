"""Tests for data types, implicit casts and the comparison-domain lattice."""

from decimal import Decimal

import pytest

from repro.errors import TypeSystemError
from repro.sqlvalue import (
    NULL,
    DataType,
    TypeCategory,
    TypeName,
    bigint,
    cast_for_domain,
    cast_to,
    comparison_domain,
    decimal,
    double,
    integer,
    string_to_bigint,
    string_to_double,
    text,
    tinyint,
    to_bigint,
    to_decimal,
    to_double_lossy,
    to_string,
    varchar,
)


class TestDataTypes:
    def test_categories(self):
        assert bigint().category is TypeCategory.INTEGER
        assert decimal(8, 2).category is TypeCategory.DECIMAL
        assert double().category is TypeCategory.FLOAT
        assert varchar(10).category is TypeCategory.STRING

    def test_integer_range_signed_and_unsigned(self):
        assert tinyint().integer_range() == (-128, 127)
        assert tinyint(unsigned=True).integer_range() == (0, 255)

    def test_integer_range_rejected_for_strings(self):
        with pytest.raises(TypeSystemError):
            varchar(5).integer_range()

    def test_decimal_scale_validation(self):
        with pytest.raises(TypeSystemError):
            DataType(TypeName.DECIMAL, precision=4, scale=6)

    def test_unsigned_string_rejected(self):
        with pytest.raises(TypeSystemError):
            DataType(TypeName.VARCHAR, length=5, unsigned=True)

    def test_render_ddl(self):
        assert decimal(10, 2).render() == "decimal(10,2)"
        assert varchar(511).render() == "varchar(511)"
        assert bigint(20, nullable=False).render() == "bigint(20) NOT NULL"
        assert "zerofill" in decimal(6, 0, zerofill=True).render()

    def test_boundary_values_match_category(self):
        assert 65535 in integer().boundary_values() or 2147483647 in integer().boundary_values()
        assert any(isinstance(v, str) for v in varchar(10).boundary_values())
        assert -0.0 in double().boundary_values()


class TestStringConversions:
    def test_leading_prefix_rule(self):
        assert string_to_double("12.5abc") == 12.5
        assert string_to_double("abc") == 0.0
        assert string_to_double("  -3e2xyz") == -300.0

    def test_string_to_bigint_truncates(self):
        assert string_to_bigint("12.9") == 12

    def test_precision_loss_in_double_domain(self):
        exact = to_decimal("9007199254740993")
        lossy = to_double_lossy("9007199254740993")
        assert exact == Decimal("9007199254740993")
        assert lossy == float(9007199254740992)  # collides with the neighbour


class TestCastTo:
    def test_integer_clamping(self):
        assert cast_to(300, tinyint()) == 127
        assert cast_to(-5, tinyint(unsigned=True)) == 0

    def test_decimal_quantization(self):
        assert cast_to("12.345", decimal(8, 2)) == Decimal("12.34") or cast_to(
            "12.345", decimal(8, 2)
        ) == Decimal("12.35")

    def test_string_truncation(self):
        assert cast_to("abcdefgh", varchar(3)) == "abc"

    def test_null_passthrough(self):
        assert cast_to(NULL, bigint()) is NULL

    def test_float_integral_to_string(self):
        assert to_string(3.0) == "3"
        assert to_string(True) == "1"

    def test_to_bigint_handles_floats_and_bools(self):
        assert to_bigint(2.9) == 2
        assert to_bigint(True) == 1


class TestComparisonDomain:
    def test_string_string(self):
        assert comparison_domain(varchar(5), text()) is TypeCategory.STRING

    def test_exact_numerics(self):
        assert comparison_domain(bigint(), decimal(8, 2)) is TypeCategory.DECIMAL

    def test_string_vs_integer_is_exact(self):
        assert comparison_domain(varchar(20), bigint()) is TypeCategory.DECIMAL

    def test_float_wins(self):
        assert comparison_domain(double(), bigint()) is TypeCategory.FLOAT

    def test_temporal_compares_as_string(self):
        from repro.sqlvalue import date

        assert comparison_domain(date(), varchar(10)) is TypeCategory.STRING

    def test_cast_for_domain(self):
        assert cast_for_domain("5", TypeCategory.DECIMAL) == Decimal("5")
        assert cast_for_domain(5, TypeCategory.STRING) == "5"
        assert cast_for_domain(NULL, TypeCategory.FLOAT) is NULL
