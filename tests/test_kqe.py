"""Tests for KQE: query graphs, embeddings, the graph index and the adaptive walk."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsg import DSG, DSGConfig
from repro.expr import ColumnRef, column, eq, lit
from repro.kqe import (
    KQE,
    GraphEmbedder,
    GraphIndex,
    IsomorphicSetCounter,
    QueryGraph,
    QueryGraphBuilder,
    alias_sample,
    are_isomorphic,
    cosine_similarity,
    is_subgraph_isomorphic,
)
from repro.plan import JoinStep, JoinType, QuerySpec, SelectItem, TableRef


def make_query(dsg, join_type=JoinType.INNER, with_filter=False):
    fk = dsg.ndb.schema.foreign_keys[0]
    child, parent, key = fk.table, fk.ref_table, fk.columns[0]
    query = QuerySpec(
        base=TableRef(child, child),
        joins=[JoinStep(TableRef(parent, parent), join_type,
                        left_key=ColumnRef(child, key),
                        right_key=ColumnRef(parent, key))],
        select=[SelectItem(column(child, dsg.ndb.data_columns(child)[0]))],
    )
    if with_filter:
        target = dsg.ndb.data_columns(child)[0]
        query.where = eq(column(child, target), lit(1))
    return query


class TestQueryGraph:
    def test_build_contains_tables_and_join_edge(self, shopping_dsg):
        builder = QueryGraphBuilder(shopping_dsg.ndb.schema)
        query = make_query(shopping_dsg)
        graph = builder.build(query)
        labels = graph.vertex_labels
        assert sum(1 for label in labels.values() if label == "table") == 2
        assert any(label == JoinType.INNER.value for _, _, label in graph.edges)
        assert any(label == "join column" for _, _, label in graph.edges)

    def test_filter_changes_the_graph(self, shopping_dsg):
        builder = QueryGraphBuilder(shopping_dsg.ndb.schema)
        plain = builder.build(make_query(shopping_dsg))
        filtered = builder.build(make_query(shopping_dsg, with_filter=True))
        assert plain.canonical_label() != filtered.canonical_label()

    def test_join_type_changes_the_graph(self, shopping_dsg):
        builder = QueryGraphBuilder(shopping_dsg.ndb.schema)
        inner = builder.build(make_query(shopping_dsg, JoinType.INNER))
        left = builder.build(make_query(shopping_dsg, JoinType.LEFT_OUTER))
        assert inner.canonical_label() != left.canonical_label()
        assert not are_isomorphic(inner, left)

    def test_canonical_label_is_rename_invariant(self):
        g1 = QueryGraph((("a", "table"), ("b", "table")), (("a", "b", "inner"),))
        g2 = QueryGraph((("x", "table"), ("y", "table")), (("y", "x", "inner"),))
        assert g1.canonical_label() == g2.canonical_label()
        assert are_isomorphic(g1, g2)

    def test_partial_graph_extension(self, shopping_dsg):
        from repro.dsg.query_gen import CandidateExtension

        builder = QueryGraphBuilder(shopping_dsg.ndb.schema)
        query = make_query(shopping_dsg)
        base = builder.build_partial(query.base.alias, [])
        extended = builder.build_partial(
            query.base.alias, [],
            CandidateExtension(query.base.alias, query.joins[0].table.alias,
                               "goodsId", JoinType.INNER),
        )
        assert base.size()[0] == 1
        assert extended.size() == (2, 1)


class TestIsomorphism:
    def test_subgraph_isomorphism(self):
        small = QueryGraph((("a", "table"), ("b", "table")), (("a", "b", "inner"),))
        large = QueryGraph(
            (("x", "table"), ("y", "table"), ("z", "table")),
            (("x", "y", "inner"), ("y", "z", "semi")),
        )
        assert is_subgraph_isomorphic(small, large)
        assert not is_subgraph_isomorphic(large, small)

    def test_counter_tracks_distinct_structures(self, shopping_dsg):
        builder = QueryGraphBuilder(shopping_dsg.ndb.schema)
        counter = IsomorphicSetCounter()
        inner = builder.build(make_query(shopping_dsg, JoinType.INNER))
        assert counter.add(inner) is True
        assert counter.add(inner) is False
        assert counter.add(builder.build(make_query(shopping_dsg, JoinType.SEMI))) is True
        assert counter.distinct_sets == 2
        assert counter.total_graphs == 3
        assert 0 < counter.redundancy() < 1


class TestEmbeddingAndIndex:
    def test_isomorphic_graphs_embed_identically(self, shopping_dsg):
        embedder = GraphEmbedder()
        g1 = QueryGraph((("a", "table"), ("b", "table")), (("a", "b", "inner"),))
        g2 = QueryGraph((("p", "table"), ("q", "table")), (("q", "p", "inner"),))
        assert cosine_similarity(embedder.embed(g1), embedder.embed(g2)) == pytest.approx(1.0)

    def test_different_structures_are_less_similar(self, shopping_dsg):
        builder = QueryGraphBuilder(shopping_dsg.ndb.schema)
        embedder = GraphEmbedder()
        inner = builder.build(make_query(shopping_dsg, JoinType.INNER))
        anti = builder.build(make_query(shopping_dsg, JoinType.ANTI, with_filter=True))
        similarity = cosine_similarity(embedder.embed(inner), embedder.embed(anti))
        assert similarity < 0.999

    def test_embeddings_are_normalized(self, shopping_dsg):
        import numpy as np

        builder = QueryGraphBuilder(shopping_dsg.ndb.schema)
        vector = GraphEmbedder().embed(builder.build(make_query(shopping_dsg)))
        assert np.isclose(np.linalg.norm(vector), 1.0)

    def test_index_nearest_returns_similar_first(self, shopping_dsg):
        builder = QueryGraphBuilder(shopping_dsg.ndb.schema)
        index = GraphIndex()
        inner = builder.build(make_query(shopping_dsg, JoinType.INNER))
        left = builder.build(make_query(shopping_dsg, JoinType.LEFT_OUTER))
        index.add(inner)
        index.add(left)
        neighbours = index.nearest(inner, k=2)
        assert neighbours[0][1] >= neighbours[1][1]
        assert neighbours[0][1] == pytest.approx(1.0)
        assert index.contains_isomorphic(inner)
        assert index.distinct_canonical_labels() == 2

    def test_empty_index_has_no_neighbours(self, shopping_dsg):
        builder = QueryGraphBuilder(shopping_dsg.ndb.schema)
        index = GraphIndex()
        assert index.nearest(builder.build(make_query(shopping_dsg))) == []
        assert len(index) == 0

    def test_label_bookkeeping_matches_set_semantics(self, shopping_dsg):
        """Regression: the persistent label counter must behave exactly like
        the old per-call ``set(self._canonical_labels)`` rebuild."""
        import numpy as np

        builder = QueryGraphBuilder(shopping_dsg.ndb.schema)
        index = GraphIndex()
        inner = builder.build(make_query(shopping_dsg, JoinType.INNER))
        left = builder.build(make_query(shopping_dsg, JoinType.LEFT_OUTER))
        assert not index.contains_isomorphic(inner)
        index.add(inner)
        index.add(inner)
        index.add(left)
        index.add_embedding(np.ones(4), "external-label")
        index.add_embedding(np.ones(4), "external-label")
        assert index.contains_isomorphic(inner)
        assert index.contains_isomorphic(left)
        assert index.contains_label("external-label")
        assert not index.contains_label("never-added")
        # 2 graph labels + 1 external label = 3 distinct, 5 total entries.
        assert index.distinct_canonical_labels() == 3
        assert len(index) == 5

    def test_membership_does_not_scale_with_index_size(self):
        """The campaign hot path: 20k inserts, each followed by a membership
        check and a distinct-count query, must finish within a fixed budget.

        The old implementation rebuilt ``set(self._canonical_labels)`` on every
        call (O(n^2) over the campaign) and takes >5s on this workload; the
        persistent counter finishes in well under a second.
        """
        import time

        import numpy as np

        index = GraphIndex()
        vector = np.ones(8)
        start = time.perf_counter()
        for i in range(20_000):
            label = f"canonical-{i % 977}"
            index.add_embedding(vector, label)
            assert index.contains_label(label)
            index.distinct_canonical_labels()
        elapsed = time.perf_counter() - start
        assert index.distinct_canonical_labels() == 977
        assert elapsed < 2.0, (
            f"label bookkeeping took {elapsed:.2f}s for 20k inserts; "
            "membership checks are scaling with index size again"
        )

    def test_entries_since_ships_only_new_pairs(self, shopping_dsg):
        builder = QueryGraphBuilder(shopping_dsg.ndb.schema)
        index = GraphIndex()
        inner = builder.build(make_query(shopping_dsg, JoinType.INNER))
        index.add(inner)
        watermark = len(index)
        left = builder.build(make_query(shopping_dsg, JoinType.LEFT_OUTER))
        index.add(left)
        entries = index.entries_since(watermark)
        assert len(entries) == 1
        vector, label = entries[0]
        assert label == left.canonical_label()
        assert index.entries_since(len(index)) == []


class TestAliasSampling:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            alias_sample([], random.Random(0))

    def test_zero_weights_fall_back_to_uniform(self):
        rng = random.Random(1)
        draws = {alias_sample([0.0, 0.0, 0.0], rng) for _ in range(50)}
        assert draws <= {0, 1, 2} and len(draws) > 1

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(0.01, 10), min_size=2, max_size=6))
    def test_distribution_tracks_weights(self, weights):
        rng = random.Random(7)
        counts = [0] * len(weights)
        for _ in range(4000):
            counts[alias_sample(weights, rng)] += 1
        total = sum(weights)
        for weight, count in zip(weights, counts):
            expected = weight / total
            assert abs(count / 4000 - expected) < 0.08


class TestKQEExplorer:
    def test_coverage_increases_after_registration(self, shopping_dsg):
        kqe = KQE(shopping_dsg.ndb.schema, rng=random.Random(3))
        builder = kqe.builder
        query = make_query(shopping_dsg)
        graph = builder.build(query)
        before = kqe.coverage(graph)
        kqe.register(query)
        after = kqe.coverage(graph)
        assert before == 0.0
        assert after > before
        assert kqe.transition_probability(graph) < 1.0

    def test_register_counts_isomorphic_sets(self, shopping_dsg):
        kqe = KQE(shopping_dsg.ndb.schema, rng=random.Random(4))
        query = make_query(shopping_dsg)
        _, novel_first = kqe.register(query)
        _, novel_second = kqe.register(query)
        assert novel_first is True and novel_second is False
        assert kqe.explored_isomorphic_sets == 1
        assert kqe.explored_graphs == 2

    def test_chooser_penalizes_already_explored_structures(self, shopping_dsg):
        """The mechanism of Eq. 2/3: repeated structures get lower probability."""
        kqe = KQE(shopping_dsg.ndb.schema, rng=random.Random(5))
        query = make_query(shopping_dsg, JoinType.INNER)
        for _ in range(10):
            kqe.register(query)
        explored_skeleton = kqe.builder.build_partial(query.base.alias, query.joins)
        fresh_query = make_query(shopping_dsg, JoinType.ANTI)
        fresh_skeleton = kqe.builder.build_partial(fresh_query.base.alias,
                                                   fresh_query.joins)
        assert kqe.coverage(explored_skeleton) > kqe.coverage(fresh_skeleton)
        assert (kqe.transition_probability(explored_skeleton)
                < kqe.transition_probability(fresh_skeleton))

    def test_kqe_guided_generation_does_not_hurt_diversity(self):
        """KQE guidance must stay within a few percent of unguided diversity.

        At laptop scale the structural space is far from saturated, so the large
        diversity gap of Table 5 does not materialize; EXPERIMENTS.md documents
        this deviation.  The invariant tested here is that the adaptive walk
        never *collapses* diversity.
        """
        from repro.kqe.isomorphism import IsomorphicSetCounter
        from repro.kqe.query_graph import QueryGraphBuilder

        budget = 60
        results = {}
        for use_kqe in (True, False):
            dsg = DSG(DSGConfig(dataset="tpch", dataset_rows=100, seed=51))
            kqe = KQE(dsg.ndb.schema, rng=random.Random(51))
            builder = QueryGraphBuilder(dsg.ndb.schema)
            counter = IsomorphicSetCounter()
            for _ in range(budget):
                chooser = kqe.extension_chooser if use_kqe else None
                try:
                    query = dsg.generate_query(extension_chooser=chooser)
                except Exception:
                    continue
                counter.add(builder.build(query))
                if use_kqe:
                    kqe.register(query)
            results[use_kqe] = counter.distinct_sets
        assert results[True] >= 0.8 * results[False]
