"""Tests for the real multi-process parallel campaign runner."""

import pytest

from repro.core import (
    BugIncident,
    BugLog,
    CampaignConfig,
    CampaignResult,
    HourlySample,
    ParallelCampaignConfig,
    WorkerReport,
    derive_worker_seed,
    merge_worker_reports,
    run_campaign_loop,
    run_parallel_tqs_campaign,
    run_tqs_campaign,
    shard_campaign_configs,
)
from repro.engine import SIM_MYSQL
from repro.errors import CampaignError, GenerationError
from repro.kqe.isomorphism import IsomorphicSetCounter

FAST = CampaignConfig(dataset="shopping", dataset_rows=90, hours=3,
                      queries_per_hour=6, seed=71)
POOL = ParallelCampaignConfig(workers=2, sync_interval=1, worker_timeout=120.0)


def incident(bug_ids=(1,), label="L1", dbms="SimMySQL"):
    return BugIncident(
        dbms=dbms, query_sql="SELECT 1", hint_name="default",
        detection_mode="ground_truth", query_canonical_label=label,
        fired_bug_ids=tuple(bug_ids), expected_rows=1, observed_rows=0,
    )


class TestSeedDerivation:
    def test_derived_seeds_are_stable_and_distinct(self):
        seeds = [derive_worker_seed(5, shard) for shard in range(8)]
        assert seeds == [derive_worker_seed(5, shard) for shard in range(8)]
        assert len(set(seeds)) == len(seeds)

    def test_neighbouring_campaign_seeds_do_not_collide(self):
        # shard 1 of seed 5 must not equal shard 0 of seed 6 (the failure mode
        # of additive seeding).
        assert derive_worker_seed(5, 1) != derive_worker_seed(6, 0)

    def test_shard_configs_split_budget_and_keep_hours(self):
        shards = shard_campaign_configs(FAST, 4)
        assert len(shards) == 4
        assert sum(s.queries_per_hour for s in shards) == FAST.queries_per_hour
        assert all(s.hours == FAST.hours for s in shards)
        assert len({s.seed for s in shards}) == 4

    def test_single_worker_keeps_the_campaign_seed(self):
        # Required for serial == 1-worker-pool equivalence.
        shards = shard_campaign_configs(FAST, 1)
        assert len(shards) == 1
        assert shards[0] == FAST

    def test_pool_clamped_so_no_shard_is_budgetless(self):
        # 8 workers for 4 queries/hour would leave 4 shards paying a full DSG
        # build and every sync barrier for nothing; the pool clamps instead.
        small = CampaignConfig(dataset="shopping", dataset_rows=90, hours=2,
                               queries_per_hour=4, seed=71)
        shards = shard_campaign_configs(small, 8)
        assert len(shards) == 4
        assert all(s.queries_per_hour == 1 for s in shards)
        # Degenerate zero-budget campaigns still produce exactly one shard.
        empty = CampaignConfig(dataset="shopping", dataset_rows=90, hours=2,
                               queries_per_hour=0, seed=71)
        assert len(shard_campaign_configs(empty, 4)) == 1

    def test_zero_workers_rejected(self):
        with pytest.raises(CampaignError):
            shard_campaign_configs(FAST, 0)


class TestRealWorkerPool:
    def test_same_seed_same_shard_count_is_deterministic(self):
        """Same campaign seed and shard count -> identical merged outcome."""
        first = run_parallel_tqs_campaign(SIM_MYSQL, FAST, POOL)
        second = run_parallel_tqs_campaign(SIM_MYSQL, FAST, POOL)
        assert first.merged.samples == second.merged.samples
        assert first.merged.bug_log is not None and second.merged.bug_log is not None
        assert (set(first.merged.bug_log._bug_keys)
                == set(second.merged.bug_log._bug_keys))
        assert first.central_index_size == second.central_index_size
        assert first.central_distinct_labels == second.central_distinct_labels

    def test_one_worker_pool_equals_serial_runner(self):
        """A 1-worker pool on the same config must equal the serial loop."""
        serial = run_tqs_campaign(SIM_MYSQL, FAST)
        pool = run_parallel_tqs_campaign(
            SIM_MYSQL, FAST,
            ParallelCampaignConfig(workers=1, sync_interval=1,
                                   worker_timeout=120.0),
        )
        assert pool.merged.samples == serial.samples
        assert serial.bug_log is not None and pool.merged.bug_log is not None
        assert pool.merged.bug_log._bug_keys == serial.bug_log._bug_keys

    def test_merged_series_keep_the_hourly_contract(self):
        outcome = run_parallel_tqs_campaign(SIM_MYSQL, FAST, POOL)
        merged = outcome.merged
        assert [s.hour for s in merged.samples] == list(range(1, FAST.hours + 1))
        for metric in ("queries_generated", "isomorphic_sets", "bug_count",
                       "bug_type_count", "generations_rejected"):
            series = merged.series(metric)
            assert all(b >= a for a, b in zip(series, series[1:])), metric
        # The sharded pool spends exactly the serial campaign's budget: every
        # inner-loop iteration is accounted as a success or a rejection, and
        # the shard budgets sum to the campaign budget.
        assert (merged.final.queries_generated
                + merged.final.generations_rejected
                == FAST.hours * FAST.queries_per_hour)
        assert outcome.workers == 2
        assert outcome.sync_rounds == FAST.hours - 1
        assert outcome.central_index_size == merged.final.queries_generated


class TestMergeWorkerReports:
    def make_report(self, shard_id, labels, incidents):
        samples = [
            HourlySample(hour=h + 1, queries_generated=2 * (h + 1),
                         queries_executed=4 * (h + 1),
                         isomorphic_sets=len({lab for hour in labels[:h + 1]
                                              for lab in hour}),
                         bug_count=0, bug_type_count=0)
            for h in range(len(labels))
        ]
        return WorkerReport(shard_id=shard_id, tool="TQS", dbms="SimMySQL",
                            dataset="shopping", samples=samples,
                            hourly_new_labels=labels,
                            hourly_incidents=incidents)

    def test_cross_worker_bug_and_label_dedup(self):
        # Both workers find the same (root cause, structure) pair: the merged
        # log must count one bug, and the shared label one isomorphic set.
        left = self.make_report(0, [["A"], ["B"]], [[incident((1,), "A")], []])
        right = self.make_report(1, [["A"], ["C"]], [[], [incident((1,), "A")]])
        merged, shards = merge_worker_reports([right, left])
        assert len(shards) == 2
        assert merged.series("isomorphic_sets") == [1, 3]
        assert merged.final.bug_count == 1
        assert merged.final.bug_type_count == 1
        assert merged.final.queries_generated == 8
        assert merged.final.queries_executed == 16

    def test_mismatched_hours_rejected(self):
        left = self.make_report(0, [["A"]], [[]])
        right = self.make_report(1, [["A"], ["B"]], [[], []])
        with pytest.raises(CampaignError):
            merge_worker_reports([left, right])

    def test_empty_reports_rejected(self):
        with pytest.raises(CampaignError):
            merge_worker_reports([])

    def test_buglog_merge_dedups(self):
        first = BugLog()
        first.record(incident((1,), "A"))
        second = BugLog()
        second.record(incident((1,), "A"))
        second.record(incident((2,), "B"))
        new = first.merge(second)
        assert new == 1
        assert first.bug_count == 2
        assert len(first.incidents) == 3


class _FlakyTester:
    """A tester whose generator dead-ends on every other attempt."""

    def __init__(self):
        self.queries_generated = 0
        self.queries_executed = 0
        self.bug_log = BugLog()
        self.diversity = IsomorphicSetCounter()
        self._calls = 0

    @property
    def explored_isomorphic_sets(self):
        return self.diversity.distinct_sets

    def run_iteration(self):
        self._calls += 1
        if self._calls % 2 == 0:
            raise GenerationError("dead end")
        self.queries_generated += 1
        self.queries_executed += 1
        self.diversity.add_label(f"L{self._calls}")


class _DeadProcess:
    name = "tqs-shard-1"

    @staticmethod
    def is_alive():
        return False


class _LiveProcess:
    name = "tqs-shard-0"

    @staticmethod
    def is_alive():
        return True


class TestDeadWorkerDetection:
    def test_receive_fails_fast_on_a_dead_pending_worker(self):
        """A hard-killed worker must fail the pool even while peers tick."""
        import queue

        from repro.core.parallel import _receive

        silent = queue.Queue()
        dead = _DeadProcess()
        with pytest.raises(CampaignError, match="died without reporting"):
            _receive(silent, [_LiveProcess(), dead], timeout=60.0,
                     pending=lambda: [dead])

    def test_receive_tolerates_dead_but_reported_workers(self):
        """A worker that exited AFTER reporting is not owed anything."""
        import queue

        from repro.core.parallel import _receive

        ready = queue.Queue()
        ready.put(("done", 0, "report"))
        message = _receive(ready, [_LiveProcess(), _DeadProcess()],
                           timeout=60.0, pending=lambda: [_LiveProcess()])
        assert message == ("done", 0, "report")


class TestRejectedGenerationAccounting:
    def test_rejections_are_counted_not_swallowed(self):
        tester = _FlakyTester()
        result = CampaignResult(tool="stub", dbms="stub", dataset="stub")
        run_campaign_loop(tester, result, hours=2, queries_per_hour=4)
        assert result.series("generations_rejected") == [2, 4]
        assert result.generations_rejected == 4
        assert result.final.queries_generated == 4
        # Budget identity: successes + rejections == spent budget.
        assert (result.final.queries_generated
                + result.final.generations_rejected) == 8

    def test_real_campaign_surfaces_rejections_field(self):
        result = run_tqs_campaign(SIM_MYSQL, FAST)
        assert result.final.generations_rejected >= 0
        assert (result.final.queries_generated
                + result.final.generations_rejected
                == FAST.hours * FAST.queries_per_hour)
