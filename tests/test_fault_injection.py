"""Fault-injection tests for the distributed index server.

Uses the harness in :mod:`repro.distributed.testing` to misbehave on
schedule — tampered MACs, truncated frames, clients dying mid-SYNC, clients
that register and then stall — and asserts the server's contracts: it never
crashes on malformed input, a sync barrier never deadlocks, and with
``evict_dead_clients`` the survivors finish the campaign with the dead
shard's budget redistributed (total conserved).
"""

import json
import threading
import time

import pytest

from repro.core import CampaignConfig
from repro.core.campaign import HourlySample
from repro.core.parallel import WorkerReport, build_shard_specs, sync_schedule
from repro.distributed import protocol
from repro.distributed.client import RemoteSyncTransport, run_remote_client
from repro.distributed.server import IndexServer
from repro.distributed.testing import (
    FaultyProxy,
    ScriptedClient,
    flip_byte,
    fuzz_server,
    tamper_mac,
    truncate_frame,
)
from repro.errors import TransportError

KEY = b"fault-injection-test-key"

FAST = CampaignConfig(
    dataset="shopping", dataset_rows=80, hours=3, queries_per_hour=6, seed=29
)


def make_server(workers=2, **overrides):
    options = dict(
        shards=build_shard_specs("tqs", FAST, workers),
        sync_hours=sync_schedule(FAST.hours, 1),
        round_timeout=60.0,
        auth_key=KEY,
        evict_dead_clients=True,
    )
    options.update(overrides)
    return IndexServer(**options).start()


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


def minimal_report(shard_id):
    return WorkerReport(
        shard_id=shard_id,
        tool="T",
        dbms="D",
        dataset="ds",
        samples=[HourlySample(1, 0, 0, 0, 0, 0, 0)],
        hourly_new_labels=[[]],
        hourly_incidents=[[]],
    )


class TestHarnessPrimitives:
    def test_flip_byte_changes_exactly_one_byte(self):
        data = bytes(range(16))
        mangled = flip_byte(data, 5)
        assert len(mangled) == len(data)
        assert [i for i in range(16) if mangled[i] != data[i]] == [5]

    def test_tamper_mac_hits_the_authentication_tag(self):
        codec = protocol.JsonFrameCodec(KEY)
        frame = codec.encode((protocol.OK,))
        mangled = tamper_mac(frame)
        tag_start = len(protocol.MAGIC) + 4
        tag_end = tag_start + protocol.MAC_BYTES
        assert frame[:tag_start] == mangled[:tag_start]
        assert frame[tag_start:tag_end] != mangled[tag_start:tag_end]
        assert frame[tag_end:] == mangled[tag_end:]

    def test_truncate_frame_keeps_a_prefix(self):
        assert truncate_frame(b"abcdef", 3) == b"abc"


class TestMalformedInput:
    def test_mac_tampering_is_rejected_and_server_survives(self):
        server = make_server(workers=1)
        proxy = FaultyProxy(
            server.host,
            server.port,
            plan=lambda index, frame: ("corrupt", len(protocol.MAGIC) + 4),
        )
        try:
            with pytest.raises(TransportError, match="authentication|rejected"):
                RemoteSyncTransport(proxy.host, proxy.port, auth_key=KEY)
            assert server.frames_rejected >= 1
            assert server.failure is None
            # A direct, untampered client still gets in.
            transport = RemoteSyncTransport(server.host, server.port,
                                            auth_key=KEY)
            assert transport.register(0) is None
            transport.close()
        finally:
            proxy.close()
            server.stop()

    def test_truncated_frame_closes_connection_server_keeps_serving(self):
        server = make_server(workers=1)
        proxy = FaultyProxy(
            server.host,
            server.port,
            # Frame 0 is the HELLO, frame 1 the REGISTER; cut the latter.
            plan=lambda index, frame: (
                ("truncate", 9) if index == 1 else ("pass",)
            ),
        )
        try:
            client = ScriptedClient(proxy.host, proxy.port, auth_key=KEY)
            client.send((protocol.REGISTER, 0))
            with pytest.raises(TransportError):
                client.recv()
            client.close()
            assert server.failure is None
            assert wait_until(lambda: server.frames_rejected >= 1)
            transport = RemoteSyncTransport(server.host, server.port,
                                            auth_key=KEY)
            assert transport.register(0) is None
            transport.close()
        finally:
            proxy.close()
            server.stop()

    def test_fuzz_leaves_a_live_campaign_unharmed(self):
        server = make_server(workers=1)
        try:
            stats = fuzz_server(server.host, server.port, frames=30, seed=7,
                                auth_key=KEY)
            assert sum(stats.values()) == 30
            assert server.frames_rejected >= 30
            assert server.failure is None
            report = run_remote_client(server.host, server.port, auth_key=KEY)
            assert server.wait(30.0)
            assert server.failure is None
            assert report.samples[-1].queries_generated > 0
        finally:
            server.stop()


class TestBarrierLiveness:
    def test_client_killed_mid_sync_releases_the_barrier(self):
        """The survivor finishes the round and the campaign alone."""
        server = make_server(workers=2)
        try:
            doomed = ScriptedClient(server.host, server.port, auth_key=KEY)
            assert doomed.request((protocol.REGISTER, 0))[0] == (
                protocol.REGISTERED
            )
            # Ship the hour-1 batch, then die without fetching the broadcast.
            # The vector must live in the real embedding space: the survivor
            # folds broadcast entries into its own KQE index.
            fake_entry = ([1.0] + [0.0] * 63, "doomed-label")
            doomed.send((protocol.SYNC, 0, 1, [fake_entry]))
            doomed.close()

            survivor_report = {}

            def survivor():
                survivor_report["report"] = run_remote_client(
                    server.host, server.port, auth_key=KEY
                )

            thread = threading.Thread(target=survivor)
            thread.start()
            thread.join(timeout=120.0)
            assert not thread.is_alive()
            assert server.wait(10.0)
            assert server.failure is None
            assert set(server.reports) == {1}
            assert set(server.evicted) == {0}
            # The dead shard's per-hour budget moved to the survivor: 3+3
            # becomes 6, conserved, and reaches it at the next sync round.
            assert server.coordinator.budgets == {1: FAST.queries_per_hour}
            report = survivor_report["report"]
            assert report.hourly_budgets == [3, 3, 6]
        finally:
            server.stop()

    def test_register_but_never_sync_is_evicted_despite_ticks(self):
        """Regression: a wedged-but-heartbeating client used to park the
        barrier forever; now it is evicted and its budget redistributed."""
        server = make_server(workers=2, round_timeout=3.0, sync_hours=(1,))
        try:
            staller = ScriptedClient(server.host, server.port, auth_key=KEY)
            assert staller.request((protocol.REGISTER, 0))[0] == (
                protocol.REGISTERED
            )
            stop_ticking = threading.Event()

            def keep_ticking():
                while not stop_ticking.wait(0.3):
                    try:
                        staller.request((protocol.TICK, 0))
                    except TransportError:
                        return

            ticker = threading.Thread(target=keep_ticking, daemon=True)
            ticker.start()

            survivor = ScriptedClient(server.host, server.port, auth_key=KEY)
            assert survivor.request((protocol.REGISTER, 1))[0] == (
                protocol.REGISTERED
            )
            start = time.monotonic()
            reply = survivor.request(
                (protocol.SYNC, 1, 1, [([0.0, 1.0], "survivor-label")])
            )
            waited = time.monotonic() - start
            assert reply[0] == protocol.BROADCAST
            broadcast = reply[1]
            # The barrier released without the staller, well before forever.
            assert waited < 30.0
            assert broadcast.entries == []
            # Budget conservation across the eviction: the survivor now owns
            # the whole per-hour budget.
            assert broadcast.next_budget == FAST.queries_per_hour
            assert set(server.evicted) == {0}
            assert "hour 1" in server.evicted[0]
            assert survivor.request(
                (protocol.REPORT, minimal_report(1))
            ) == (protocol.OK,)
            assert server.wait(10.0)
            assert server.failure is None
            stop_ticking.set()
            staller.close()
            survivor.close()
        finally:
            server.stop()

    def test_without_eviction_the_stall_fails_fast_instead(self):
        """The liveness fix alone: no eviction, but no indefinite stall."""
        server = make_server(
            workers=2,
            round_timeout=2.0,
            sync_hours=(1,),
            evict_dead_clients=False,
        )
        try:
            staller = ScriptedClient(server.host, server.port, auth_key=KEY)
            staller.request((protocol.REGISTER, 0))
            survivor = ScriptedClient(server.host, server.port, auth_key=KEY)
            survivor.request((protocol.REGISTER, 1))
            reply = survivor.request((protocol.SYNC, 1, 1, [([1.0], "L")]))
            assert reply[0] == protocol.ABORT
            assert "stalled" in reply[1] or "dead" in reply[1]
            assert server.failure is not None
            assert "[0]" in server.failure
            staller.close()
            survivor.close()
        finally:
            server.stop()

    def test_all_clients_dead_fails_rather_than_hangs(self):
        server = make_server(workers=2, sync_hours=(1,))
        try:
            for shard_id in (0, 1):
                client = ScriptedClient(server.host, server.port, auth_key=KEY)
                client.request((protocol.REGISTER, shard_id))
                client.close()
            assert server.wait(30.0)
            assert server.failure is not None
            assert "evicted" in server.failure
        finally:
            server.stop()


class TestEvictionArtifact:
    def test_verify_local_refuses_artifacts_with_evictions(self, tmp_path, capsys):
        """An evicted-client campaign is not reproducible by a healthy pool;
        verify-local must say so instead of reporting a determinism break."""
        from repro.distributed.cli import main as distributed_main

        path = tmp_path / "campaign.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "campaign": {"evicted": {"0": "no sync at hour 1"}},
                    "summary": {},
                },
                handle,
            )
        rc = distributed_main(["verify-local", "--json", str(path)])
        assert rc == 2
        assert "evicted" in capsys.readouterr().err


class TestDelayTolerance:
    def test_delayed_frames_do_not_break_the_campaign(self):
        server = make_server(workers=1)
        proxy = FaultyProxy(
            server.host,
            server.port,
            plan=lambda index, frame: (
                ("delay", 0.3) if index in (2, 3) else ("pass",)
            ),
        )
        try:
            report = run_remote_client(proxy.host, proxy.port, auth_key=KEY)
            assert server.wait(30.0)
            assert server.failure is None
            assert report.samples[-1].queries_generated > 0
        finally:
            proxy.close()
            server.stop()
