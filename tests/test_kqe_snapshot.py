"""Tests for the checksummed snapshot log and GraphIndex persistence."""

import struct

import pytest

from repro.errors import ReproError, SnapshotError
from repro.kqe.graph_index import GraphIndex
from repro.kqe.lsh import hyperplane_stream
from repro.kqe.snapshot import (
    MAGIC,
    SnapshotWriter,
    read_header,
    read_snapshot,
)

HEADER = {"kind": "test", "version": 1}


def write_sample(path, batches=2):
    with SnapshotWriter.create(str(path), HEADER) as writer:
        for number in range(batches):
            writer.append(
                [[1.0 * number, 2.0], [3.0, 4.0 + number]],
                [f"A{number}", f"B{number}"],
                {"hour": number + 1},
            )
    return path


class TestRoundTrip:
    def test_header_and_batches_round_trip(self, tmp_path):
        path = write_sample(tmp_path / "log.tqssnap")
        header, batches, truncated = read_snapshot(str(path))
        assert header == HEADER
        assert not truncated
        assert [batch.meta for batch in batches] == [{"hour": 1}, {"hour": 2}]
        assert batches[0].vectors == [[0.0, 2.0], [3.0, 4.0]]
        assert batches[1].labels == ["A1", "B1"]
        assert read_header(str(path)) == HEADER

    def test_empty_batch_and_empty_log(self, tmp_path):
        path = tmp_path / "log.tqssnap"
        with SnapshotWriter.create(str(path), HEADER) as writer:
            writer.append([], [], {"hour": 1})
        header, batches, truncated = read_snapshot(str(path))
        assert not truncated
        assert batches[0].vectors == [] and batches[0].labels == []

    def test_ragged_batches_are_rejected_at_write_time(self, tmp_path):
        writer = SnapshotWriter.create(str(tmp_path / "log.tqssnap"), HEADER)
        try:
            with pytest.raises(SnapshotError, match="ragged"):
                writer.append([[1.0, 2.0], [3.0]], ["A", "B"])
            with pytest.raises(SnapshotError, match="labels"):
                writer.append([[1.0]], [])
        finally:
            writer.close()


class TestCrashTolerance:
    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = write_sample(tmp_path / "log.tqssnap")
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        header, batches, truncated = read_snapshot(str(path))
        assert truncated
        assert len(batches) == 1  # the first record survives intact
        assert batches[0].meta == {"hour": 1}

    def test_corrupt_tail_checksum_is_dropped(self, tmp_path):
        path = write_sample(tmp_path / "log.tqssnap")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        _, batches, truncated = read_snapshot(str(path))
        assert truncated and len(batches) == 1

    def test_bad_magic_is_a_typed_error(self, tmp_path):
        path = tmp_path / "log.tqssnap"
        path.write_bytes(b"NOTASNAP" + b"\x00" * 32)
        with pytest.raises(SnapshotError, match="bad magic"):
            read_snapshot(str(path))

    def test_corrupt_header_is_a_typed_error(self, tmp_path):
        path = write_sample(tmp_path / "log.tqssnap")
        data = bytearray(path.read_bytes())
        data[len(MAGIC) + 4] ^= 0xFF  # first byte of the header JSON
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="checksum"):
            read_snapshot(str(path))

    def test_implausible_header_length_is_a_typed_error(self, tmp_path):
        path = tmp_path / "log.tqssnap"
        path.write_bytes(MAGIC + struct.pack("<I", 1 << 30))
        with pytest.raises(SnapshotError, match="implausible"):
            read_snapshot(str(path))

    def test_snapshot_error_is_a_repro_error(self):
        # Callers catch the repo-wide base class at CLI boundaries.
        assert issubclass(SnapshotError, ReproError)

    def test_checksum_valid_garbage_payload_is_real_corruption(self, tmp_path):
        # A record whose checksum holds but whose payload does not decode is
        # version skew or deliberate tampering, never a torn write: loud error.
        path = tmp_path / "log.tqssnap"
        SnapshotWriter.create(str(path), HEADER).close()
        payload = b"\xff" * 16
        import hashlib

        record = struct.pack("<I", len(payload)) + hashlib.sha256(payload).digest()
        with open(path, "ab") as handle:
            handle.write(record + payload)
        with pytest.raises(SnapshotError):
            read_snapshot(str(path))


class TestGraphIndexPersistence:
    def populate(self, index, count=40):
        dims = index.embedder.dimensions
        flat = hyperplane_stream("index-snap", count * dims)
        for position in range(count):
            index.add_embedding(
                flat[position * dims : (position + 1) * dims], f"L{position % 7}"
            )

    def test_save_and_load_round_trip_bit_identically(self, tmp_path):
        index = GraphIndex()
        self.populate(index)
        path = str(tmp_path / "index.tqssnap")
        index.save_snapshot(path)
        restored = GraphIndex.load_snapshot(path)
        assert len(restored) == len(index)
        assert restored.distinct_canonical_labels() == 7
        assert restored.entries_since(0) == index.entries_since(0)
        query = hyperplane_stream("snap-query", index.embedder.dimensions)
        assert restored.nearest_by_vector(query, k=5) == index.nearest_by_vector(
            query, k=5
        )

    def test_load_rejects_foreign_snapshots(self, tmp_path):
        path = tmp_path / "other.tqssnap"
        with SnapshotWriter.create(str(path), {"kind": "something-else"}) as writer:
            writer.append([], [])
        with pytest.raises(SnapshotError, match="kqe-graph-index"):
            GraphIndex.load_snapshot(str(path))

    def test_embedder_config_rides_in_the_header(self, tmp_path):
        from repro.kqe.embedding import GraphEmbedder

        index = GraphIndex(embedder=GraphEmbedder(dimensions=32, iterations=3))
        index.add_embedding([1.0] * 32, "L")
        path = str(tmp_path / "index.tqssnap")
        index.save_snapshot(path)
        restored = GraphIndex.load_snapshot(path)
        assert restored.embedder.dimensions == 32
        assert restored.embedder.iterations == 3
