"""Tests for 3NF decomposition, materialization, RowID map and join bitmap setup."""

import random

import pytest

from repro.dsg import (
    RowIDMap,
    SchemaNormalizer,
    build_dataset,
    normalize,
)
from repro.sqlvalue.values import normalize_row


@pytest.fixture(scope="module")
def shopping_ndb():
    spec = build_dataset("shopping", 100, random.Random(7))
    return normalize(spec.wide, fds=spec.planted_fds, key_override=spec.key_columns)


class TestDecomposition:
    def test_paper_example_schema_shape(self, shopping_ndb):
        names = {tuple(sorted(t.columns)): t for t in shopping_ndb.tables}
        assert ("goodsId", "orderId", "userId") in names  # hub T1
        assert ("goodsId", "goodsName") in names
        assert ("goodsName", "price") in names
        assert ("userId", "userName") in names
        assert len(shopping_ndb.tables) == 4

    def test_hub_identified(self, shopping_ndb):
        hub = shopping_ndb.table_meta(shopping_ndb.hub_table)
        assert hub.is_hub
        assert set(hub.implicit_key) == {"orderId", "goodsId", "userId"}

    def test_every_table_has_rowid_primary_key(self, shopping_ndb):
        for table in shopping_ndb.schema.tables:
            assert table.primary_key == ("RowID",)
            assert table.has_column("RowID")

    def test_foreign_keys_follow_implicit_keys(self, shopping_ndb):
        edges = {(fk.table, fk.ref_table, fk.columns[0])
                 for fk in shopping_ndb.schema.foreign_keys}
        hub = shopping_ndb.hub_table
        goods = next(t.name for t in shopping_ndb.tables if "goodsName" in t.implicit_key)
        users = next(t.name for t in shopping_ndb.tables if "userId" in t.implicit_key
                     and not t.is_hub)
        goods_by_id = next(t.name for t in shopping_ndb.tables if "goodsId" in t.implicit_key
                           and not t.is_hub)
        assert (hub, goods_by_id, "goodsId") in edges
        assert (hub, users, "userId") in edges
        assert (goods_by_id, goods, "goodsName") in edges

    def test_table_meta_lookup_error(self, shopping_ndb):
        from repro.errors import NormalizationError

        with pytest.raises(NormalizationError):
            shopping_ndb.table_meta("T99")


class TestMaterialization:
    def test_dimension_tables_are_deduplicated(self, shopping_ndb):
        users = next(t for t in shopping_ndb.tables
                     if set(t.implicit_key) == {"userId"})
        stored = shopping_ndb.database.table(users.name)
        user_ids = [row["userId"] for row in stored.rows]
        assert len(user_ids) == len(set(user_ids))
        assert len(user_ids) < len(shopping_ndb.wide)

    def test_rowid_map_is_consistent_with_tables(self, shopping_ndb):
        for wide_id, wide_row in enumerate(shopping_ndb.wide.rows):
            for table in shopping_ndb.tables:
                mapped = shopping_ndb.rowid_map.get(wide_id, table.name)
                if mapped is None:
                    continue
                stored = shopping_ndb.database.table(table.name).rows[mapped]
                for column in table.implicit_key:
                    assert normalize_row((stored[column],)) == normalize_row(
                        (wide_row[column],)
                    )

    def test_bitmap_matches_rowid_map(self, shopping_ndb):
        for wide_id in range(len(shopping_ndb.wide)):
            for table in shopping_ndb.tables:
                mapped = shopping_ndb.rowid_map.get(wide_id, table.name)
                assert shopping_ndb.bitmap.get(table.name, wide_id) == (mapped is not None)

    def test_all_bits_set_before_noise(self, shopping_ndb):
        # Without noise every wide row maps to every table (no NULL keys).
        for table in shopping_ndb.tables:
            assert shopping_ndb.bitmap.bitmap(table.name).count() == len(shopping_ndb.wide)

    def test_lossless_join_property(self, shopping_ndb):
        """Joining the decomposed tables back along the FKs recovers the wide rows."""
        wide = shopping_ndb.wide
        database = shopping_ndb.database
        hub_meta = shopping_ndb.table_meta(shopping_ndb.hub_table)
        goods_by_id = next(t for t in shopping_ndb.tables
                           if set(t.implicit_key) == {"goodsId"})
        users = next(t for t in shopping_ndb.tables if set(t.implicit_key) == {"userId"})
        prices = next(t for t in shopping_ndb.tables if set(t.implicit_key) == {"goodsName"})
        goods_lookup = {row["goodsId"]: row for row in database.table(goods_by_id.name).rows}
        user_lookup = {row["userId"]: row for row in database.table(users.name).rows}
        price_lookup = {row["goodsName"]: row for row in database.table(prices.name).rows}
        for hub_row in database.table(hub_meta.name).rows:
            goods = goods_lookup[hub_row["goodsId"]]
            user = user_lookup[hub_row["userId"]]
            price = price_lookup[goods["goodsName"]]
            reconstructed = (
                hub_row["orderId"], hub_row["goodsId"], goods["goodsName"],
                hub_row["userId"], user["userName"], price["price"],
            )
            original = [
                tuple(row[c] for c in ("orderId", "goodsId", "goodsName",
                                       "userId", "userName", "price"))
                for row in wide.rows
            ]
            assert reconstructed in original


class TestRowIDMap:
    def test_add_and_lookup(self):
        rowid_map = RowIDMap(["T1", "T2"])
        rowid_map.add_wide_row({"T1": 0})
        rowid_map.add_wide_row({"T1": 1, "T2": 0})
        assert rowid_map.get(0, "T1") == 0
        assert rowid_map.get(0, "T2") is None
        assert rowid_map.wide_rows_of("T1", 1) == [1]
        assert rowid_map.tables_mapped(1) == ["T1", "T2"]

    def test_unknown_table_rejected(self):
        rowid_map = RowIDMap(["T1"])
        rowid_map.add_wide_row()
        with pytest.raises(KeyError):
            rowid_map.set(0, "T9", 1)
        with pytest.raises(KeyError):
            rowid_map.add_wide_row({"T9": 0})

    def test_copy_is_deep(self):
        rowid_map = RowIDMap(["T1"])
        rowid_map.add_wide_row({"T1": 0})
        clone = rowid_map.copy()
        clone.set(0, "T1", None)
        assert rowid_map.get(0, "T1") == 0


class TestDiscoveredDecomposition:
    def test_fully_automatic_pipeline_still_works(self):
        """Run discovery-driven normalization end to end (paper's default path)."""
        spec = build_dataset("shopping", 120, random.Random(5))
        normalizer = SchemaNormalizer(spec.wide, max_lhs_size=2)
        ndb = normalizer.build()
        assert len(ndb.tables) >= 3
        assert ndb.schema.foreign_keys
        # Every wide row keeps a mapping into the hub-equivalent table.
        hub = ndb.hub_table
        mapped = sum(
            1 for wide_id in range(len(ndb.wide))
            if ndb.rowid_map.get(wide_id, hub) is not None
        )
        assert mapped == len(ndb.wide)
