"""Shared fixtures: a tiny hand-built schema plus DSG pipelines over each dataset."""

from __future__ import annotations

import pytest

from repro.catalog import Column, DatabaseSchema, ForeignKey, TableSchema
from repro.dsg import DSG, DSGConfig
from repro.engine import Engine, SIM_MYSQL, reference_engine
from repro.expr import ColumnRef, column
from repro.plan import JoinStep, JoinType, QuerySpec, SelectItem, TableRef
from repro.sqlvalue import NULL, bigint, decimal, varchar
from repro.storage import Database


@pytest.fixture
def orders_schema() -> DatabaseSchema:
    """A small orders/users/goods schema mirroring the paper's Figure 3 example."""
    t1 = TableSchema(
        "orders",
        [
            Column("RowID", bigint(nullable=False)),
            Column("orderId", varchar(12)),
            Column("goodsId", bigint()),
            Column("userId", varchar(16)),
        ],
        primary_key=("RowID",),
        implicit_key=("orderId", "goodsId", "userId"),
    )
    t2 = TableSchema(
        "users",
        [
            Column("RowID", bigint(nullable=False)),
            Column("userId", varchar(16)),
            Column("userName", varchar(40)),
        ],
        primary_key=("RowID",),
        implicit_key=("userId",),
    )
    t3 = TableSchema(
        "goods",
        [
            Column("RowID", bigint(nullable=False)),
            Column("goodsId", bigint()),
            Column("goodsName", varchar(40)),
            Column("price", decimal(8, 2)),
        ],
        primary_key=("RowID",),
        implicit_key=("goodsId",),
    )
    return DatabaseSchema(
        [t1, t2, t3],
        [
            ForeignKey("orders", ("userId",), "users", ("userId",)),
            ForeignKey("orders", ("goodsId",), "goods", ("goodsId",)),
        ],
        name="orders_db",
    )


@pytest.fixture
def orders_db(orders_schema: DatabaseSchema) -> Database:
    """The orders schema populated with a handful of rows (incl. NULL keys)."""
    db = Database(orders_schema)
    db.insert_many(
        "users",
        [
            {"RowID": 0, "userId": "str1", "userName": "Tom"},
            {"RowID": 1, "userId": "str2", "userName": "Peter"},
            {"RowID": 2, "userId": "str3", "userName": "Bob"},
        ],
    )
    db.insert_many(
        "goods",
        [
            {"RowID": 0, "goodsId": 1111, "goodsName": "book", "price": 15},
            {"RowID": 1, "goodsId": 1112, "goodsName": "food", "price": 5},
            {"RowID": 2, "goodsId": 1113, "goodsName": "flower", "price": 10},
        ],
    )
    db.insert_many(
        "orders",
        [
            {"RowID": 0, "orderId": "0001", "goodsId": 1111, "userId": "str1"},
            {"RowID": 1, "orderId": "0001", "goodsId": 1112, "userId": "str1"},
            {"RowID": 2, "orderId": "0002", "goodsId": 1111, "userId": "str1"},
            {"RowID": 3, "orderId": "0003", "goodsId": 1111, "userId": "str2"},
            {"RowID": 4, "orderId": "0003", "goodsId": 1113, "userId": "str2"},
            {"RowID": 5, "orderId": "0004", "goodsId": 9999, "userId": "str3"},
            {"RowID": 6, "orderId": "0005", "goodsId": 1112, "userId": NULL},
        ],
    )
    return db


@pytest.fixture
def orders_join_query() -> QuerySpec:
    """orders LEFT OUTER JOIN users, projecting order id and user name."""
    return QuerySpec(
        base=TableRef("orders", "orders"),
        joins=[
            JoinStep(
                TableRef("users", "users"),
                JoinType.LEFT_OUTER,
                left_key=ColumnRef("orders", "userId"),
                right_key=ColumnRef("users", "userId"),
            )
        ],
        select=[SelectItem(column("orders", "orderId")),
                SelectItem(column("users", "userName"))],
    )


@pytest.fixture(scope="session")
def shopping_dsg() -> DSG:
    """A DSG pipeline over the shopping dataset (shared across tests)."""
    return DSG(DSGConfig(dataset="shopping", dataset_rows=120, seed=11))


@pytest.fixture(scope="session")
def tpch_dsg() -> DSG:
    """A DSG pipeline over the TPC-H-like dataset (shared across tests)."""
    return DSG(DSGConfig(dataset="tpch", dataset_rows=120, seed=13))


@pytest.fixture(scope="session")
def kddcup_dsg() -> DSG:
    """A DSG pipeline over the KDD-Cup-like dataset (shared across tests)."""
    return DSG(DSGConfig(dataset="kddcup", dataset_rows=120, seed=17))


@pytest.fixture
def clean_engine(shopping_dsg: DSG) -> Engine:
    """A bug-free engine over the shopping test database."""
    return reference_engine(shopping_dsg.database)


@pytest.fixture
def mysql_engine(shopping_dsg: DSG) -> Engine:
    """A SimMySQL engine over the shopping test database."""
    return Engine(shopping_dsg.database, SIM_MYSQL)
