"""Tests for the wide table container and the synthetic dataset builders."""

import random

import pytest

from repro.catalog import Column
from repro.dsg import DATASETS, WideTable, build_dataset
from repro.dsg.fd import holds
from repro.errors import SchemaError
from repro.sqlvalue import NULL, integer, varchar


class TestWideTable:
    def _table(self) -> WideTable:
        return WideTable(
            [Column("id", integer()), Column("name", varchar(10))],
            rows=[{"id": 1, "name": "a"}, {"id": 2, "name": "b"}],
        )

    def test_append_and_rowid(self):
        table = self._table()
        row_id = table.append({"id": 3})
        assert row_id == 2
        assert table.row(2)["name"] is NULL

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            self._table().append({"bogus": 1})
        with pytest.raises(SchemaError):
            WideTable([Column("a", integer()), Column("a", integer())])
        with pytest.raises(SchemaError):
            WideTable([])

    def test_set_cell_and_column_values(self):
        table = self._table()
        table.set_cell(0, "name", NULL)
        assert table.column_values("name") == [NULL, "b"]

    def test_distinct_values_skip_null(self):
        table = self._table()
        table.append({"id": 1, "name": "a"})
        table.set_cell(1, "name", NULL)
        assert table.distinct_values("name") == ["a"]

    def test_projection_subset_of_rows(self):
        table = self._table()
        assert table.projection(["name"], [1]) == [("b",)]

    def test_copy_is_independent(self):
        table = self._table()
        clone = table.copy()
        clone.set_cell(0, "name", "changed")
        assert table.row(0)["name"] == "a"


class TestDatasets:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_builders_produce_requested_size(self, name):
        spec = build_dataset(name, 90, random.Random(1))
        assert len(spec.wide) >= 90
        assert spec.key_columns
        assert spec.planted_fds

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_planted_fds_hold_in_the_data(self, name):
        spec = build_dataset(name, 120, random.Random(2))
        for fd in spec.planted_fds:
            assert holds(spec.wide, fd.lhs, fd.rhs), f"{fd} violated in {name}"

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_key_columns_are_unique_identifiers(self, name):
        spec = build_dataset(name, 120, random.Random(3))
        for column in spec.wide.column_names:
            if column in spec.key_columns:
                continue
            assert holds(spec.wide, spec.key_columns, column)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            build_dataset("nope")

    def test_shopping_matches_figure3_columns(self):
        spec = build_dataset("shopping", 50, random.Random(4))
        assert set(spec.wide.column_names) == {
            "orderId", "goodsId", "goodsName", "userId", "userName", "price"
        }

    def test_tpch_contains_negative_zero_discounts(self):
        spec = build_dataset("tpch", 200, random.Random(5))
        discounts = spec.wide.column_values("discount")
        assert any(str(v) == "-0.0" for v in discounts)
        assert any(str(v) == "0.0" for v in discounts)

    def test_kddcup_amounts_have_fractional_decimals(self):
        spec = build_dataset("kddcup", 100, random.Random(6))
        amounts = {str(v) for v in spec.wide.column_values("amount")}
        assert any("." in a and not a.endswith(".00") for a in amounts)

    def test_deterministic_given_seed(self):
        first = build_dataset("shopping", 60, random.Random(9))
        second = build_dataset("shopping", 60, random.Random(9))
        assert first.wide.rows == second.wide.rows
