"""Tests for the overlapped execution pipeline (repro.core.execpipe).

The headline property is the determinism contract: for the same seed, a
differential campaign run serially, with ``batch_size=1``, and with
``batch_size=8`` must produce bit-identical per-hour series, verdicts and
:class:`BugLog` contents — threads may only move wall-clock time around.
"""

from __future__ import annotations

import threading

import pytest

from repro.backends import SimulatedBackend, SQLiteBackend
from repro.backends.base import BackendAdapter, BackendExecution
from repro.core import (
    CampaignConfig,
    PipelineConfig,
    QueryJob,
    run_differential_campaign,
)
from repro.core.differential import DifferentialConfig, DifferentialTester
from repro.core.execpipe import ExecutionPipeline
from repro.dsg import DSG, DSGConfig
from repro.engine import SIM_MYSQL
from repro.errors import BackendError, CampaignError


def incident_keys(result):
    """The order-sensitive verdict fingerprint of a campaign's bug log."""
    assert result.bug_log is not None
    return [
        (incident.fired_bug_ids, incident.query_canonical_label,
         incident.query_sql)
        for incident in result.bug_log.incidents
    ]


# ------------------------------------------------------- determinism contract


class TestDeterminismContract:
    CONFIG = CampaignConfig(hours=3, queries_per_hour=10, seed=5)

    def run_three_ways(self, make_backend):
        serial = run_differential_campaign(make_backend(), self.CONFIG)
        batch_one = run_differential_campaign(
            make_backend(), self.CONFIG, pipeline=PipelineConfig(batch_size=1)
        )
        batch_eight = run_differential_campaign(
            make_backend(), self.CONFIG, pipeline=PipelineConfig(batch_size=8)
        )
        return serial, batch_one, batch_eight

    def test_simulated_faulty_backend_identical_verdicts(self):
        """serial == batch_size=1 == batch_size=8, including found bugs."""
        serial, batch_one, batch_eight = self.run_three_ways(
            lambda: SimulatedBackend(SIM_MYSQL)
        )
        assert serial.samples == batch_one.samples == batch_eight.samples
        assert (incident_keys(serial) == incident_keys(batch_one)
                == incident_keys(batch_eight))
        assert serial.final.bug_count > 0  # the contract is non-vacuous

    def test_sqlite_backend_identical_series_and_zero_false_positives(self):
        serial, batch_one, batch_eight = self.run_three_ways(SQLiteBackend)
        assert serial.samples == batch_one.samples == batch_eight.samples
        assert serial.final.bug_count == 0
        assert batch_eight.final.bug_count == 0
        assert serial.final.queries_executed > 0

    def test_partial_batch_flushes_at_hour_boundary(self):
        """A batch size larger than the hour's budget must still execute all
        generated queries each hour (the loop flushes before sampling)."""
        config = CampaignConfig(hours=2, queries_per_hour=3, seed=11)
        result = run_differential_campaign(
            SQLiteBackend(), config, pipeline=PipelineConfig(batch_size=64)
        )
        serial = run_differential_campaign(SQLiteBackend(), config)
        assert result.samples == serial.samples


# ---------------------------------------------------------- pipeline mechanics


class TestPipelineMechanics:
    def make_tester(self, batch_size, seed=4):
        dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=80, seed=seed))
        backend = SQLiteBackend()
        backend.deploy(dsg.database)
        return DifferentialTester(
            dsg, backend, config=DifferentialConfig(seed=seed),
            pipeline=PipelineConfig(batch_size=batch_size),
        )

    def test_batched_outcomes_preserve_generation_order(self):
        batched = self.make_tester(batch_size=4)
        serial = self.make_tester(batch_size=1)
        batched.run(12)
        serial.run(12)
        assert len(batched.outcomes) == len(serial.outcomes)
        assert ([o.canonical_label for o in batched.outcomes]
                == [o.canonical_label for o in serial.outcomes])
        assert ([o.matched for o in batched.outcomes]
                == [o.matched for o in serial.outcomes])
        batched.close()
        serial.close()

    def test_run_iteration_buffers_until_batch_fills(self):
        tester = self.make_tester(batch_size=50)
        try:
            outcome = tester.run_iteration()
            assert outcome is None
            assert tester.queries_generated == 1
            assert not tester.outcomes
            tester.flush()
            assert len(tester.outcomes) == 1
        finally:
            tester.close()

    def test_close_is_idempotent_and_closes_backend(self):
        tester = self.make_tester(batch_size=4)
        tester.run_iteration()
        tester.close()
        tester.close()  # second close must be a no-op, not an error
        with pytest.raises(BackendError):
            tester.backend.connection  # noqa: B018 - property raises when closed

    def test_invalid_pipeline_config_rejected(self):
        with pytest.raises(CampaignError):
            PipelineConfig(batch_size=0)
        with pytest.raises(CampaignError):
            PipelineConfig(batch_size=4, target_threads=0)


# ----------------------------------------------------- batched backend API


class _ExplodingBackend(SimulatedBackend):
    """Fails on every second execute, with a BackendError."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def execute(self, query):
        self.calls += 1
        if self.calls % 2 == 0:
            raise BackendError("boom")
        return super().execute(query)


class TestExecuteMany:
    def build(self):
        dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=80, seed=7))
        backend = _ExplodingBackend()
        backend.deploy(dsg.database)
        queries = []
        while len(queries) < 4:
            try:
                query = dsg.generate_query()
            except Exception:
                continue
            if query.limit is None:
                queries.append(query)
        return backend, queries

    def test_default_execute_many_captures_per_query_errors(self):
        backend, queries = self.build()
        executions = backend.execute_many(queries)
        assert len(executions) == len(queries)
        assert [execution.ok for execution in executions] == [
            True, False, True, False
        ]
        assert all(isinstance(e.error, BackendError)
                   for e in executions if not e.ok)

    def test_pipeline_skips_errored_queries_like_serial_path(self):
        config = CampaignConfig(hours=2, queries_per_hour=6, seed=13)
        serial = run_differential_campaign(_ExplodingBackend(), config)
        batched = run_differential_campaign(
            _ExplodingBackend(), config, pipeline=PipelineConfig(batch_size=6)
        )
        assert serial.samples == batched.samples
        assert serial.final.queries_executed < serial.final.queries_generated


# --------------------------------------------------- capability-driven fan-out


class _RecordingThreadBackend(BackendAdapter):
    """Thread-safe fake that records which threads executed queries."""

    name = "threaded-fake"
    supports_concurrent_cursors = True

    def __init__(self):
        self.threads = set()
        self._lock = threading.Lock()

    def connect(self):
        pass

    def close(self):
        pass

    def execute(self, query):
        import time

        from repro.engine.resultset import ResultSet

        with self._lock:
            self.threads.add(threading.current_thread().name)
        time.sleep(0.02)  # long enough that a lone thread cannot drain 8 jobs
        return BackendExecution(result=ResultSet(["a"], [(1,)]))


class _OracleStub:
    """Just enough oracle surface for ExecutionPipeline.run_batch."""

    def __init__(self, backend, reference):
        self.backend = backend
        self.reference = reference
        self.judged = []

    def precheck(self, query, label):
        return None

    def execute_reference(self, query, label=""):
        return self.reference.execute(query)

    def judge(self, query, label, execution, reference_result):
        self.judged.append((label, execution.ok))
        return (label, execution.ok)


class _ReferenceStub:
    def execute(self, query):
        from repro.engine.resultset import ResultSet

        return ResultSet(["a"], [(1,)])


class TestCapabilityClamping:
    def test_concurrent_cursor_backend_may_fan_out(self):
        backend = _RecordingThreadBackend()
        oracle = _OracleStub(backend, _ReferenceStub())
        pipeline = ExecutionPipeline(
            oracle, PipelineConfig(batch_size=8, target_threads=4)
        )
        assert pipeline.target_threads == 4
        jobs = [QueryJob(query=None, label=f"L{i}") for i in range(8)]
        outcomes = pipeline.run_batch(jobs)
        assert [label for label, _ in outcomes] == [f"L{i}" for i in range(8)]
        # Genuine fan-out: a declared-concurrent backend must see more than
        # one executing thread (every pool worker does real work — no pool
        # slot is burned on a blocked wrapper task).
        assert len(backend.threads) > 1
        pipeline.close()

    def test_serial_backend_is_clamped_to_one_thread(self):
        backend = _RecordingThreadBackend()
        backend.supports_concurrent_cursors = False
        oracle = _OracleStub(backend, _ReferenceStub())
        pipeline = ExecutionPipeline(
            oracle, PipelineConfig(batch_size=8, target_threads=4)
        )
        assert pipeline.target_threads == 1
        pipeline.run_batch([QueryJob(query=None, label="L") for _ in range(6)])
        assert len(backend.threads) == 1
        pipeline.close()
