"""Tests for functional dependency discovery, closures and minimal covers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import Column
from repro.dsg import (
    FunctionalDependency,
    WideTable,
    attribute_closure,
    build_dataset,
    candidate_key,
    discover_fds,
    minimal_cover,
    transitive_closure,
)
from repro.dsg.fd import FDDiscovery, holds
from repro.sqlvalue import NULL, integer, varchar


def figure3_table() -> WideTable:
    columns = [
        Column("orderId", varchar(8)), Column("goodsId", integer()),
        Column("goodsName", varchar(10)), Column("userId", varchar(8)),
        Column("userName", varchar(10)), Column("price", integer()),
    ]
    rows = [
        ("0001", 1111, "book", "str1", "Tom", 15),
        ("0001", 1112, "food", "str1", "Tom", 5),
        ("0002", 1111, "book", "str1", "Tom", 15),
        ("0003", 1111, "book", "str2", "Peter", 15),
        ("0003", 1112, "food", "str2", "Peter", 5),
        ("0003", 1113, "flower", "str2", "Peter", 10),
        ("0004", 1111, "book", "str3", "Bob", 15),
        ("0004", 1112, "food", "str3", "Bob", 5),
    ]
    names = [c.name for c in columns]
    return WideTable(columns, rows=[dict(zip(names, row)) for row in rows])


class TestHoldsAndDiscovery:
    def test_planted_fds_hold(self):
        table = figure3_table()
        assert holds(table, ("goodsId",), "goodsName")
        assert holds(table, ("goodsName",), "price")
        assert holds(table, ("userId",), "userName")
        assert not holds(table, ("userId",), "goodsId")
        assert not holds(table, ("userName",), "orderId")

    def test_discovery_finds_the_paper_fds(self):
        found = {fd.render() for fd in discover_fds(figure3_table(), max_lhs_size=2)}
        assert "{goodsId} -> goodsName" in found
        assert "{goodsName} -> price" in found
        assert "{userId} -> userName" in found

    def test_discovery_respects_exclusions(self):
        found = discover_fds(figure3_table(), exclude_columns=("goodsId",))
        assert all("goodsId" not in fd.lhs and fd.rhs != "goodsId" for fd in found)

    def test_minimality_pruning(self):
        found = discover_fds(figure3_table(), max_lhs_size=2)
        # goodsId -> goodsName makes {goodsId, userId} -> goodsName non-minimal.
        assert not any(set(fd.lhs) == {"goodsId", "userId"} and fd.rhs == "goodsName"
                       for fd in found)

    def test_null_rows_do_not_crash_discovery(self):
        table = figure3_table()
        table.append({"orderId": "0005", "goodsId": NULL, "goodsName": NULL,
                      "userId": "str1", "userName": "Tom", "price": NULL})
        assert holds(table, ("userId",), "userName")

    @pytest.mark.parametrize("dataset", ["shopping", "kddcup", "tpch"])
    def test_discovery_superset_of_planted(self, dataset):
        spec = build_dataset(dataset, 150, random.Random(3))
        discovered = FDDiscovery(spec.wide, max_lhs_size=2).discover()
        rendered = {(tuple(sorted(fd.lhs)), fd.rhs) for fd in discovered}
        for fd in spec.planted_fds:
            if len(fd.lhs) > 2:
                continue
            assert (tuple(sorted(fd.lhs)), fd.rhs) in rendered


class TestClosuresAndCover:
    FDS = [
        FunctionalDependency(("goodsId",), "goodsName"),
        FunctionalDependency(("goodsName",), "price"),
        FunctionalDependency(("userId",), "userName"),
    ]

    def test_attribute_closure(self):
        closure = attribute_closure(("goodsId",), self.FDS)
        assert closure == {"goodsId", "goodsName", "price"}

    def test_transitive_closure_for_noise_sync(self):
        assert transitive_closure("goodsId", self.FDS) == {"goodsName", "price"}
        assert transitive_closure("userId", self.FDS) == {"userName"}
        assert transitive_closure("price", self.FDS) == set()

    def test_minimal_cover_removes_redundant_fds(self):
        fds = self.FDS + [FunctionalDependency(("goodsId",), "price")]
        cover = minimal_cover(fds)
        assert FunctionalDependency(("goodsId",), "price") not in cover
        assert len(cover) == 3

    def test_minimal_cover_reduces_left_sides(self):
        fds = [FunctionalDependency(("goodsId", "userId"), "goodsName"),
               FunctionalDependency(("goodsId",), "goodsName")]
        cover = minimal_cover(fds)
        assert all(fd.lhs == ("goodsId",) for fd in cover if fd.rhs == "goodsName")

    def test_candidate_key_of_figure3(self):
        columns = [c.name for c in figure3_table().columns]
        key = candidate_key(columns, self.FDS)
        assert "orderId" in key and "goodsId" in key and "userId" in key
        assert "price" not in key and "userName" not in key


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=30))
def test_holds_matches_bruteforce_definition(pairs):
    table = WideTable([Column("a", integer()), Column("b", integer())],
                      rows=[{"a": a, "b": b} for a, b in pairs])
    mapping = {}
    expected = True
    for a, b in pairs:
        if a in mapping and mapping[a] != b:
            expected = False
            break
        mapping.setdefault(a, b)
    assert holds(table, ("a",), "b") == expected
