"""Tests for the logical query model and its SQL rendering."""

import pytest

from repro.errors import PlanError
from repro.expr import ColumnRef, column, eq, lit
from repro.plan import (
    AggregateFunction,
    JoinStep,
    JoinType,
    OrderItem,
    QuerySpec,
    SelectItem,
    TableRef,
)


def make_query(join_type=JoinType.INNER) -> QuerySpec:
    return QuerySpec(
        base=TableRef("orders", "orders"),
        joins=[
            JoinStep(
                TableRef("users", "users"),
                join_type,
                left_key=ColumnRef("orders", "userId"),
                right_key=ColumnRef("users", "userId"),
            )
        ],
        select=[SelectItem(column("orders", "orderId"))],
    )


class TestJoinType:
    def test_outer_classification(self):
        assert JoinType.LEFT_OUTER.is_outer
        assert JoinType.FULL_OUTER.is_outer
        assert not JoinType.SEMI.is_outer

    def test_exposure(self):
        assert JoinType.INNER.exposes_right_columns
        assert not JoinType.ANTI.exposes_right_columns

    def test_render_keywords(self):
        assert JoinType.LEFT_OUTER.render() == "LEFT OUTER JOIN"
        assert JoinType.CROSS.render() == "CROSS JOIN"


class TestJoinStep:
    def test_equi_join_requires_keys(self):
        with pytest.raises(PlanError):
            JoinStep(TableRef("users", "users"), JoinType.INNER)

    def test_cross_join_needs_no_keys(self):
        step = JoinStep(TableRef("users", "users"), JoinType.CROSS)
        assert step.condition_sql() == ""

    def test_condition_sql(self):
        step = make_query().joins[0]
        assert step.condition_sql() == "orders.userId = users.userId"


class TestQuerySpec:
    def test_accessors(self):
        query = make_query()
        assert query.tables == ["orders", "users"]
        assert query.aliases == ["orders", "users"]
        assert query.alias_of("users") == "users"
        assert query.join_types == [JoinType.INNER]

    def test_alias_of_unknown_table(self):
        with pytest.raises(PlanError):
            make_query().alias_of("missing")

    def test_validation_catches_duplicate_aliases(self):
        query = make_query()
        query.joins.append(
            JoinStep(TableRef("users", "users"), JoinType.INNER,
                     left_key=ColumnRef("orders", "userId"),
                     right_key=ColumnRef("users", "userId"))
        )
        with pytest.raises(PlanError):
            query.validate()

    def test_validation_requires_projection(self):
        query = make_query()
        query.select = []
        with pytest.raises(PlanError):
            query.validate()

    def test_validation_requires_connected_left_key(self):
        query = make_query()
        query.joins[0] = JoinStep(
            TableRef("users", "users"), JoinType.INNER,
            left_key=ColumnRef("goods", "goodsId"),
            right_key=ColumnRef("users", "userId"),
        )
        with pytest.raises(PlanError):
            query.validate()

    def test_render_inner_join(self):
        sql = make_query().render()
        assert "INNER JOIN users" in sql
        assert sql.strip().endswith(";")
        assert "SELECT DISTINCT" in sql

    def test_render_semi_join_as_in_subquery(self):
        sql = make_query(JoinType.SEMI).render()
        assert "IN (SELECT users.userId FROM users)" in sql
        assert "SEMI JOIN" not in sql

    def test_render_anti_join_as_not_in(self):
        sql = make_query(JoinType.ANTI).render()
        assert "NOT IN (SELECT" in sql

    def test_render_with_hint_comment(self):
        assert "/*+ hash_join() */" in make_query().render("hash_join()")

    def test_render_where_group_order_limit(self):
        query = make_query()
        query.where = eq(column("orders", "orderId"), lit("0001"))
        query.group_by = [ColumnRef("orders", "orderId")]
        query.select = [SelectItem(column("orders", "orderId")),
                        SelectItem(column("orders", "goodsId"),
                                   aggregate=AggregateFunction.COUNT)]
        query.order_by = [OrderItem(column("orders", "orderId"), descending=True)]
        query.limit = 10
        sql = query.render()
        assert "WHERE" in sql and "GROUP BY" in sql
        assert "ORDER BY orders.orderId DESC" in sql and "LIMIT 10" in sql
        assert "COUNT(orders.goodsId)" in sql
        # Aggregated queries do not render DISTINCT.
        assert "SELECT DISTINCT" not in sql


class TestSelectItem:
    def test_output_names(self):
        plain = SelectItem(column("t", "a"))
        aliased = SelectItem(column("t", "a"), alias="x")
        agg = SelectItem(column("t", "a"), aggregate=AggregateFunction.MIN)
        assert plain.output_name(0) == "a"
        assert aliased.output_name(0) == "x"
        assert agg.output_name(2) == "min_2"

    def test_render(self):
        item = SelectItem(column("t", "a"), alias="x", aggregate=AggregateFunction.MAX)
        assert item.render() == "MAX(t.a) AS x"
