"""Tests for in-memory storage, indexes and the Database facade."""

import pytest

from repro.errors import CatalogError, ExecutionError
from repro.sqlvalue import NULL
from repro.storage import HashIndex, OrderedIndex, TableData


class TestTableData:
    def test_insert_fills_missing_with_null(self, orders_schema):
        table = TableData(orders_schema.table("users"))
        row = table.insert({"userId": "u1"})
        assert row["userName"] is NULL
        assert len(table) == 1

    def test_insert_rejects_unknown_columns(self, orders_schema):
        table = TableData(orders_schema.table("users"))
        with pytest.raises(ExecutionError):
            table.insert({"nope": 1})

    def test_update_cell_and_bounds(self, orders_schema):
        table = TableData(orders_schema.table("users"))
        table.insert({"userId": "u1", "userName": "Tom"})
        table.update_cell(0, "userName", "Bob")
        assert table.rows[0]["userName"] == "Bob"
        with pytest.raises(ExecutionError):
            table.update_cell(5, "userName", "x")
        with pytest.raises(ExecutionError):
            table.update_cell(0, "missing", "x")

    def test_distinct_values_skips_null(self, orders_db):
        users = orders_db.table("orders")
        values = users.distinct_values("userId")
        assert NULL not in values
        assert set(values) == {"str1", "str2", "str3"}

    def test_find_rows_ignores_null(self, orders_db):
        orders = orders_db.table("orders")
        assert orders.find_rows("userId", "str1") == [0, 1, 2]
        assert orders.find_rows("userId", NULL) == []

    def test_copy_is_independent(self, orders_db):
        original = orders_db.table("users")
        clone = original.copy()
        clone.update_cell(0, "userName", "changed")
        assert original.rows[0]["userName"] == "Tom"


class TestHashIndex:
    def test_probe_matches_equal_keys(self, orders_db):
        index = HashIndex(orders_db.table("orders"), "userId")
        assert sorted(index.probe("str1")) == [0, 1, 2]
        assert index.probe("str9") == []

    def test_probe_null_returns_nothing(self, orders_db):
        index = HashIndex(orders_db.table("orders"), "userId")
        assert index.probe(NULL) == []
        assert index.null_row_indices == [6]

    def test_numeric_normalization(self, orders_db):
        index = HashIndex(orders_db.table("goods"), "goodsId")
        assert index.probe(1111.0) == index.probe(1111)

    def test_len_counts_non_null_entries(self, orders_db):
        index = HashIndex(orders_db.table("orders"), "userId")
        assert len(index) == 6


class TestOrderedIndex:
    def test_equal_range(self, orders_db):
        index = OrderedIndex(orders_db.table("orders"), "goodsId")
        assert sorted(index.equal_range(1111)) == [0, 2, 3]

    def test_range_query(self, orders_db):
        index = OrderedIndex(orders_db.table("goods"), "price")
        between = index.range(5, 10)
        assert len(between) == 2

    def test_min_max(self, orders_db):
        index = OrderedIndex(orders_db.table("goods"), "price")
        assert index.min_value() == 5
        assert index.max_value() == 15

    def test_empty_index_min_is_null(self, orders_schema):
        from repro.storage import TableData

        index = OrderedIndex(TableData(orders_schema.table("users")), "userId")
        assert index.min_value() is NULL


class TestDatabase:
    def test_row_counts(self, orders_db):
        assert orders_db.row_count("orders") == 7
        assert orders_db.total_rows() == 13

    def test_unknown_table(self, orders_db):
        with pytest.raises(CatalogError):
            orders_db.table("missing")

    def test_indexes_are_cached_and_invalidated(self, orders_db):
        first = orders_db.hash_index("orders", "userId")
        assert orders_db.hash_index("orders", "userId") is first
        orders_db.insert("orders", {"RowID": 7, "orderId": "0006", "goodsId": 1111,
                                    "userId": "str1"})
        rebuilt = orders_db.hash_index("orders", "userId")
        assert rebuilt is not first
        assert len(rebuilt.probe("str1")) == 4

    def test_copy_isolates_rows(self, orders_db):
        clone = orders_db.copy()
        clone.update_cell("users", 0, "userName", "changed")
        assert orders_db.table("users").rows[0]["userName"] == "Tom"
