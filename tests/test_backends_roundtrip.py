"""Round-trip tests: render IR to SQL, execute on real SQLite, compare with the
reference executor.

These are the renderer's semantic contract tests: for every
:class:`~repro.sqlvalue.datatypes.TypeCategory` and every
:class:`~repro.plan.logical.JoinType`, the rendered query must mean on SQLite
exactly what the spec means to the reference engine — including NULL keys,
``-0.0`` vs ``0.0``, decimal/float representation changes and noise-injected
boundary values on DSG-generated databases.
"""

from __future__ import annotations

from decimal import Decimal

import pytest

from repro.backends import SQLiteBackend, SimulatedBackend
from repro.catalog import Column, DatabaseSchema, ForeignKey, TableSchema
from repro.core.differential import result_sets_match
from repro.dsg import DSG, DSGConfig
from repro.engine import reference_engine
from repro.expr.ast import ColumnRef, Comparison, IsNull, Or, column, lit
from repro.plan.logical import (
    AggregateFunction,
    JoinStep,
    JoinType,
    QuerySpec,
    SelectItem,
    TableRef,
)
from repro.sqlvalue import (
    NULL,
    bigint,
    boolean,
    date,
    decimal,
    double,
    integer,
    varchar,
)
from repro.storage import Database


@pytest.fixture(scope="module")
def typed_db() -> Database:
    """Two joinable tables whose columns cover every TypeCategory."""
    facts = TableSchema(
        "facts",
        [
            Column("RowID", bigint(nullable=False)),
            Column("k", integer()),                  # INTEGER
            Column("amount", decimal(8, 2)),         # DECIMAL
            Column("ratio", double()),               # FLOAT
            Column("tag", varchar(32)),              # STRING
            Column("day", date()),                   # TEMPORAL
            Column("flag", boolean()),               # BOOLEAN
        ],
        primary_key=("RowID",),
        implicit_key=("k",),
    )
    dims = TableSchema(
        "dims",
        [
            Column("RowID", bigint(nullable=False)),
            Column("k", integer()),
            Column("label", varchar(32)),
        ],
        primary_key=("RowID",),
        implicit_key=("k",),
    )
    schema = DatabaseSchema(
        [facts, dims],
        [ForeignKey("facts", ("k",), "dims", ("k",))],
        name="typed_db",
    )
    db = Database(schema)
    db.insert_many(
        "facts",
        [
            {"RowID": 0, "k": 1, "amount": Decimal("15.10"), "ratio": 0.5,
             "tag": "alpha", "day": "2020-01-01", "flag": True},
            {"RowID": 1, "k": 2, "amount": Decimal("-3.25"), "ratio": -0.0,
             "tag": "it's", "day": "1000-01-01", "flag": False},
            {"RowID": 2, "k": NULL, "amount": NULL, "ratio": 1e15,
             "tag": NULL, "day": NULL, "flag": NULL},
            {"RowID": 3, "k": 9, "amount": Decimal("0"), "ratio": 0.0,
             "tag": "trailing ", "day": "9999-12-31", "flag": True},
            {"RowID": 4, "k": 2, "amount": Decimal("7.77"), "ratio": 2.25,
             "tag": "alpha", "day": "2020-01-01", "flag": False},
        ],
    )
    db.insert_many(
        "dims",
        [
            {"RowID": 0, "k": 1, "label": "one"},
            {"RowID": 1, "k": 2, "label": "two"},
            {"RowID": 2, "k": NULL, "label": "nullkey"},
            {"RowID": 3, "k": 4, "label": "unmatched"},
        ],
    )
    return db


def _assert_backend_matches_reference(db: Database, query: QuerySpec) -> None:
    query.validate()
    reference = reference_engine(db)
    with SQLiteBackend() as backend:
        backend.load_schema(db.schema)
        backend.load_data(db)
        execution = backend.execute(query)
        assert result_sets_match(reference.execute(query), execution.result), (
            f"SQLite diverges from the reference executor:\n{execution.sql}\n"
            f"reference:\n{reference.execute(query).render()}\n"
            f"sqlite:\n{execution.result.render()}"
        )


@pytest.mark.parametrize("join_type", list(JoinType))
def test_every_join_type_round_trips(typed_db: Database, join_type: JoinType):
    kwargs = {}
    if join_type is not JoinType.CROSS:
        kwargs = dict(left_key=ColumnRef("facts", "k"),
                      right_key=ColumnRef("dims", "k"))
    select = [
        SelectItem(ColumnRef("facts", "k")),
        SelectItem(ColumnRef("facts", "tag")),
    ]
    if join_type.exposes_right_columns:
        select.append(SelectItem(ColumnRef("dims", "label")))
    query = QuerySpec(
        base=TableRef("facts", "facts"),
        joins=[JoinStep(TableRef("dims", "dims"), join_type, **kwargs)],
        select=select,
    )
    _assert_backend_matches_reference(typed_db, query)


@pytest.mark.parametrize(
    "column_name",
    ["k", "amount", "ratio", "tag", "day", "flag"],
    ids=["integer", "decimal", "float", "string", "temporal", "boolean"],
)
def test_every_type_category_round_trips(typed_db: Database, column_name: str):
    """Project and filter each type category through SQLite and compare."""
    values = typed_db.table("facts").distinct_values(column_name)
    predicate = Or(
        Comparison("=", column("facts", column_name), lit(values[0])),
        IsNull(column("facts", column_name)),
    )
    query = QuerySpec(
        base=TableRef("facts", "facts"),
        joins=[
            JoinStep(TableRef("dims", "dims"), JoinType.LEFT_OUTER,
                     left_key=ColumnRef("facts", "k"),
                     right_key=ColumnRef("dims", "k"))
        ],
        select=[
            SelectItem(ColumnRef("facts", column_name)),
            SelectItem(ColumnRef("dims", "label")),
        ],
        where=predicate,
    )
    _assert_backend_matches_reference(typed_db, query)


def test_aggregate_round_trips(typed_db: Database):
    query = QuerySpec(
        base=TableRef("facts", "facts"),
        joins=[
            JoinStep(TableRef("dims", "dims"), JoinType.INNER,
                     left_key=ColumnRef("facts", "k"),
                     right_key=ColumnRef("dims", "k"))
        ],
        select=[
            SelectItem(ColumnRef("dims", "label")),
            SelectItem(ColumnRef("facts", "amount"),
                       aggregate=AggregateFunction.COUNT),
            SelectItem(ColumnRef("facts", "ratio"),
                       aggregate=AggregateFunction.MAX),
        ],
        group_by=[ColumnRef("dims", "label")],
    )
    _assert_backend_matches_reference(typed_db, query)


def test_negative_zero_join_key_round_trips(typed_db: Database):
    """-0.0 and 0.0 are one join key for the reference and for SQLite alike."""
    query = QuerySpec(
        base=TableRef("facts", "facts"),
        joins=[
            JoinStep(TableRef("dims", "dims"), JoinType.SEMI,
                     left_key=ColumnRef("facts", "k"),
                     right_key=ColumnRef("dims", "k"))
        ],
        select=[SelectItem(ColumnRef("facts", "ratio"))],
        where=Comparison("=", column("facts", "ratio"), lit(0.0)),
    )
    _assert_backend_matches_reference(typed_db, query)


def test_export_script_recreates_database(typed_db: Database):
    """The literal DDL+DML export must rebuild an identical SQLite database."""
    import sqlite3

    from repro.backends import SQLITE_DIALECT, SQLRenderer

    renderer = SQLRenderer(SQLITE_DIALECT)
    connection = sqlite3.connect(":memory:")
    for statement in renderer.export_database(typed_db):
        connection.execute(statement)
    count = connection.execute('SELECT COUNT(*) FROM "facts"').fetchone()[0]
    assert count == typed_db.row_count("facts")

    with SQLiteBackend() as backend:
        backend.load_schema(typed_db.schema)
        backend.load_data(typed_db)
        loaded = backend.execute_sql('SELECT * FROM "facts"').normalized()
    exported = set()
    cursor = connection.execute('SELECT * FROM "facts"')
    from repro.sqlvalue.values import normalize_row, null_if_none

    for row in cursor.fetchall():
        exported.add(normalize_row(tuple(null_if_none(v) for v in row)))
    assert exported == loaded


@pytest.mark.parametrize("dataset,seed", [("shopping", 11), ("tpch", 13),
                                          ("kddcup", 17)])
def test_dsg_generated_queries_round_trip(dataset: str, seed: int):
    """Property test: generated queries agree on SQLite across datasets."""
    dsg = DSG(DSGConfig(dataset=dataset, dataset_rows=100, seed=seed))
    reference = reference_engine(dsg.database)
    with SQLiteBackend() as backend:
        backend.load_schema(dsg.database.schema)
        backend.load_data(dsg.database)
        checked = 0
        for _ in range(30):
            try:
                query = dsg.generate_query()
            except Exception:
                continue
            execution = backend.execute(query)
            assert result_sets_match(reference.execute(query), execution.result), (
                f"divergence on {dataset}:\n{execution.sql}"
            )
            checked += 1
    assert checked >= 20


def test_simulated_backend_parity(typed_db: Database):
    """The clean SimulatedBackend is execution-identical to the reference."""
    backend = SimulatedBackend()
    backend.deploy(typed_db)
    query = QuerySpec(
        base=TableRef("facts", "facts"),
        joins=[
            JoinStep(TableRef("dims", "dims"), JoinType.INNER,
                     left_key=ColumnRef("facts", "k"),
                     right_key=ColumnRef("dims", "k"))
        ],
        select=[SelectItem(ColumnRef("facts", "tag"))],
    )
    reference = reference_engine(typed_db)
    assert backend.execute(query).result.same_rows(reference.execute(query))
    assert backend.explain(query)
