"""The in-memory database: a schema plus per-table row storage."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping

from repro.catalog.schema import DatabaseSchema
from repro.catalog.table import TableSchema
from repro.errors import CatalogError
from repro.storage.index import HashIndex, OrderedIndex
from repro.storage.table_data import Row, TableData


class Database:
    """An in-memory database instance.

    A ``Database`` is what the DSG pipeline produces (the normalized, noise
    injected tables) and what every simulated engine executes queries against.
    Engines never mutate the database, so a single instance can be shared across
    the four simulated DBMSs in a campaign.
    """

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self._tables: Dict[str, TableData] = {
            table.name: TableData(table) for table in schema.tables
        }
        self._hash_indexes: Dict[tuple, HashIndex] = {}
        self._ordered_indexes: Dict[tuple, OrderedIndex] = {}

    @property
    def table_names(self) -> List[str]:
        """Names of all tables."""
        return list(self._tables)

    def table(self, name: str) -> TableData:
        """Return the storage for table *name*."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"database has no table {name!r}") from None

    def table_schema(self, name: str) -> TableSchema:
        """Return the schema of table *name*."""
        return self.schema.table(name)

    def insert(self, table: str, row: Mapping[str, Any]) -> Row:
        """Insert one row into *table*, invalidating its indexes."""
        stored = self.table(table).insert(row)
        self._invalidate_indexes(table)
        return stored

    def insert_many(self, table: str, rows: Iterable[Mapping[str, Any]]) -> None:
        """Insert several rows into *table*."""
        storage = self.table(table)
        for row in rows:
            storage.insert(row)
        self._invalidate_indexes(table)

    def update_cell(self, table: str, row_index: int, column: str, value: Any) -> None:
        """Overwrite a cell (noise injection), invalidating indexes of *table*."""
        self.table(table).update_cell(row_index, column, value)
        self._invalidate_indexes(table)

    def _invalidate_indexes(self, table: str) -> None:
        for key in [k for k in self._hash_indexes if k[0] == table]:
            del self._hash_indexes[key]
        for key in [k for k in self._ordered_indexes if k[0] == table]:
            del self._ordered_indexes[key]

    def hash_index(self, table: str, column: str) -> HashIndex:
        """Return (building lazily) a hash index on ``table.column``."""
        key = (table, column)
        if key not in self._hash_indexes:
            self._hash_indexes[key] = HashIndex(self.table(table), column)
        return self._hash_indexes[key]

    def ordered_index(self, table: str, column: str) -> OrderedIndex:
        """Return (building lazily) an ordered index on ``table.column``."""
        key = (table, column)
        if key not in self._ordered_indexes:
            self._ordered_indexes[key] = OrderedIndex(self.table(table), column)
        return self._ordered_indexes[key]

    def row_count(self, table: str) -> int:
        """Number of rows stored in *table*."""
        return len(self.table(table))

    def total_rows(self) -> int:
        """Total number of rows across all tables."""
        return sum(len(t) for t in self._tables.values())

    def copy(self) -> "Database":
        """Copy the database (schema shared, rows copied)."""
        clone = Database(self.schema)
        for name, data in self._tables.items():
            clone._tables[name] = data.copy()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - convenience
        sizes = {name: len(data) for name, data in self._tables.items()}
        return f"Database({self.schema.name!r}, rows={sizes})"
