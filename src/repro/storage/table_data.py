"""In-memory row storage for a single table."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.catalog.table import TableSchema
from repro.errors import ExecutionError
from repro.sqlvalue.values import NULL, is_null, null_if_none

Row = Dict[str, Any]
"""A stored row: a mapping from column name to value."""


class TableData:
    """Rows of one table, stored as a list of column-name→value dicts.

    Tables used by the testing campaigns hold at most a few thousand rows, so a
    simple list keeps execution easy to reason about while staying fast enough
    for the benchmark harness.
    """

    def __init__(self, schema: TableSchema, rows: Optional[Iterable[Mapping[str, Any]]] = None) -> None:
        self.schema = schema
        self._rows: List[Row] = []
        if rows is not None:
            for row in rows:
                self.insert(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    @property
    def rows(self) -> List[Row]:
        """The stored rows (mutable; callers that need isolation should copy)."""
        return self._rows

    def insert(self, row: Mapping[str, Any]) -> Row:
        """Insert a row, filling missing columns with NULL.

        Unknown column names are rejected so that generator bugs surface early.
        """
        stored: Row = {}
        for column in self.schema.columns:
            stored[column.name] = null_if_none(row.get(column.name, NULL))
        unknown = set(row) - set(self.schema.column_names)
        if unknown:
            raise ExecutionError(
                f"insert into {self.schema.name!r} references unknown columns {sorted(unknown)}"
            )
        self._rows.append(stored)
        return stored

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Insert several rows."""
        for row in rows:
            self.insert(row)

    def update_cell(self, row_index: int, column: str, value: Any) -> None:
        """Overwrite one cell (used by the noise injector)."""
        if not self.schema.has_column(column):
            raise ExecutionError(f"{self.schema.name!r} has no column {column!r}")
        try:
            self._rows[row_index][column] = null_if_none(value)
        except IndexError:
            raise ExecutionError(
                f"row index {row_index} out of range for table {self.schema.name!r}"
            ) from None

    def column_values(self, column: str) -> List[Any]:
        """All values of one column, in row order."""
        if not self.schema.has_column(column):
            raise ExecutionError(f"{self.schema.name!r} has no column {column!r}")
        return [row[column] for row in self._rows]

    def distinct_values(self, column: str, include_null: bool = False) -> List[Any]:
        """Distinct non-NULL values of a column (order of first appearance)."""
        seen = []
        seen_keys = set()
        for value in self.column_values(column):
            if is_null(value) and not include_null:
                continue
            key = ("<null>",) if is_null(value) else (type(value).__name__, str(value))
            if key not in seen_keys:
                seen_keys.add(key)
                seen.append(value)
        return seen

    def find_rows(self, column: str, value: Any) -> List[int]:
        """Indices of rows whose *column* equals *value* (NULL never matches)."""
        matches = []
        for index, row in enumerate(self._rows):
            stored = row[column]
            if is_null(stored) or is_null(value):
                continue
            if stored == value:
                matches.append(index)
        return matches

    def rows_as_tuples(self, columns: Optional[Sequence[str]] = None) -> List[tuple]:
        """All rows as positional tuples in *columns* order (schema order default).

        This is the bulk-export shape backend adapters feed to parameterized
        INSERT statements.
        """
        names = tuple(columns) if columns is not None else self.schema.column_names
        for name in names:
            if not self.schema.has_column(name):
                raise ExecutionError(f"{self.schema.name!r} has no column {name!r}")
        return [tuple(row[name] for name in names) for row in self._rows]

    def copy(self) -> "TableData":
        """Deep-enough copy: rows are copied, values are shared (immutable)."""
        clone = TableData(self.schema)
        clone._rows = [dict(row) for row in self._rows]
        return clone
