"""In-memory storage: tables, indexes and the database object."""

from repro.storage.database import Database
from repro.storage.index import HashIndex, OrderedIndex
from repro.storage.table_data import Row, TableData

__all__ = ["Database", "HashIndex", "OrderedIndex", "Row", "TableData"]
