"""Secondary index structures used by index-nested-loop joins and lookups."""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sqlvalue.comparison import correct_hash_key
from repro.sqlvalue.values import NULL, is_null, value_sort_key
from repro.storage.table_data import Row, TableData


class HashIndex:
    """A hash index mapping normalized key values to row indices.

    The key normalization function is injectable because the seeded faults model
    engines whose index probes disagree with their table scans (for example by
    keeping ``-0.0`` and ``0.0`` in different buckets).
    """

    def __init__(
        self,
        table: TableData,
        column: str,
        key_func: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.table = table
        self.column = column
        self._key_func = key_func or correct_hash_key
        self._buckets: Dict[Any, List[int]] = {}
        self._null_rows: List[int] = []
        self.rebuild()

    def rebuild(self) -> None:
        """Recompute the index from the current table contents."""
        self._buckets.clear()
        self._null_rows = []
        for row_index, row in enumerate(self.table.rows):
            value = row[self.column]
            if is_null(value):
                self._null_rows.append(row_index)
                continue
            key = self._key_func(value)
            self._buckets.setdefault(key, []).append(row_index)

    def probe(self, value: Any) -> List[int]:
        """Row indices whose key matches *value* (NULL probes match nothing)."""
        if is_null(value):
            return []
        return list(self._buckets.get(self._key_func(value), ()))

    def probe_rows(self, value: Any) -> List[Row]:
        """Rows matching *value*."""
        return [self.table.rows[i] for i in self.probe(value)]

    @property
    def null_row_indices(self) -> List[int]:
        """Row indices whose indexed column is NULL."""
        return list(self._null_rows)

    def __len__(self) -> int:
        return sum(len(v) for v in self._buckets.values())


class OrderedIndex:
    """A sorted index supporting range probes, used by sort-merge style access."""

    def __init__(self, table: TableData, column: str) -> None:
        self.table = table
        self.column = column
        self._entries: List[Tuple[Tuple[int, Any], int]] = []
        self.rebuild()

    def rebuild(self) -> None:
        """Recompute the sorted entry list."""
        entries = []
        for row_index, row in enumerate(self.table.rows):
            value = row[self.column]
            if is_null(value):
                continue
            entries.append((value_sort_key(value), row_index))
        entries.sort(key=lambda item: item[0])
        self._entries = entries

    def _keys(self) -> List[Tuple[int, Any]]:
        return [entry[0] for entry in self._entries]

    def equal_range(self, value: Any) -> List[int]:
        """Row indices with column equal to *value*."""
        if is_null(value):
            return []
        key = value_sort_key(value)
        keys = self._keys()
        lo = bisect_left(keys, key)
        hi = bisect_right(keys, key)
        return [self._entries[i][1] for i in range(lo, hi)]

    def range(self, low: Any = None, high: Any = None,
              include_low: bool = True, include_high: bool = True) -> List[int]:
        """Row indices with column in the given (optionally open) range."""
        keys = self._keys()
        lo_pos = 0
        hi_pos = len(keys)
        if low is not None and not is_null(low):
            key = value_sort_key(low)
            lo_pos = bisect_left(keys, key) if include_low else bisect_right(keys, key)
        if high is not None and not is_null(high):
            key = value_sort_key(high)
            hi_pos = bisect_right(keys, key) if include_high else bisect_left(keys, key)
        return [self._entries[i][1] for i in range(lo_pos, hi_pos)]

    def min_value(self) -> Any:
        """Smallest non-NULL value, or NULL when the index is empty."""
        if not self._entries:
            return NULL
        return self.table.rows[self._entries[0][1]][self.column]

    def max_value(self) -> Any:
        """Largest non-NULL value, or NULL when the index is empty."""
        if not self._entries:
            return NULL
        return self.table.rows[self._entries[-1][1]][self.column]

    def __len__(self) -> int:
        return len(self._entries)
