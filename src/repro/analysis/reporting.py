"""Text renderers for the paper's tables and figures.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting in one place so benchmarks, examples and tests all
produce the same human-readable output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.campaign import CampaignResult
from repro.engine.dialects import ALL_DIALECTS, DialectProfile


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render a simple aligned ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_series(title: str, hours: Sequence[int],
                  series: Mapping[str, Sequence[int]]) -> str:
    """Render per-hour series (one column per tool), Figure 8/9/10 style."""
    headers = ["hour"] + list(series)
    rows = []
    for index, hour in enumerate(hours):
        row = [hour] + [values[index] if index < len(values) else ""
                        for values in series.values()]
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_dbms_overview(dialects: Iterable[DialectProfile] = ALL_DIALECTS) -> str:
    """Table 3: the tested DBMSs."""
    rows = []
    for profile in dialects:
        rows.append(
            [
                profile.name,
                profile.version,
                profile.db_engines_rank if profile.db_engines_rank is not None else "-",
                profile.stack_overflow_rank
                if profile.stack_overflow_rank is not None else "-",
                f"{profile.github_stars_thousands}k"
                if profile.github_stars_thousands is not None else "-",
                f"{profile.loc_millions}M",
                profile.first_release,
                profile.bug_type_count,
            ]
        )
    headers = ["DBMS", "Version", "DB-Engines", "StackOverflow", "GitHub Stars",
               "LOC", "First Release", "Seeded bug types"]
    return render_table(headers, rows, title="Table 3: tested (simulated) DBMSs")


def render_detected_bugs(results: Mapping[str, CampaignResult]) -> str:
    """Table 4 summary: bugs and bug types per DBMS."""
    rows = []
    total_bugs = 0
    total_types = 0
    for dbms, result in results.items():
        final = result.final
        rows.append([dbms, result.tool, final.bug_count, final.bug_type_count,
                     final.isomorphic_sets, final.queries_generated])
        total_bugs += final.bug_count
        total_types += final.bug_type_count
    rows.append(["TOTAL", "", total_bugs, total_types, "", ""])
    headers = ["DBMS", "Tool", "Bugs", "Bug types", "Isomorphic sets", "Queries"]
    return render_table(headers, rows, title="Table 4: detected bugs per DBMS (24 simulated hours)")


def render_bug_type_details(result: CampaignResult,
                            dialect: DialectProfile) -> str:
    """Per-bug-type detail rows of Table 4 for one DBMS."""
    if result.bug_log is None:
        return "(no bug log)"
    rows = []
    for bug in dialect.bugs:
        incidents = result.bug_log.incidents_for_type(bug.bug_id)
        rows.append(
            [
                bug.bug_id,
                bug.status,
                bug.severity,
                "yes" if incidents else "no",
                len(incidents),
                bug.description[:64] + ("..." if len(bug.description) > 64 else ""),
            ]
        )
    headers = ["ID", "Status", "Severity", "Detected", "Incidents", "Description"]
    return render_table(headers, rows,
                        title=f"Table 4 detail: {dialect.name} {dialect.version}")


def render_ablation(results: Mapping[str, Mapping[str, CampaignResult]]) -> str:
    """Table 5: ablation over model composition."""
    rows = []
    for dbms, variants in results.items():
        for variant, result in variants.items():
            final = result.final
            rows.append([dbms, variant, final.isomorphic_sets, final.bug_count,
                         final.bug_type_count])
    headers = ["DBMS", "Approach", "Query graph diversity", "Bug count", "Bug types"]
    return render_table(headers, rows, title="Table 5: ablation test over model composition")


def render_worker_pool(outcome) -> str:
    """Per-shard and merged summary of one multi-process parallel campaign.

    *outcome* is a :class:`~repro.core.parallel.ParallelCampaignResult` (taken
    by duck type to keep this module import-light).
    """
    rows = []
    for shard_id, shard in enumerate(outcome.shards):
        final = shard.final
        rows.append(
            ["shard %d" % shard_id, final.queries_generated,
             final.generations_rejected, final.isomorphic_sets,
             final.bug_count, final.bug_type_count]
        )
    merged_final = outcome.merged.final
    rows.append(
        ["MERGED", merged_final.queries_generated,
         merged_final.generations_rejected, merged_final.isomorphic_sets,
         merged_final.bug_count, merged_final.bug_type_count]
    )
    headers = ["worker", "queries", "rejected", "isomorphic sets", "bugs",
               "bug types"]
    transport = getattr(outcome, "transport", "local")
    budget_policy = getattr(outcome, "budget_policy", "even")
    title = (f"Parallel campaign: {outcome.workers} workers "
             f"({transport} transport, {budget_policy} budgets), "
             f"{outcome.sync_rounds} sync rounds, "
             f"{outcome.elapsed_seconds:.1f}s wall clock")
    return render_table(headers, rows, title=title)


# ----------------------------------------------------- campaign JSON artifacts


def _bug_keys(result: CampaignResult) -> List[List[object]]:
    """The deduplicated (root cause, structure) bug keys, JSON-ready.

    Derived from the incident list rather than the log's internal key set so
    any :class:`CampaignResult` — including ones re-built from worker reports
    — serializes the same way.
    """
    if result.bug_log is None:
        return []
    keys = {
        (tuple(sorted(incident.root_cause)), incident.query_canonical_label)
        for incident in result.bug_log.incidents
    }
    return [[list(bug_ids), label] for bug_ids, label in sorted(keys)]


def parallel_result_to_dict(outcome, campaign: Optional[Dict] = None) -> Dict:
    """Serialize a parallel campaign outcome to a JSON-compatible dict.

    The ``summary`` block contains only seed-deterministic fields, so two runs
    of the same campaign — over any transport — must produce equal summaries;
    ``python -m repro.distributed verify-local`` leans on exactly that.
    Wall-clock timing, raw incidents and the campaign echo live outside it.
    """
    from dataclasses import asdict

    merged = outcome.merged
    shards = []
    # outcome.shards and outcome.sync_stats are both ordered by shard id (the
    # merge sorts reports), so zipping keeps labels right even when shard ids
    # are not contiguous; positional ids are only a fallback for outcomes
    # without sync stats.
    sync_stats = list(getattr(outcome, "sync_stats", []))
    for position, shard in enumerate(outcome.shards):
        stats = sync_stats[position] if position < len(sync_stats) else None
        shards.append(
            {
                "shard_id": stats.shard_id if stats else position,
                "tool": shard.tool,
                "dbms": shard.dbms,
                "dataset": shard.dataset,
                "final": asdict(shard.final),
                "bug_keys": _bug_keys(shard),
                "entries_shipped":
                    stats.entries_shipped if stats else 0,
                "broadcast_entries_received":
                    stats.broadcast_entries_received if stats else 0,
                "broadcast_entries_suppressed":
                    stats.broadcast_entries_suppressed if stats else 0,
                # The shard's per-hour budget series: the adaptive policy's
                # decisions hour by hour (a flat line under the even policy).
                "hourly_budgets":
                    list(stats.hourly_budgets) if stats else [],
            }
        )
    summary = {
        "workers": outcome.workers,
        "sync_rounds": outcome.sync_rounds,
        "budget_policy": getattr(outcome, "budget_policy", "even"),
        "central_index_size": outcome.central_index_size,
        "central_distinct_labels": outcome.central_distinct_labels,
        "broadcast_entries_sent": getattr(outcome, "broadcast_entries_sent", 0),
        "broadcast_entries_suppressed":
            getattr(outcome, "broadcast_entries_suppressed", 0),
        "merged": {
            "tool": merged.tool,
            "dbms": merged.dbms,
            "dataset": merged.dataset,
            "samples": [asdict(sample) for sample in merged.samples],
            "bug_keys": _bug_keys(merged),
        },
        "shards": shards,
    }
    incidents = []
    if merged.bug_log is not None:
        incidents = [asdict(incident) for incident in merged.bug_log.incidents]
    # Telemetry is wall-clock-dependent, so it lives OUTSIDE the summary block:
    # verify-local compares summaries only and stays transport-independent.
    telemetry = getattr(outcome, "telemetry", None)
    telemetry_block = None
    if telemetry is not None:
        from repro import obs

        snapshot = obs.MetricsSnapshot.from_dict(telemetry)
        telemetry_block = {
            "snapshot": telemetry,
            "phases": [
                {"phase": phase, "seconds": seconds, "count": count}
                for phase, seconds, count in obs.phase_breakdown(snapshot)
            ],
            "execute_errors": obs.error_breakdown(snapshot),
        }
    return {
        "campaign": campaign,
        "transport": getattr(outcome, "transport", "local"),
        "elapsed_seconds": outcome.elapsed_seconds,
        "summary": summary,
        "incidents": incidents,
        "telemetry": telemetry_block,
    }


def write_parallel_result_json(outcome, path: str,
                               campaign: Optional[Dict] = None) -> None:
    """Write :func:`parallel_result_to_dict` to *path* as pretty JSON."""
    import json

    payload = parallel_result_to_dict(outcome, campaign=campaign)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_differential_summary(result: CampaignResult,
                                max_incidents: int = 3) -> str:
    """Summary of one cross-engine differential campaign.

    Unlike the simulated campaigns, a real backend cannot announce root-cause
    fault ids, so this report leads with the raw mismatch evidence: per-hour
    totals plus the first few offending SQL statements.
    """
    final = result.final
    rows = [
        ["backend", result.dbms],
        ["dataset", result.dataset],
        ["hours", final.hour],
        ["queries generated", final.queries_generated],
        ["comparisons", final.queries_executed],
        ["isomorphic sets", final.isomorphic_sets],
        ["mismatches (bugs)", final.bug_count],
    ]
    text = render_table(["Metric", "Value"], rows,
                        title=f"Differential campaign: {result.tool} vs {result.dbms}")
    if result.bug_log is None or not result.bug_log.incidents:
        return text + "\n(no mismatches: backend agrees with the reference executor)"
    lines = [text, ""]
    for incident in result.bug_log.incidents[:max_incidents]:
        lines.append(
            f"mismatch ({incident.expected_rows} reference rows vs "
            f"{incident.observed_rows} backend rows):"
        )
        lines.append(incident.query_sql)
        lines.append("")
    remaining = len(result.bug_log.incidents) - max_incidents
    if remaining > 0:
        lines.append(f"... ({remaining} more incidents)")
    return "\n".join(lines).rstrip()
