"""Analysis helpers: metric series and table/figure renderers."""

from repro.analysis.metrics import (
    SeriesComparison,
    compare_final,
    growth_is_monotonic,
    linearity_score,
    saturation_hour,
)
from repro.analysis.reporting import (
    parallel_result_to_dict,
    render_ablation,
    render_bug_type_details,
    render_dbms_overview,
    render_detected_bugs,
    render_differential_summary,
    render_series,
    render_table,
    render_worker_pool,
    write_parallel_result_json,
)

__all__ = [
    "SeriesComparison",
    "compare_final",
    "growth_is_monotonic",
    "linearity_score",
    "parallel_result_to_dict",
    "render_ablation",
    "render_bug_type_details",
    "render_dbms_overview",
    "render_detected_bugs",
    "render_differential_summary",
    "render_series",
    "render_table",
    "render_worker_pool",
    "saturation_hour",
    "write_parallel_result_json",
]
