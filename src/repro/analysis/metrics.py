"""Metric helpers shared by benchmarks and examples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.core.campaign import CampaignResult


@dataclass(frozen=True)
class SeriesComparison:
    """Comparison of one metric between TQS and a baseline at the final hour."""

    metric: str
    tqs_value: int
    baseline_name: str
    baseline_value: int

    @property
    def ratio(self) -> float:
        """TQS value divided by the baseline value (inf-free)."""
        if self.baseline_value == 0:
            return float(self.tqs_value) if self.tqs_value else 1.0
        return self.tqs_value / self.baseline_value

    @property
    def tqs_wins(self) -> bool:
        """Whether TQS dominates the baseline on this metric."""
        return self.tqs_value >= self.baseline_value


def compare_final(metric: str, tqs: CampaignResult,
                  baselines: Mapping[str, CampaignResult]) -> List[SeriesComparison]:
    """Compare the final value of *metric* between TQS and each baseline."""
    comparisons = []
    tqs_value = getattr(tqs.final, metric)
    for name, result in baselines.items():
        comparisons.append(
            SeriesComparison(
                metric=metric,
                tqs_value=tqs_value,
                baseline_name=name,
                baseline_value=getattr(result.final, metric),
            )
        )
    return comparisons


def growth_is_monotonic(series: Sequence[int]) -> bool:
    """True when a cumulative series never decreases (sanity check for figures)."""
    return all(later >= earlier for earlier, later in zip(series, series[1:]))


def saturation_hour(series: Sequence[int]) -> Optional[int]:
    """First hour after which a cumulative series stops growing (Figure 9 shape)."""
    if not series:
        return None
    final = series[-1]
    for hour, value in enumerate(series, start=1):
        if value == final:
            return hour
    return len(series)


def linearity_score(series: Sequence[int]) -> float:
    """Pearson correlation of a series with time (1.0 = perfectly linear growth)."""
    n = len(series)
    if n < 2:
        return 1.0
    xs = list(range(1, n + 1))
    mean_x = sum(xs) / n
    mean_y = sum(series) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, series))
    var_x = sum((x - mean_x) ** 2 for x in xs) ** 0.5
    var_y = sum((y - mean_y) ** 2 for y in series) ** 0.5
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y)
