"""Contiguous matrix storage behind the KQE graph index.

The paper's HD-Index sits on the novelty-check hot path, so embedding storage
must support one-shot vectorized scoring instead of a Python loop over
per-entry arrays.  :class:`VectorStore` keeps all embeddings in a single
amortized-growth ``(capacity, dims)`` float64 matrix with cached row norms;
``top_k`` is then one matrix-vector product plus one partition.  A pure-Python
fallback (lists of floats) keeps the store importable and correct when numpy
is unavailable or disabled via ``REPRO_DISABLE_NUMPY=1`` — the same gating
idiom as :mod:`repro.engine.columnar`.  The two modes are each deterministic;
they are *different* deterministic implementations (float summation order
differs), mirroring the executor-backend stance.

:class:`EntryBatch` is the zero-copy view ``GraphIndex.entries_since`` hands
to the sync layer: it indexes straight into the store's matrix instead of
materializing ``list(zip(...))`` copies of every tail entry per round, and its
:meth:`EntryBatch.to_wire` quantizes embeddings through IEEE float32 exactly
once, at the ship boundary.  Every transport and wire protocol therefore
carries the same float32-representable float64 values: JSON round-trips them
exactly (``repr`` is shortest-round-trip), and the packed float32 codec
re-encodes them bit-identically — which is what keeps serial, pooled and TCP
campaigns on one determinism contract while the wire sheds bytes.
"""

from __future__ import annotations

import math
import os
import struct
from typing import Any, Iterator, List, Optional, Sequence, Tuple

#: Minimum row capacity allocated on first growth; doubling after that keeps
#: appends amortized O(dims).
_MIN_CAPACITY = 256


def resolve_numpy(use_numpy: Optional[bool] = None) -> Any:
    """The numpy module to use, or None for the pure-Python fallback.

    ``use_numpy=None`` consults ``REPRO_DISABLE_NUMPY`` (the executor
    backend's switch) and then tries the import; an explicit True/False wins
    over the environment.
    """
    if use_numpy is None:
        use_numpy = os.environ.get("REPRO_DISABLE_NUMPY", "") != "1"
    if not use_numpy:
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a package dependency
        return None
    return numpy


def quantize_to_float32(values: Sequence[float]) -> List[float]:
    """Round-trip *values* through IEEE-754 float32 (little-endian).

    This is the sync layer's ship-boundary quantization: applied once when a
    batch leaves a worker, so the packed float32 wire codec is lossless for
    everything it is ever asked to carry.
    """
    count = len(values)
    packed = struct.pack(f"<{count}f", *values)
    return list(struct.unpack(f"<{count}f", packed))


class VectorStore:
    """Append-only embedding matrix with cached norms and vectorized top-k.

    Rows are stored zero-padded to the store's current column count; the
    column count widens lazily when a longer vector arrives (zero padding
    never changes a cosine).  Queries of any length are accepted: components
    beyond the store's width cannot match any stored mass, and the query's
    *full* norm is used, so truncation is mathematically exact.
    """

    def __init__(self, dims: int = 0, use_numpy: Optional[bool] = None) -> None:
        self._np = resolve_numpy(use_numpy)
        self._dims = int(dims)
        self._count = 0
        if self._np is not None:
            self._matrix = self._np.zeros((0, self._dims), dtype=self._np.float64)
            self._norms = self._np.zeros(0, dtype=self._np.float64)
        else:
            self._rows: List[List[float]] = []
            self._norm_list: List[float] = []

    @property
    def uses_numpy(self) -> bool:
        return self._np is not None

    @property
    def dims(self) -> int:
        return self._dims

    def __len__(self) -> int:
        return self._count

    # --------------------------------------------------------------- growth

    def _ensure_capacity(self, rows: int) -> None:
        np = self._np
        capacity = self._matrix.shape[0]
        if rows <= capacity:
            return
        new_capacity = max(_MIN_CAPACITY, capacity * 2, rows)
        matrix = np.zeros((new_capacity, self._dims), dtype=np.float64)
        matrix[: self._count] = self._matrix[: self._count]
        self._matrix = matrix
        norms = np.zeros(new_capacity, dtype=np.float64)
        norms[: self._count] = self._norms[: self._count]
        self._norms = norms

    def _widen(self, dims: int) -> None:
        if dims <= self._dims:
            return
        if self._np is not None:
            np = self._np
            matrix = np.zeros((self._matrix.shape[0], dims), dtype=np.float64)
            matrix[:, : self._dims] = self._matrix
            self._matrix = matrix
        else:
            for row in self._rows:
                row.extend([0.0] * (dims - len(row)))
        self._dims = dims

    # -------------------------------------------------------------- insertion

    def append(self, vector: Sequence[float]) -> int:
        """Insert one vector (padded/widened as needed); returns its row index."""
        index = self._count
        if self._np is not None:
            np = self._np
            values = np.asarray(vector, dtype=np.float64).reshape(-1)
            if values.shape[0] > self._dims:
                self._widen(values.shape[0])
            self._ensure_capacity(index + 1)
            row = self._matrix[index]
            row[: values.shape[0]] = values
            self._norms[index] = float(np.linalg.norm(values))
        else:
            values_list = [float(component) for component in vector]
            if len(values_list) > self._dims:
                self._widen(len(values_list))
            elif len(values_list) < self._dims:
                values_list.extend([0.0] * (self._dims - len(values_list)))
            self._rows.append(values_list)
            self._norm_list.append(
                math.sqrt(sum(component * component for component in values_list))
            )
        self._count = index + 1
        return index

    # ----------------------------------------------------------------- access

    def row(self, index: int) -> Sequence[float]:
        """The stored (zero-padded) vector at *index*; a view in numpy mode."""
        if not 0 <= index < self._count:
            raise IndexError(f"row {index} out of range (size {self._count})")
        if self._np is not None:
            return self._matrix[index]
        return self._rows[index]

    def rows_between(self, start: int, stop: int) -> Any:
        """Rows ``start:stop`` — a zero-copy matrix view in numpy mode."""
        stop = min(stop, self._count)
        if self._np is not None:
            return self._matrix[start:stop]
        return self._rows[start:stop]

    # ----------------------------------------------------------------- search

    def top_k(
        self,
        vector: Sequence[float],
        k: int,
        candidates: Optional[Sequence[int]] = None,
    ) -> List[Tuple[int, float]]:
        """The *k* most cosine-similar rows as (index, similarity) pairs.

        Restricted to *candidates* when given (an ANN prefilter's output).
        Ties break toward the lower row index, matching the stable descending
        sort the pre-vectorized index used — determinism-critical, because
        KQE coverage feeds generation probabilities.
        """
        if self._count == 0 or k <= 0:
            return []
        if candidates is not None and len(candidates) == 0:
            return []
        if self._np is not None:
            return self._top_k_numpy(vector, k, candidates)
        return self._top_k_python(vector, k, candidates)

    def _top_k_numpy(
        self, vector: Sequence[float], k: int, candidates: Optional[Sequence[int]]
    ) -> List[Tuple[int, float]]:
        np = self._np
        query = np.asarray(vector, dtype=np.float64).reshape(-1)
        # Full-length norm, truncated product: components past the store's
        # width meet only implicit zeros, so the cosine is exact either way.
        query_norm = float(np.linalg.norm(query))
        query = query[: self._dims]
        if query.shape[0] < self._dims:
            query = np.concatenate(
                [query, np.zeros(self._dims - query.shape[0], dtype=np.float64)]
            )
        if candidates is None:
            rows = self._matrix[: self._count]
            norms = self._norms[: self._count]
            ids = None
        else:
            ids = np.asarray(candidates, dtype=np.intp)
            rows = self._matrix[ids]
            norms = self._norms[ids]
        scores = rows @ query
        denominator = norms * query_norm
        positive = denominator > 0.0
        scores = np.where(positive, scores / np.where(positive, denominator, 1.0), 0.0)
        total = scores.shape[0]
        limit = min(k, total)
        if total > limit:
            kth = np.partition(scores, total - limit)[total - limit]
            keep = np.nonzero(scores >= kth)[0]
        else:
            keep = np.arange(total)
        scored = [
            (int(position if ids is None else ids[position]), float(scores[position]))
            for position in keep
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:limit]

    def _top_k_python(
        self, vector: Sequence[float], k: int, candidates: Optional[Sequence[int]]
    ) -> List[Tuple[int, float]]:
        query = [float(component) for component in vector]
        query_norm = math.sqrt(sum(component * component for component in query))
        indices: Sequence[int]
        if candidates is None:
            indices = range(self._count)
        else:
            indices = candidates
        scored: List[Tuple[int, float]] = []
        for index in indices:
            denominator = self._norm_list[index] * query_norm
            if denominator <= 0.0:
                scored.append((index, 0.0))
                continue
            row = self._rows[index]
            # zip stops at the shorter operand — exactly the zero-pad product.
            dot = sum(a * b for a, b in zip(query, row))
            scored.append((index, dot / denominator))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:k]


def _vector_as_list(vector: Sequence[float]) -> List[float]:
    return [float(component) for component in vector]


class EntryBatch:
    """A read-only view of one contiguous (embedding, label) range of a store.

    Behaves like the list of pairs it replaces — ``len``, iteration, indexing
    and ``==`` against plain pair lists all hold — but rows stay in the
    store's matrix until someone actually reads them.  The range is pinned at
    construction, so the view is stable even while the index keeps growing.
    """

    def __init__(self, store: VectorStore, labels: Sequence[str], start: int) -> None:
        self._store = store
        self._labels = list(labels)
        self._start = start

    def __len__(self) -> int:
        return len(self._labels)

    @property
    def labels(self) -> List[str]:
        return list(self._labels)

    @property
    def vectors(self) -> Any:
        """The batch's rows; a zero-copy matrix view in numpy mode."""
        return self._store.rows_between(self._start, self._start + len(self._labels))

    def __iter__(self) -> Iterator[Tuple[Sequence[float], str]]:
        for offset, label in enumerate(self._labels):
            yield self._store.row(self._start + offset), label

    def __getitem__(self, position: int) -> Tuple[Sequence[float], str]:
        if position < 0:
            position += len(self._labels)
        if not 0 <= position < len(self._labels):
            raise IndexError(f"batch index {position} out of range")
        return self._store.row(self._start + position), self._labels[position]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EntryBatch):
            other = list(other)
        if not isinstance(other, (list, tuple)):
            return NotImplemented
        if len(other) != len(self):
            return False
        for (vector, label), pair in zip(self, other):
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                return False
            if label != pair[1]:
                return False
            if _vector_as_list(vector) != _vector_as_list(pair[0]):
                return False
        return True

    def to_wire(self) -> List[Tuple[List[float], str]]:
        """The batch as (plain-list vector, label) pairs, float32-quantized.

        This is the one quantization point of the sync protocol: every
        transport ships these values, so the packed float32 codec round-trips
        them exactly and JSON campaigns see the very same numbers.
        """
        store = self._store
        count = len(self._labels)
        if store.uses_numpy and count:
            np = store._np
            matrix = store.rows_between(self._start, self._start + count)
            quantized = np.asarray(
                np.asarray(matrix, dtype=np.float32), dtype=np.float64
            ).tolist()
        else:
            quantized = [
                quantize_to_float32(_vector_as_list(vector))
                for vector, _ in self
            ]
        return list(zip(quantized, self._labels))
