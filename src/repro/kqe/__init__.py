"""KQE: Knowledge-guided Query space Exploration (paper §4)."""

from repro.kqe.embedding import GraphEmbedder, cosine_similarity
from repro.kqe.explorer import KQE, KQEConfig, alias_sample
from repro.kqe.graph_index import GraphIndex
from repro.kqe.isomorphism import (
    IsomorphicSetCounter,
    are_isomorphic,
    is_subgraph_isomorphic,
)
from repro.kqe.query_graph import QueryGraph, QueryGraphBuilder

__all__ = [
    "GraphEmbedder",
    "GraphIndex",
    "IsomorphicSetCounter",
    "KQE",
    "KQEConfig",
    "QueryGraph",
    "QueryGraphBuilder",
    "alias_sample",
    "are_isomorphic",
    "cosine_similarity",
    "is_subgraph_isomorphic",
]
