"""KQE: Knowledge-guided Query space Exploration (paper §4)."""

from repro.kqe.embedding import GraphEmbedder, cosine_similarity
from repro.kqe.explorer import KQE, KQEConfig, alias_sample
from repro.kqe.graph_index import GraphIndex, lsh_seed_material
from repro.kqe.isomorphism import (
    IsomorphicSetCounter,
    are_isomorphic,
    is_subgraph_isomorphic,
)
from repro.kqe.lsh import SignRandomProjectionLSH
from repro.kqe.query_graph import QueryGraph, QueryGraphBuilder
from repro.kqe.snapshot import SnapshotBatch, SnapshotWriter, read_snapshot
from repro.kqe.store import EntryBatch, VectorStore, quantize_to_float32

__all__ = [
    "EntryBatch",
    "GraphEmbedder",
    "GraphIndex",
    "IsomorphicSetCounter",
    "KQE",
    "KQEConfig",
    "QueryGraph",
    "QueryGraphBuilder",
    "SignRandomProjectionLSH",
    "SnapshotBatch",
    "SnapshotWriter",
    "VectorStore",
    "alias_sample",
    "are_isomorphic",
    "cosine_similarity",
    "is_subgraph_isomorphic",
    "lsh_seed_material",
    "quantize_to_float32",
    "read_snapshot",
]
