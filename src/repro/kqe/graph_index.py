"""The embedding-based graph index GI (paper §4).

The paper uses HD-Index for approximate KNN search over query-graph embeddings.
With the modest index sizes of a testing campaign (tens of thousands of vectors)
an exact cosine KNN over a normalized matrix is fast, deterministic and plays the
same role; a coarse bucket index over the dominant embedding dimension prunes the
candidate set the way HD-Index's Hilbert-ordered B+-trees do.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kqe.embedding import GraphEmbedder, cosine_similarity
from repro.kqe.query_graph import QueryGraph


class GraphIndex:
    """Approximate-KNN index over query-graph embeddings."""

    def __init__(self, embedder: Optional[GraphEmbedder] = None,
                 bucket_count: int = 16) -> None:
        self.embedder = embedder or GraphEmbedder()
        self.bucket_count = bucket_count
        self._vectors: List[np.ndarray] = []
        self._canonical_labels: List[str] = []
        # Persistent multiset of canonical labels: membership checks and the
        # distinct-label count sit on the campaign hot path (once per generated
        # query), so they must not rebuild set(self._canonical_labels) — that
        # turns a campaign into O(n^2) over the index size.
        self._label_counts: Counter = Counter()
        self._buckets: Dict[int, List[int]] = {}

    def __len__(self) -> int:
        return len(self._vectors)

    # --------------------------------------------------------------- insertion

    def _bucket_of(self, vector: np.ndarray) -> int:
        if vector.size == 0 or not np.any(vector):
            return 0
        return int(np.argmax(vector)) % self.bucket_count

    def add(self, graph: QueryGraph) -> np.ndarray:
        """Insert a query graph; returns its embedding."""
        vector = self.embedder.embed(graph)
        index = len(self._vectors)
        self._vectors.append(vector)
        label = graph.canonical_label()
        self._canonical_labels.append(label)
        self._label_counts[label] += 1
        self._buckets.setdefault(self._bucket_of(vector), []).append(index)
        return vector

    def add_embedding(self, vector: np.ndarray, canonical_label: str = "") -> None:
        """Insert a pre-computed embedding (used by the parallel-search driver)."""
        index = len(self._vectors)
        self._vectors.append(np.asarray(vector, dtype=np.float64))
        self._canonical_labels.append(canonical_label)
        self._label_counts[canonical_label] += 1
        self._buckets.setdefault(self._bucket_of(self._vectors[-1]), []).append(index)

    def entries_since(self, start: int) -> List[Tuple[np.ndarray, str]]:
        """The (embedding, canonical label) pairs inserted at position >= *start*.

        The parallel campaign runner uses this to ship each worker's newly
        explored query graphs to the coordinator between synchronization rounds.
        """
        return list(zip(self._vectors[start:], self._canonical_labels[start:]))

    # ------------------------------------------------------------------ search

    def _candidates(self, vector: np.ndarray, approximate: bool) -> Sequence[int]:
        if not approximate or len(self._vectors) <= 64:
            return range(len(self._vectors))
        bucket = self._bucket_of(vector)
        candidates = list(self._buckets.get(bucket, ()))
        # Include neighbouring buckets so the pruning stays conservative.
        for offset in (-1, 1):
            candidates.extend(self._buckets.get((bucket + offset) % self.bucket_count, ()))
        return candidates or range(len(self._vectors))

    def nearest(self, graph: QueryGraph, k: int = 5,
                approximate: bool = True) -> List[Tuple[int, float]]:
        """K nearest neighbours of *graph* as (index, cosine similarity) pairs."""
        vector = self.embedder.embed(graph)
        return self.nearest_by_vector(vector, k=k, approximate=approximate)

    def nearest_by_vector(self, vector: np.ndarray, k: int = 5,
                          approximate: bool = True) -> List[Tuple[int, float]]:
        """K nearest neighbours of an embedding vector."""
        if not self._vectors:
            return []
        candidates = self._candidates(vector, approximate)
        scored = [
            (index, cosine_similarity(vector, self._vectors[index]))
            for index in candidates
        ]
        scored.sort(key=lambda item: item[1], reverse=True)
        return scored[:k]

    # -------------------------------------------------------------- statistics

    def distinct_canonical_labels(self) -> int:
        """Number of distinct isomorphism classes inserted so far."""
        return len(self._label_counts)

    def contains_isomorphic(self, graph: QueryGraph) -> bool:
        """True when an isomorphic graph (same canonical label) was already added."""
        return graph.canonical_label() in self._label_counts

    def contains_label(self, canonical_label: str) -> bool:
        """Membership check by pre-computed canonical label."""
        return canonical_label in self._label_counts
