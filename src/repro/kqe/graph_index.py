"""The embedding-based graph index GI (paper §4).

The paper uses HD-Index for approximate KNN search over query-graph
embeddings.  This index plays that role deterministically and at scale:
embeddings live in one contiguous float64 matrix (:mod:`repro.kqe.store`),
so exact KNN is a single vectorized matrix-vector cosine, and a
sign-random-projection LSH (:mod:`repro.kqe.lsh`, seeded from the embedder
configuration) prefilters ``nearest(approximate=True)`` to a bounded
candidate set once the index outgrows brute force — the Hilbert-ordered
pruning of HD-Index, done with hash tables.

The whole index round-trips through the checksummed snapshot log of
:mod:`repro.kqe.snapshot` (``save_snapshot``/``load_snapshot``), which is
what lets the distributed server restart into a bit-identical state.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import SnapshotError
from repro.kqe.embedding import GraphEmbedder
from repro.kqe.lsh import SignRandomProjectionLSH
from repro.kqe.query_graph import QueryGraph
from repro.kqe.store import EntryBatch, VectorStore

#: Below this size an exact scan beats any prefilter; it is also the regime
#: every unit test and short campaign lives in, so approximate == exact there.
DEFAULT_LSH_MIN_SIZE = 4096


def lsh_seed_material(embedder: GraphEmbedder) -> str:
    """The LSH hyperplane seed: a pure function of the embedder config.

    Every worker holding the same embedder configuration derives the same
    tables, so LSH candidate sets (and therefore approximate-KNN results)
    agree across processes, restarts and snapshot replays.
    """
    return f"kqe-lsh:v1:{embedder.dimensions}:{embedder.iterations}"


class GraphIndex:
    """Approximate-KNN index over query-graph embeddings."""

    def __init__(
        self,
        embedder: Optional[GraphEmbedder] = None,
        lsh_tables: int = 8,
        lsh_bits: int = 12,
        lsh_min_size: int = DEFAULT_LSH_MIN_SIZE,
        use_numpy: Optional[bool] = None,
    ) -> None:
        self.embedder = embedder or GraphEmbedder()
        self.lsh_min_size = lsh_min_size
        self._store = VectorStore(dims=self.embedder.dimensions, use_numpy=use_numpy)
        self._canonical_labels: List[str] = []
        # Persistent multiset of canonical labels: membership checks and the
        # distinct-label count sit on the campaign hot path (once per generated
        # query), so they must not rebuild set(self._canonical_labels) — that
        # turns a campaign into O(n^2) over the index size.
        self._label_counts: Counter = Counter()
        # The LSH prefilter only pays off with vectorized scoring behind it;
        # the pure-Python fallback scans exactly (still deterministic).
        self._lsh: Optional[SignRandomProjectionLSH] = None
        if self._store.uses_numpy:
            self._lsh = SignRandomProjectionLSH(
                dims=self.embedder.dimensions,
                tables=lsh_tables,
                bits=lsh_bits,
                seed_material=lsh_seed_material(self.embedder),
                use_numpy=True,
            )

    def __len__(self) -> int:
        return len(self._store)

    # --------------------------------------------------------------- insertion

    def add(self, graph: QueryGraph) -> Any:
        """Insert a query graph; returns its embedding."""
        vector = self.embedder.embed(graph)
        self.add_embedding(vector, graph.canonical_label())
        return vector

    def add_embedding(self, vector: Sequence[float], canonical_label: str = "") -> None:
        """Insert a pre-computed embedding (used by the parallel-search driver)."""
        index = self._store.append(vector)
        self._canonical_labels.append(canonical_label)
        self._label_counts[canonical_label] += 1
        if self._lsh is not None:
            self._lsh.insert(index, vector)

    def entries_since(self, start: int) -> EntryBatch:
        """The (embedding, canonical label) pairs inserted at position >= *start*.

        The parallel campaign runner uses this to ship each worker's newly
        explored query graphs to the coordinator between synchronization
        rounds.  Returned as an :class:`~repro.kqe.store.EntryBatch` view into
        the store's matrix — list-compatible, but nothing is copied until the
        batch is actually read (or shipped via ``to_wire()``).
        """
        return EntryBatch(self._store, self._canonical_labels[start:], start)

    # ------------------------------------------------------------------ search

    def nearest(
        self, graph: QueryGraph, k: int = 5, approximate: bool = True
    ) -> List[Tuple[int, float]]:
        """K nearest neighbours of *graph* as (index, cosine similarity) pairs."""
        vector = self.embedder.embed(graph)
        return self.nearest_by_vector(vector, k=k, approximate=approximate)

    def nearest_by_vector(
        self, vector: Sequence[float], k: int = 5, approximate: bool = True
    ) -> List[Tuple[int, float]]:
        """K nearest neighbours of an embedding vector."""
        if len(self._store) == 0:
            return []
        counters = obs.get_registry()
        candidates: Optional[Sequence[int]] = None
        if (
            approximate
            and self._lsh is not None
            and len(self._store) > self.lsh_min_size
        ):
            candidates = self._lsh.candidates(vector)
            if (
                len(candidates) < max(k, 16)
                or len(candidates) * 4 >= len(self._store)
            ):
                # Too few collisions to trust the prefilter — or so many that
                # gathering the candidate rows costs more than scanning them
                # all; either way the exact scan is the better answer.
                candidates = None
            else:
                counters.counter("index.knn.lsh_queries").inc()
                counters.counter("index.knn.lsh_candidates").inc(len(candidates))
        if candidates is None:
            counters.counter("index.knn.exact_queries").inc()
        return self._store.top_k(vector, k, candidates)

    # -------------------------------------------------------------- statistics

    def distinct_canonical_labels(self) -> int:
        """Number of distinct isomorphism classes inserted so far."""
        return len(self._label_counts)

    def contains_isomorphic(self, graph: QueryGraph) -> bool:
        """True when an isomorphic graph (same canonical label) was already added."""
        return graph.canonical_label() in self._label_counts

    def contains_label(self, canonical_label: str) -> bool:
        """Membership check by pre-computed canonical label."""
        return canonical_label in self._label_counts

    # ------------------------------------------------------------- persistence

    def save_snapshot(self, path: str) -> None:
        """Write the whole index to *path* as one checksummed snapshot batch."""
        from repro.kqe import snapshot as snapshot_log

        with obs.span("index.snapshot.save"):
            writer = snapshot_log.SnapshotWriter.create(path, self.snapshot_header())
            try:
                count = len(self._store)
                vectors = [
                    [float(component) for component in self._store.row(position)]
                    for position in range(count)
                ]
                writer.append(
                    vectors, list(self._canonical_labels), {"count": count}
                )
            finally:
                writer.close()

    def snapshot_header(self) -> dict:
        return {
            "kind": "kqe-graph-index",
            "version": 1,
            "embedder": {
                "dimensions": self.embedder.dimensions,
                "iterations": self.embedder.iterations,
            },
        }

    @classmethod
    def load_snapshot(
        cls, path: str, embedder: Optional[GraphEmbedder] = None, **kwargs: Any
    ) -> "GraphIndex":
        """Rebuild an index from a snapshot written by :meth:`save_snapshot`.

        Replays insertions in their logged order, so the restored index is
        bit-identical to the one that was saved (including LSH tables, which
        are a pure function of embedder config + insertion order).
        """
        from repro.kqe import snapshot as snapshot_log

        with obs.span("index.snapshot.restore"):
            header, batches, _ = snapshot_log.read_snapshot(path)
            if header.get("kind") != "kqe-graph-index":
                raise SnapshotError(
                    f"{path!r} holds a {header.get('kind')!r} snapshot, "
                    "not a kqe-graph-index"
                )
            config = header.get("embedder") or {}
            if embedder is None:
                embedder = GraphEmbedder(
                    dimensions=int(config.get("dimensions", 64)),
                    iterations=int(config.get("iterations", 2)),
                )
            index = cls(embedder=embedder, **kwargs)
            for batch in batches:
                for vector, label in zip(batch.vectors, batch.labels):
                    index.add_embedding(vector, label)
            return index
