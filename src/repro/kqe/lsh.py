"""Deterministic sign-random-projection LSH over KQE embeddings.

The paper reaches sublinear KNN with HD-Index; this module plays that role
with the repo's determinism constraints: hyperplanes are derived from a
counter-mode ``blake2b`` stream keyed by the embedder configuration — no
ambient RNG, no process-dependent state — so every worker, every restart and
every replay builds byte-identical tables (DET001-clean by construction).

Each of ``tables`` hash tables assigns a vector a ``bits``-bit key: bit *b*
is the sign of the projection onto hyperplane ``(table, b)``.  Cosine-close
vectors agree on most signs, so they collide in at least one table with high
probability.  Lookup unions the query's bucket in every table plus all
Hamming-distance-1 probes (multi-probe LSH), and returns the candidate row
indices sorted — a deterministic, bounded candidate set at any index size.

KQE embeddings are non-negative (hashed substructure counts), which breaks
textbook sign projections: every vector leans along the all-ones diagonal, so
hyperplanes whose components happen to sum away from zero assign the *same*
sign to everything and the effective key entropy collapses.  Each vector is
therefore mean-centered (its component mean subtracted) before projecting — a
per-vector, order-independent transform, so keys stay stable across inserts,
restarts and replays — which removes the shared diagonal component and makes
the signs discriminate between directions again.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Sequence

from repro.kqe.store import resolve_numpy

_DIGEST_BYTES = 64  # blake2b's maximum; 8 hyperplane components per block.


def hyperplane_stream(seed_material: str, count: int) -> List[float]:
    """*count* floats in [-1.0, 1.0), deterministically from *seed_material*.

    Counter-mode hashing: block *i* contributes the 8 big-endian u64 words of
    ``blake2b(f"{seed_material}:{i}")``, each mapped affinely onto [-1, 1).
    Seeding through ``hashlib`` keeps the closure inside the determinism
    lint's sanctioned namespace.
    """
    values: List[float] = []
    block = 0
    while len(values) < count:
        digest = hashlib.blake2b(
            f"{seed_material}:{block}".encode("utf-8"), digest_size=_DIGEST_BYTES
        ).digest()
        for offset in range(0, _DIGEST_BYTES, 8):
            word = int.from_bytes(digest[offset : offset + 8], "big")
            values.append(word / float(1 << 63) - 1.0)
        block += 1
    del values[count:]
    return values


class SignRandomProjectionLSH:
    """Multi-table sign-random-projection index over row ids.

    Callers insert row indices in increasing order (the graph index's
    append-only ids), which keeps every bucket's list sorted without ever
    sorting — candidate-set construction then only needs one final
    ``sorted()`` over the union.
    """

    def __init__(
        self,
        dims: int,
        tables: int = 8,
        bits: int = 12,
        seed_material: str = "kqe-lsh",
        probe_radius: int = 1,
        use_numpy: Optional[bool] = None,
    ) -> None:
        if dims <= 0:
            raise ValueError("LSH dimensionality must be positive")
        if tables <= 0 or not 0 < bits <= 30:
            raise ValueError("LSH needs tables >= 1 and 1 <= bits <= 30")
        self.dims = dims
        self.tables = tables
        self.bits = bits
        self.probe_radius = probe_radius
        self.seed_material = seed_material
        self._np = resolve_numpy(use_numpy)
        planes = hyperplane_stream(seed_material, tables * bits * dims)
        if self._np is not None:
            np = self._np
            # (tables*bits, dims), so projecting is one matrix product.
            self._planes = np.array(planes, dtype=np.float64).reshape(
                tables * bits, dims
            )
            self._powers = (1 << np.arange(bits, dtype=np.int64)).astype(np.int64)
        else:
            self._plane_rows = [
                planes[row * dims : (row + 1) * dims] for row in range(tables * bits)
            ]
        self._buckets: List[Dict[int, List[int]]] = [{} for _ in range(tables)]
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------ projection

    def _conform(self, vector: Sequence[float]) -> List[float]:
        """Pad/truncate to ``dims`` and mean-center (see the module docstring)."""
        values = [float(component) for component in vector]
        if len(values) > self.dims:
            del values[self.dims :]
        elif len(values) < self.dims:
            values.extend([0.0] * (self.dims - len(values)))
        mean = sum(values) / self.dims
        return [component - mean for component in values]

    def keys(self, vector: Sequence[float]) -> List[int]:
        """The vector's bucket key in every table."""
        values = self._conform(vector)
        if self._np is not None:
            np = self._np
            projection = self._planes @ np.asarray(values, dtype=np.float64)
            signs = projection > 0.0
            return [
                int(signs[table * self.bits : (table + 1) * self.bits] @ self._powers)
                for table in range(self.tables)
            ]
        keys: List[int] = []
        for table in range(self.tables):
            key = 0
            for bit in range(self.bits):
                row = self._plane_rows[table * self.bits + bit]
                dot = sum(a * b for a, b in zip(row, values))
                if dot > 0.0:
                    key |= 1 << bit
            keys.append(key)
        return keys

    def _keys_matrix(self, matrix: Any) -> Any:
        """Bucket keys for every row of an (n, dims) matrix (numpy mode only)."""
        np = self._np
        rows = np.asarray(matrix, dtype=np.float64)
        rows = rows - rows.mean(axis=1, keepdims=True)
        projection = rows @ self._planes.T
        signs = projection > 0.0
        keys = np.zeros((signs.shape[0], self.tables), dtype=np.int64)
        for table in range(self.tables):
            block = signs[:, table * self.bits : (table + 1) * self.bits]
            keys[:, table] = block @ self._powers
        return keys

    # ------------------------------------------------------------- insertion

    def insert(self, index: int, vector: Sequence[float]) -> None:
        """Index one row id under its bucket key in every table."""
        for table, key in enumerate(self.keys(vector)):
            self._buckets[table].setdefault(key, []).append(index)
        self._size += 1

    def insert_matrix(self, start_index: int, matrix: Any) -> None:
        """Bulk insert rows ``start_index..`` of an (n, dims) matrix.

        Numpy mode only — one projection product for the whole batch; used by
        snapshot restore and benchmark seeding.
        """
        keys = self._keys_matrix(matrix)
        for offset in range(keys.shape[0]):
            row_keys = keys[offset]
            for table in range(self.tables):
                self._buckets[table].setdefault(int(row_keys[table]), []).append(
                    start_index + offset
                )
        self._size += int(keys.shape[0])

    # ---------------------------------------------------------------- lookup

    def candidates(self, vector: Sequence[float]) -> List[int]:
        """Sorted union of the query's buckets across tables and probes."""
        found: set = set()
        for table, key in enumerate(self.keys(vector)):
            buckets = self._buckets[table]
            hit = buckets.get(key)
            if hit:
                found.update(hit)
            if self.probe_radius >= 1:
                for bit in range(self.bits):
                    hit = buckets.get(key ^ (1 << bit))
                    if hit:
                        found.update(hit)
        return sorted(found)
