"""Append-only, checksummed snapshot log for KQE index state.

A snapshot file is a header followed by zero or more records, each holding
one batch of (embedding, label) pairs plus a small JSON meta object (the
distributed server stores one record per completed sync round; the in-memory
index stores a single record).  Everything is length-prefixed, checksummed
and JSON/binary — **no pickle anywhere** (SEC001), so restoring a snapshot
from an untrusted disk can fail loudly but never execute anything.

Layout (all integers little-endian u32)::

    MAGIC(8) | header_len | header_json | sha256(header_json)
    repeat:  record_len | sha256(payload) | payload

    payload: meta_len | meta_json | count | dims
             | count*dims float64 (little-endian) | labels_len | labels_json

Crash tolerance is structural: records are appended with flush+fsync, so a
crash can only tear the *final* record.  :func:`read_snapshot` detects a torn
or checksum-corrupt tail, drops it, and reports ``truncated=True`` — the
server then simply re-runs that round live, which the determinism contract
guarantees reproduces the dropped bytes.  A corrupt header (or any corruption
before the tail) raises :class:`~repro.errors.SnapshotError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Any, BinaryIO, Dict, List, Optional, Sequence, Tuple

from repro.errors import SnapshotError

MAGIC = b"TQSSNAP1"
_U32 = struct.Struct("<I")
_DIGEST_BYTES = hashlib.sha256().digest_size

#: A header or meta object bigger than this is corruption, not configuration.
MAX_HEADER_BYTES = 1 << 20
#: Bound every length prefix before allocating: even a 10^6-entry round of
#: 64-dim float64 embeddings is ~half a gigabyte.
MAX_RECORD_BYTES = 1 << 30
MAX_DIMS = 1 << 16


@dataclass
class SnapshotBatch:
    """One decoded record: a batch of embeddings, labels and its meta dict."""

    meta: Dict[str, Any]
    vectors: List[List[float]]
    labels: List[str] = field(default_factory=list)


def _checksum(payload: bytes) -> bytes:
    return hashlib.sha256(payload).digest()


def _encode_payload(
    vectors: Sequence[Sequence[float]],
    labels: Sequence[str],
    meta: Dict[str, Any],
) -> bytes:
    if len(vectors) != len(labels):
        raise SnapshotError(
            f"batch has {len(vectors)} vectors but {len(labels)} labels"
        )
    dims = len(vectors[0]) if vectors else 0
    flat: List[float] = []
    for vector in vectors:
        if len(vector) != dims:
            raise SnapshotError(
                f"ragged batch: expected {dims}-dim vectors, got {len(vector)}"
            )
        flat.extend(float(component) for component in vector)
    meta_json = json.dumps(meta, separators=(",", ":"), sort_keys=True).encode("utf-8")
    labels_json = json.dumps(
        list(labels), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    blob = struct.pack(f"<{len(flat)}d", *flat)
    return b"".join(
        (
            _U32.pack(len(meta_json)),
            meta_json,
            _U32.pack(len(vectors)),
            _U32.pack(dims),
            blob,
            _U32.pack(len(labels_json)),
            labels_json,
        )
    )


class _PayloadReader:
    """Cursor over one record payload; every read is bounds-checked."""

    def __init__(self, payload: bytes) -> None:
        self._payload = payload
        self._offset = 0

    def take(self, count: int, what: str) -> bytes:
        end = self._offset + count
        if end > len(self._payload):
            raise SnapshotError(f"record payload truncated while reading its {what}")
        data = self._payload[self._offset : end]
        self._offset = end
        return data

    def u32(self, what: str) -> int:
        return int(_U32.unpack(self.take(_U32.size, what))[0])

    def json_obj(self, limit: int, what: str) -> Any:
        length = self.u32(f"{what} length")
        if length > limit:
            raise SnapshotError(f"{what} length {length} exceeds {limit}")
        try:
            return json.loads(self.take(length, what).decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise SnapshotError(f"{what} is not valid JSON: {exc}") from exc


def _decode_payload(payload: bytes) -> SnapshotBatch:
    reader = _PayloadReader(payload)
    meta = reader.json_obj(MAX_HEADER_BYTES, "record meta")
    if not isinstance(meta, dict):
        raise SnapshotError("record meta must be a JSON object")
    count = reader.u32("vector count")
    dims = reader.u32("vector dims")
    if dims > MAX_DIMS:
        raise SnapshotError(f"vector dims {dims} exceeds {MAX_DIMS}")
    total = count * dims
    if total * 8 > MAX_RECORD_BYTES:
        raise SnapshotError(f"embedding blob of {total} floats exceeds the bound")
    blob = reader.take(total * 8, "embedding blob")
    flat = struct.unpack(f"<{total}d", blob)
    vectors = [list(flat[row * dims : (row + 1) * dims]) for row in range(count)]
    labels = reader.json_obj(MAX_RECORD_BYTES, "record labels")
    if not isinstance(labels, list) or len(labels) != count:
        raise SnapshotError(
            f"record labels must be a list of {count} strings, got {labels!r:.80}"
        )
    for label in labels:
        if not isinstance(label, str):
            raise SnapshotError("record labels must all be strings")
    return SnapshotBatch(meta=meta, vectors=vectors, labels=labels)


class SnapshotWriter:
    """Appends checksummed batches to a snapshot file, fsyncing each one."""

    def __init__(self, handle: BinaryIO, path: str) -> None:
        self._handle = handle
        self.path = path

    @classmethod
    def create(cls, path: str, header: Dict[str, Any]) -> "SnapshotWriter":
        """Start a new snapshot file (truncating any previous one)."""
        header_json = json.dumps(
            header, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        if len(header_json) > MAX_HEADER_BYTES:
            raise SnapshotError(f"snapshot header of {len(header_json)} bytes")
        handle = open(path, "wb")
        handle.write(
            MAGIC + _U32.pack(len(header_json)) + header_json + _checksum(header_json)
        )
        handle.flush()
        os.fsync(handle.fileno())
        return cls(handle, path)

    def append(
        self,
        vectors: Sequence[Sequence[float]],
        labels: Sequence[str],
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one batch; durable (flushed and fsynced) before returning."""
        payload = _encode_payload(vectors, labels, dict(meta or {}))
        if len(payload) > MAX_RECORD_BYTES:
            raise SnapshotError(f"snapshot record of {len(payload)} bytes")
        self._handle.write(_U32.pack(len(payload)) + _checksum(payload) + payload)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "SnapshotWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_header(path: str) -> Dict[str, Any]:
    """The snapshot's header object; raises :class:`SnapshotError` if corrupt."""
    header, _, _ = read_snapshot(path, header_only=True)
    return header


def read_snapshot(
    path: str, header_only: bool = False
) -> Tuple[Dict[str, Any], List[SnapshotBatch], bool]:
    """Decode a snapshot file into ``(header, batches, truncated)``.

    A torn or checksum-corrupt **final** record is dropped and reported via
    ``truncated=True`` (the crash-recovery case).  Corruption anywhere else —
    bad magic, bad header checksum, a mid-file record that fails its checksum
    with valid records after it would have been unreachable anyway because
    decoding stops at the first bad record — raises :class:`SnapshotError`.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    if len(data) < len(MAGIC) or data[: len(MAGIC)] != MAGIC:
        raise SnapshotError(
            f"{path!r} is not a snapshot file (bad magic "
            f"{data[: len(MAGIC)]!r})"
        )
    offset = len(MAGIC)
    if len(data) < offset + _U32.size:
        raise SnapshotError(f"{path!r}: truncated before the header length")
    (header_len,) = _U32.unpack(data[offset : offset + _U32.size])
    offset += _U32.size
    if header_len > MAX_HEADER_BYTES:
        raise SnapshotError(f"{path!r}: header length {header_len} is implausible")
    if len(data) < offset + header_len + _DIGEST_BYTES:
        raise SnapshotError(f"{path!r}: truncated inside the header")
    header_json = data[offset : offset + header_len]
    offset += header_len
    digest = data[offset : offset + _DIGEST_BYTES]
    offset += _DIGEST_BYTES
    if digest != _checksum(header_json):
        raise SnapshotError(f"{path!r}: header checksum mismatch")
    try:
        header = json.loads(header_json.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise SnapshotError(f"{path!r}: header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise SnapshotError(f"{path!r}: header must be a JSON object")
    if header_only:
        return header, [], False
    batches: List[SnapshotBatch] = []
    truncated = False
    while offset < len(data):
        remaining = len(data) - offset
        if remaining < _U32.size + _DIGEST_BYTES:
            truncated = True
            break
        (record_len,) = _U32.unpack(data[offset : offset + _U32.size])
        if record_len > MAX_RECORD_BYTES:
            # A hostile/corrupt length cannot be distinguished from a tear by
            # reading on, but it must never drive an allocation.
            truncated = True
            break
        body_start = offset + _U32.size + _DIGEST_BYTES
        if body_start + record_len > len(data):
            truncated = True
            break
        digest = data[offset + _U32.size : body_start]
        payload = data[body_start : body_start + record_len]
        if digest != _checksum(payload):
            truncated = True
            break
        # The checksum held, so a decode failure here is real corruption (or
        # a version skew), not a torn write — fail loudly.
        batches.append(_decode_payload(payload))
        offset = body_start + record_len
    return header, batches, truncated
