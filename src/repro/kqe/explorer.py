"""Knowledge-guided query space exploration (paper §4, Algorithm 2).

The :class:`KQE` object owns the graph index of already-explored query graphs and
provides the adaptive extension chooser that the DSG random-walk generator calls
at every step: candidate extensions are scored by the coverage of the extended
query graph (Eq. 2), converted to transition probabilities (Eq. 3), sampled with
alias sampling, and the walk terminates early when every candidate would land in
already well-covered territory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.catalog.schema import DatabaseSchema
from repro.dsg.query_gen import CandidateExtension
from repro.kqe.embedding import GraphEmbedder
from repro.kqe.graph_index import GraphIndex
from repro.kqe.isomorphism import IsomorphicSetCounter
from repro.kqe.query_graph import QueryGraph, QueryGraphBuilder
from repro.plan.logical import JoinStep, QuerySpec, TableRef


def alias_sample(weights: Sequence[float], rng: random.Random) -> int:
    """Draw an index proportionally to *weights* using Walker's alias method.

    Alias sampling gives O(1) draws after O(n) setup, which is why the paper uses
    it inside the random walk (the candidate sets here are small, but the method
    is implemented faithfully and tested for correctness).
    """
    n = len(weights)
    if n == 0:
        raise ValueError("cannot sample from an empty weight vector")
    total = float(sum(weights))
    if total <= 0:
        return rng.randrange(n)
    probabilities = [w * n / total for w in weights]
    small: List[int] = []
    large: List[int] = []
    for index, probability in enumerate(probabilities):
        (small if probability < 1.0 else large).append(index)
    prob_table = [0.0] * n
    alias_table = [0] * n
    while small and large:
        s = small.pop()
        g = large.pop()
        prob_table[s] = probabilities[s]
        alias_table[s] = g
        probabilities[g] = probabilities[g] - (1.0 - probabilities[s])
        (small if probabilities[g] < 1.0 else large).append(g)
    for index in large + small:
        prob_table[index] = 1.0
        alias_table[index] = index
    column = rng.randrange(n)
    return column if rng.random() < prob_table[column] else alias_table[column]


@dataclass
class KQEConfig:
    """Knobs of the knowledge-guided exploration."""

    k_neighbors: int = 5
    termination_probability: float = 0.10
    min_steps_before_termination: int = 2
    embedding_dimensions: int = 64


class KQE:
    """Knowledge-guided Query space Exploration."""

    def __init__(self, schema: DatabaseSchema, rng: Optional[random.Random] = None,
                 config: Optional[KQEConfig] = None) -> None:
        self.schema = schema
        self.rng = rng or random.Random(41)
        self.config = config or KQEConfig()
        self.embedder = GraphEmbedder(dimensions=self.config.embedding_dimensions)
        self.index = GraphIndex(self.embedder)
        self.builder = QueryGraphBuilder(schema)
        self.counter = IsomorphicSetCounter()

    # ---------------------------------------------------------------- coverage

    def coverage(self, graph: QueryGraph) -> float:
        """Coverage score of a (partial) query graph (Eq. 2).

        The average cosine similarity to the k nearest already-explored query
        graphs; high coverage means the structure has been tested before.
        """
        neighbours = self.index.nearest(graph, k=self.config.k_neighbors)
        if not neighbours:
            return 0.0
        return float(sum(similarity for _, similarity in neighbours) / len(neighbours))

    def transition_probability(self, graph: QueryGraph) -> float:
        """Transition probability of extending the walk into *graph* (Eq. 3)."""
        return 1.0 / (self.coverage(graph) + 1.0)

    # ---------------------------------------------------------------- choosing

    def extension_chooser(
        self,
        base: TableRef,
        steps: List[JoinStep],
        candidates: List[CandidateExtension],
    ) -> Optional[CandidateExtension]:
        """The adaptive random-walk step (Algorithm 2, lines 5-14)."""
        if not candidates:
            return None
        current_graph = self.builder.build_partial(base.alias, steps)
        current_probability = self.transition_probability(current_graph)
        weights: List[float] = []
        for candidate in candidates:
            extended = self.builder.build_partial(base.alias, steps, candidate)
            weights.append(self.transition_probability(extended))
        best = max(weights)
        # Termination: when every possible extension is less promising than the
        # current graph, stop growing it (with some probability so the walk does
        # not always stop at the first plateau).
        if (
            len(steps) >= self.config.min_steps_before_termination
            and best < current_probability
            and self.rng.random() < self.config.termination_probability
        ):
            return None
        choice = alias_sample(weights, self.rng)
        return candidates[choice]

    # -------------------------------------------------------------- registering

    def register(self, query: QuerySpec) -> Tuple[QueryGraph, bool]:
        """Add a generated query's graph to the index.

        The full query graph feeds the isomorphic-set counter (the diversity
        axis of Figure 8); the index itself stores the join *skeleton* of the
        query, because that is what the adaptive walk compares its partial
        graphs against when scoring candidate extensions (Algorithm 2).

        Returns the query graph and whether it opened a new isomorphic set.
        """
        graph = self.builder.build(query)
        skeleton = self.builder.build_partial(query.base.alias, query.joins)
        self.index.add(skeleton)
        novel = self.counter.add(graph)
        return graph, novel

    @property
    def explored_isomorphic_sets(self) -> int:
        """Number of distinct isomorphic sets explored so far."""
        return self.counter.distinct_sets

    @property
    def explored_graphs(self) -> int:
        """Number of query graphs registered so far."""
        return self.counter.total_graphs
