"""Query graphs and the plan-iterative graph (paper §4, Figure 6).

A query graph is the labelled sub-graph of the plan-iterative graph induced by a
generated query: table vertices labelled ``table``, column vertices labelled with
their data type, table–table edges labelled with the join type and table–column
edges labelled with the relational operation applied to the column (join column,
filter, projection, group by, aggregate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx

from repro.catalog.schema import DatabaseSchema
from repro.plan.logical import AnyQuerySpec, CompoundQuerySpec, QuerySpec

TABLE_LABEL = "table"

COLUMN_OPERATIONS = ("join column", "filter", "projection", "group by", "aggregate")
"""Labels of table-column edges in the plan-iterative graph."""


def _column_label(schema: DatabaseSchema, table: str, column: str) -> str:
    """Vertex label of a column: its data type name (paper: label = type)."""
    return schema.table(table).column(column).dtype.name.value


@dataclass(frozen=True)
class QueryGraph:
    """An immutable labelled graph representation of one query."""

    vertices: Tuple[Tuple[str, str], ...]  # (vertex id, label)
    edges: Tuple[Tuple[str, str, str], ...]  # (vertex id, vertex id, label)

    @property
    def vertex_labels(self) -> Dict[str, str]:
        """Mapping vertex id -> label."""
        return dict(self.vertices)

    def to_networkx(self) -> nx.Graph:
        """Convert to a networkx graph (used by exact isomorphism checks).

        Several plan-iterative edges can connect the same vertex pair (e.g. a
        column that is both filtered and projected); they are merged into one
        edge whose label is the sorted union, so no information is lost in the
        simple-graph representation.
        """
        graph = nx.Graph()
        for vertex, label in self.vertices:
            graph.add_node(vertex, label=label)
        for left, right, label in self.edges:
            if graph.has_edge(left, right):
                existing = set(graph.edges[left, right]["label"].split("+"))
                existing.add(label)
                graph.edges[left, right]["label"] = "+".join(sorted(existing))
            else:
                graph.add_edge(left, right, label=label)
        return graph

    def size(self) -> Tuple[int, int]:
        """(vertex count, edge count)."""
        return len(self.vertices), len(self.edges)

    def canonical_label(self) -> str:
        """A label string invariant under vertex renaming.

        Uses a Weisfeiler–Lehman style colour refinement over vertex/edge labels;
        two isomorphic query graphs always share the same canonical label, and
        collisions between non-isomorphic graphs are rare enough for the
        isomorphic-set counting of Figure 8.
        """
        graph = self.to_networkx()
        colors = {node: graph.nodes[node]["label"] for node in graph.nodes}
        for _ in range(3):
            new_colors = {}
            for node in graph.nodes:
                neighbourhood = sorted(
                    f"{graph.edges[node, other]['label']}|{colors[other]}"
                    for other in graph.neighbors(node)
                )
                new_colors[node] = f"{colors[node]}({','.join(neighbourhood)})"
            colors = new_colors
        return "|".join(sorted(colors.values()))


class QueryGraphBuilder:
    """Builds :class:`QueryGraph` objects for generated queries."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema

    def build(self, query: AnyQuerySpec) -> QueryGraph:
        """Build the query graph of *query* (compound specs via :meth:`build_compound`)."""
        if isinstance(query, CompoundQuerySpec):
            return self.build_compound(query)
        return self._build_spec(query)

    def build_compound(self, query: CompoundQuerySpec) -> QueryGraph:
        """Build the graph of a set-operation / CTE query.

        Each arm's graph is embedded with an ``a{i}:``-prefixed vertex
        namespace (arms are usually structural twins, so their aliases would
        collide otherwise), and one extra root vertex — labelled with the
        uniform set operator, or ``cte`` for a single-arm CTE — connects to
        every arm's base table with a ``set arm`` edge.  The canonical label
        therefore distinguishes ``A UNION B`` from ``A EXCEPT B`` and both
        from the plain arm, while staying invariant under arm renaming.
        """
        root = "compound"
        root_label = (query.operators[0].value if query.operators else "cte")
        vertices: List[Tuple[str, str]] = [(root, root_label)]
        edges: List[Tuple[str, str, str]] = []
        for index, arm in enumerate(query.arms):
            prefix = f"a{index}:"
            arm_graph = self._build_spec(arm)
            vertices.extend(
                (prefix + vertex, label) for vertex, label in arm_graph.vertices
            )
            edges.extend(
                (prefix + left, prefix + right, label)
                for left, right, label in arm_graph.edges
            )
            edges.append((root, prefix + arm.base.alias, "set arm"))
        return QueryGraph(tuple(vertices), tuple(edges))

    def _build_spec(self, query: QuerySpec) -> QueryGraph:
        vertices: List[Tuple[str, str]] = []
        edges: List[Tuple[str, str, str]] = []
        seen_vertices: Set[str] = set()
        alias_to_table = {ref.alias: ref.table for ref in query.table_refs}

        def add_vertex(vertex: str, label: str) -> None:
            if vertex not in seen_vertices:
                seen_vertices.add(vertex)
                vertices.append((vertex, label))

        def add_column_edge(alias: str, column: str, label: str) -> None:
            table = alias_to_table.get(alias)
            if table is None:
                return
            vertex = f"{alias}.{column}"
            add_vertex(alias, TABLE_LABEL)
            add_vertex(vertex, _column_label(self.schema, table, column))
            edge = (alias, vertex, label)
            if edge not in edges:
                edges.append(edge)

        for ref in query.table_refs:
            add_vertex(ref.alias, TABLE_LABEL)
        for step in query.joins:
            left_alias = query.base.alias if step.left_key is None else step.left_key.table
            right_alias = step.table.alias
            edges.append((left_alias, right_alias, step.join_type.value))
            if step.left_key is not None:
                add_column_edge(step.left_key.table, step.left_key.column, "join column")
                add_column_edge(step.right_key.table, step.right_key.column, "join column")
        if query.where is not None:
            for table, column in sorted(query.where.references(), key=str):
                if table is not None:
                    add_column_edge(table, column, "filter")
        for item in query.select:
            label = "aggregate" if item.aggregate is not None else "projection"
            for table, column in sorted(item.expression.references(), key=str):
                if table is not None:
                    add_column_edge(table, column, label)
        for ref in query.group_by:
            if ref.table is not None:
                add_column_edge(ref.table, ref.column, "group by")
        return QueryGraph(tuple(vertices), tuple(edges))

    def build_partial(self, base_alias: str, steps: Sequence, extension=None) -> QueryGraph:
        """Build the graph of a partial walk (used by the adaptive random walk).

        ``steps`` are the join steps chosen so far; ``extension`` is an optional
        :class:`~repro.dsg.query_gen.CandidateExtension` describing the next edge
        under consideration.
        """
        vertices: List[Tuple[str, str]] = [(base_alias, TABLE_LABEL)]
        seen = {base_alias}
        edges: List[Tuple[str, str, str]] = []
        for step in steps:
            alias = step.table.alias
            if alias not in seen:
                seen.add(alias)
                vertices.append((alias, TABLE_LABEL))
            left_alias = step.left_key.table if step.left_key is not None else base_alias
            if left_alias not in seen:
                seen.add(left_alias)
                vertices.append((left_alias, TABLE_LABEL))
            edges.append((left_alias, alias, step.join_type.value))
        if extension is not None:
            if extension.new_table not in seen:
                seen.add(extension.new_table)
                vertices.append((extension.new_table, TABLE_LABEL))
            edges.append((extension.anchor, extension.new_table, extension.join_type.value))
        return QueryGraph(tuple(vertices), tuple(edges))
