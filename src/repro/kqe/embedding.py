"""Structural graph embeddings (paper §4).

The paper uses a similarity-oriented GNN embedding so that isomorphic or
structurally similar query graphs land close together in the embedding space.
Training a neural network is neither possible offline nor necessary for that
property: a Weisfeiler–Lehman feature map — hash the multiset of refined vertex
colours into a fixed-size vector — gives the same guarantee deterministically:
isomorphic graphs produce identical vectors, and graphs differing in a few
labels/edges produce vectors at small cosine distance.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List

import numpy as np

from repro.kqe.query_graph import QueryGraph

DEFAULT_DIMENSIONS = 64


def _stable_bucket(token: str, dimensions: int) -> int:
    """Deterministic hash bucket for a WL colour token."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % dimensions


class GraphEmbedder:
    """Weisfeiler–Lehman feature hashing of query graphs."""

    def __init__(self, dimensions: int = DEFAULT_DIMENSIONS, iterations: int = 2) -> None:
        if dimensions <= 0:
            raise ValueError("embedding dimensionality must be positive")
        self.dimensions = dimensions
        self.iterations = iterations

    def _wl_colors(self, graph: QueryGraph) -> List[str]:
        nx_graph = graph.to_networkx()
        colors: Dict[str, str] = {
            node: nx_graph.nodes[node]["label"] for node in nx_graph.nodes
        }
        tokens: List[str] = list(colors.values())
        for _ in range(self.iterations):
            refreshed: Dict[str, str] = {}
            for node in nx_graph.nodes:
                neighbourhood = sorted(
                    f"{nx_graph.edges[node, other]['label']}~{colors[other]}"
                    for other in nx_graph.neighbors(node)
                )
                refreshed[node] = f"{colors[node]}::{'|'.join(neighbourhood)}"
            colors = refreshed
            tokens.extend(colors.values())
        return tokens

    def embed(self, graph: QueryGraph) -> np.ndarray:
        """Embed one query graph as an L2-normalized vector."""
        vector = np.zeros(self.dimensions, dtype=np.float64)
        for token in self._wl_colors(graph):
            vector[_stable_bucket(token, self.dimensions)] += 1.0
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def embed_many(self, graphs: Iterable[QueryGraph]) -> np.ndarray:
        """Embed several graphs into a (n, dimensions) matrix."""
        vectors = [self.embed(graph) for graph in graphs]
        if not vectors:
            return np.zeros((0, self.dimensions))
        return np.vstack(vectors)


def cosine_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Cosine similarity of two embedding vectors (0 when either is zero)."""
    denominator = float(np.linalg.norm(left) * np.linalg.norm(right))
    if denominator == 0.0:
        return 0.0
    return float(np.dot(left, right) / denominator)
