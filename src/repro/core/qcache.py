"""Content-addressed cache for rendered SQL and reference result sets.

Differential campaigns recompute a lot of identical work: repeat campaigns and
multi-run benches re-execute the same generated queries against the same
dataset, and the reference side is the expensive one (``execute.reference``
dominates the phase breakdown).  :class:`QueryCache` is a small thread-safe
LRU that memoizes both halves:

* **result entries** — the bug-free reference :class:`~repro.engine.resultset.ResultSet`
  for one (executor, canonical label, dataset fingerprint, canonical SQL);
* **render entries** — the dialect-specific SQL text a backend's renderer
  produced for one (backend, canonical SQL).

Every key is *content-addressed*: a SHA-256 over the canonical query text
(:meth:`~repro.plan.logical.QuerySpec.render` /
:meth:`~repro.plan.logical.CompoundQuerySpec.render`, the deterministic
reference rendering — covering the widened grammar too: set-operation
compounds, ``WITH`` wrappers and scalar subqueries all render canonically),
the :func:`dataset_fingerprint` of the exact table contents, and
the executor / backend names.  Nothing identity- or ordering-dependent may
feed a key — no ``id()``, no ``hash()``, no raw dict iteration — which the
``DET003`` lint rule enforces over this module's import closure.  Canonical
keys are what make the determinism contract hold: cache-on and cache-off runs
produce bit-identical verdicts because a hit can only ever return exactly what
the miss path would have recomputed.

Hits, misses and evictions are counted in :mod:`repro.obs` as
``qcache.hits{kind=}`` / ``qcache.misses{kind=}`` / ``qcache.evictions{kind=}``
so campaign telemetry shows the cache working (or not).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Iterable, Tuple

from repro import obs
from repro.storage.database import Database

#: Lock discipline, checked by the CONC001 lint rule: the LRU dict is only
#: touched under the cache lock.
GUARDED_BY = {"QueryCache": ("_lock", ("_entries",))}

_SEPARATOR = b"\x1f"


def _digest(parts: Iterable[str]) -> str:
    """SHA-256 over *parts* with an unambiguous separator between fields."""
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part.encode("utf-8"))
        hasher.update(_SEPARATOR)
    return hasher.hexdigest()


def dataset_fingerprint(database: Database) -> str:
    """Content hash of *database*: schema and every stored row, in order.

    Table order follows the catalog (creation order), columns follow schema
    order, rows follow storage order — all deterministic products of the
    seeded DSG pipeline, so equal datasets fingerprint equally across
    processes and runs.
    """
    parts = ["dataset/v1"]
    for table_name in database.table_names:
        schema = database.table_schema(table_name)
        columns = list(schema.column_names)
        parts.append(table_name)
        parts.append(",".join(
            f"{name}:{schema.column(name).dtype!r}" for name in columns
        ))
        for stored in database.table(table_name).rows_as_tuples(columns):
            parts.append(repr(stored))
    return _digest(parts)


def result_cache_key(executor: str, label: str, fingerprint: str,
                     canonical_sql: str) -> str:
    """Cache key for a bug-free reference result set."""
    return _digest(("result/v1", executor, label, fingerprint, canonical_sql))


def render_cache_key(backend: str, canonical_sql: str) -> str:
    """Cache key for one backend renderer's SQL text.

    Rendered SQL depends only on the query and the dialect, never on the
    dataset, so the fingerprint stays out of this key.
    """
    return _digest(("render/v1", backend, canonical_sql))


class QueryCache:
    """Thread-safe LRU mapping content-addressed keys to cached values.

    One instance may be shared by the reference oracle (result entries) and a
    backend adapter (render entries) — the key prefixes keep the namespaces
    apart — and by the worker threads of the execution pipeline.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(
                f"cache needs at least one entry, got max_entries={max_entries}"
            )
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str, kind: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for *key*; a hit refreshes LRU recency.

        *kind* ("result" / "render") only labels the telemetry counters.
        """
        with self._lock:
            if key in self._entries:
                value = self._entries[key]
                self._entries.move_to_end(key)
                hit = True
            else:
                value = None
                hit = False
        name = "qcache.hits" if hit else "qcache.misses"
        obs.get_registry().counter(name, kind=kind).inc()
        return hit, value

    def put(self, key: str, value: Any, kind: str) -> None:
        """Insert *value* under *key*, evicting least-recently-used overflow."""
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            obs.get_registry().counter("qcache.evictions", kind=kind).inc(evicted)

    def clear(self) -> None:
        """Drop every entry (counters are left alone)."""
        with self._lock:
            self._entries.clear()
