"""The staged, overlapped execution pipeline for differential testing.

Differential campaigns against real engines are I/O-bound: the serial path
renders one query, executes it on the target backend, executes it on the
reference executor, compares, and only then starts the next query — each side
idles while the other works.  :class:`ExecutionPipeline` restructures that
into a batched, overlapped schedule:

1. a batch of :class:`QueryJob`\\ s is collected (rendering happens inside the
   backend's ``execute``, so it rides the target thread);
2. the whole batch executes on the target backend *concurrently* with the
   whole batch on the reference executor — one dedicated thread per side, fed
   through a small :class:`~concurrent.futures.ThreadPoolExecutor` whose work
   queue is bounded by the batch itself (at most one batch is ever in
   flight);
3. outcomes are compared and yielded **in submission order**, on the caller's
   thread, through the same oracle code the serial path uses.

Determinism contract: because comparison order, generation order and every
verdict-relevant computation are unchanged — threads only overlap the *wall
clock* of independent executions — a pipelined campaign produces bit-identical
verdicts and :class:`~repro.core.bug_report.BugLog` contents to the serial
path for the same seed, at any batch size.  ``tests/test_execpipe.py`` pins
that down.

Thread affinity: adapters that do not declare
``supports_concurrent_cursors`` (stdlib sqlite3 shares one connection object)
have their entire batch executed on one dedicated target thread via
:meth:`~repro.backends.base.BackendAdapter.execute_many`; adapters that do may
spread the batch over ``target_threads`` workers.  The reference executor is
an in-process engine touched by exactly one thread at a time.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.backends.base import BackendExecution
from repro.engine.resultset import ResultSet
from repro.errors import CampaignError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.differential import DifferentialOracle, DifferentialOutcome
    from repro.plan.logical import QuerySpec

#: Lock discipline, enforced by `python -m repro.lint` (CONC001): the lazily
#: created executor handles may only be touched under ``_lock`` so that a
#: close() racing a first batch cannot leak a freshly built pool.
GUARDED_BY = {
    "ExecutionPipeline": ("_lock", ("_target_pool", "_reference_pool")),
}


@dataclass(frozen=True)
class QueryJob:
    """One unit of pipeline work: a generated query plus its diversity label."""

    query: "QuerySpec"
    label: str = ""


@dataclass
class PipelineConfig:
    """Knobs of the overlapped execution schedule.

    ``batch_size`` is how many generated queries are buffered before the
    pipeline executes them as one overlapped batch; 1 keeps serial semantics
    (and the serial code path) exactly.  ``target_threads`` caps the
    target-side fan-out and is clamped to 1 for adapters without concurrent
    cursor support; the reference side always runs on one thread.
    """

    batch_size: int = 1
    target_threads: int = 1

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise CampaignError("pipeline batch_size must be >= 1")
        if self.target_threads < 1:
            raise CampaignError("pipeline target_threads must be >= 1")


class ExecutionPipeline:
    """Executes batches of query jobs on target and reference concurrently.

    One instance serves one :class:`~repro.core.differential.DifferentialOracle`
    (which owns the backend, the reference engine, the comparison rules and the
    bug log).  The pipeline is a pure scheduler: it never touches verdict
    logic, so outcomes are bit-identical to the serial path.
    """

    def __init__(self, oracle: "DifferentialOracle",
                 config: Optional[PipelineConfig] = None) -> None:
        self.oracle = oracle
        self.config = config or PipelineConfig()
        self.batches_executed = 0
        self.queries_pipelined = 0
        self._lock = threading.Lock()
        self._target_pool: Optional[ThreadPoolExecutor] = None
        self._reference_pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------- lifecycle

    @property
    def target_threads(self) -> int:
        """The effective target-side fan-out after capability clamping."""
        if not self.oracle.backend.supports_concurrent_cursors:
            return 1
        return self.config.target_threads

    def _pools(self) -> tuple:
        """Lazily create the two per-side executors (one thread per backend)."""
        with self._lock:
            if self._target_pool is None:
                self._target_pool = ThreadPoolExecutor(
                    max_workers=self.target_threads,
                    thread_name_prefix="execpipe-target",
                )
                self._reference_pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="execpipe-reference"
                )
            return self._target_pool, self._reference_pool

    def close(self) -> None:
        """Shut down the worker threads. Idempotent."""
        with self._lock:
            target_pool, self._target_pool = self._target_pool, None
            reference_pool, self._reference_pool = self._reference_pool, None
        if target_pool is not None:
            target_pool.shutdown(wait=True)
        if reference_pool is not None:
            reference_pool.shutdown(wait=True)

    def __enter__(self) -> "ExecutionPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------- execution

    def _execute_one(self, job: QueryJob) -> BackendExecution:
        """One target execution with per-query error capture (mirrors
        :meth:`~repro.backends.base.BackendAdapter.execute_many`, so
        batch-mates survive a bad query)."""
        from repro.errors import BackendError

        try:
            return self.oracle.backend.execute(job.query)
        except BackendError as error:
            return BackendExecution(error=error)

    def _submit_target(self, target_pool: ThreadPoolExecutor,
                       jobs: Sequence[QueryJob]):
        """Start the target side of one batch; returns a thunk for the results.

        Serial-cursor backends get the whole batch as one
        :meth:`execute_many` task on the single target thread.  Concurrent-
        cursor backends have each query submitted individually, so all
        ``target_threads`` workers execute (no wrapper task occupying a pool
        slot); collecting futures in submission order keeps results ordered.
        """
        backend = self.oracle.backend
        if self.target_threads <= 1 or len(jobs) <= 1:
            future = target_pool.submit(
                backend.execute_many, [job.query for job in jobs]
            )
            return future.result
        futures = [target_pool.submit(self._execute_one, job)
                   for job in jobs]
        return lambda: [future.result() for future in futures]

    def _execute_reference(self, jobs: Sequence[QueryJob]) -> List[ResultSet]:
        """The reference side of one batch, strictly in order.

        Goes through the oracle's :meth:`execute_reference` so the result
        cache (when configured) serves the pipelined path too; the
        ``execute.reference`` span is recorded inside, around actual
        executions only.
        """
        return [self.oracle.execute_reference(job.query, job.label)
                for job in jobs]

    def run_batch(self, jobs: Sequence[QueryJob]
                  ) -> List["DifferentialOutcome"]:
        """Execute one batch overlapped; compared outcomes in submission order.

        Pre-execution skips (e.g. LIMIT queries, which are engine-defined and
        incomparable) are decided up front in submission order, exactly as the
        serial oracle would; the remaining jobs execute target-vs-reference
        concurrently and are judged in submission order on the calling thread.
        """
        outcomes: List[Optional["DifferentialOutcome"]] = [None] * len(jobs)
        executable: List[tuple] = []
        for position, job in enumerate(jobs):
            skip = self.oracle.precheck(job.query, job.label)
            if skip is not None:
                outcomes[position] = skip
            else:
                executable.append((position, job))
        if executable:
            batch = [job for _, job in executable]
            target_pool, reference_pool = self._pools()
            collect_target = self._submit_target(target_pool, batch)
            reference_future = reference_pool.submit(
                self._execute_reference, batch
            )
            try:
                executions = collect_target()
            finally:
                # Never orphan the reference future: even if the target side
                # raised, the reference thread must drain before the caller
                # tears the tester down.
                references = reference_future.result()
            for (position, job), execution, reference_result in zip(
                    executable, executions, references):
                outcomes[position] = self.oracle.judge(
                    job.query, job.label, execution, reference_result
                )
        self.batches_executed += 1
        self.queries_pipelined += len(jobs)
        return [outcome for outcome in outcomes if outcome is not None]
