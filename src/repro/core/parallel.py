"""Parallel query-space exploration (paper §4 last paragraph, Figure 10).

The paper parallelizes TQS by keeping the KQE graph index on a central server
while each client owns a database replica and a DSG process; the only shared
cost is synchronizing the index.  Re-creating a real multi-machine deployment is
out of scope for a laptop reproduction, so :class:`ParallelSearchSimulator`
reproduces the experiment's structure in-process: every simulated client runs
its own generator against its own database copy, every generated query is pushed
through the single shared graph index (the synchronization bottleneck), and the
metric reported is the number of queries generated per simulated hour, as in
Figure 10.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dsg.pipeline import DSG, DSGConfig
from repro.errors import GenerationError
from repro.kqe.explorer import KQE
from repro.kqe.query_graph import QueryGraphBuilder


@dataclass
class ParallelSearchResult:
    """Outcome of one parallel-search simulation."""

    clients: int
    queries_generated: int
    isomorphic_sets: int
    sync_operations: int
    elapsed_seconds: float

    @property
    def queries_per_second(self) -> float:
        """Aggregate generation throughput."""
        if self.elapsed_seconds <= 0:
            return float(self.queries_generated)
        return self.queries_generated / self.elapsed_seconds


@dataclass
class ParallelSearchConfig:
    """Configuration of the simulated deployment."""

    dataset: str = "shopping"
    dataset_rows: int = 120
    per_client_budget: int = 120
    sync_cost_fraction: float = 0.04
    seed: int = 19


class ParallelSearchSimulator:
    """Simulates N clients sharing one central KQE graph index."""

    def __init__(self, config: Optional[ParallelSearchConfig] = None) -> None:
        self.config = config or ParallelSearchConfig()

    def run(self, clients: int) -> ParallelSearchResult:
        """Simulate *clients* parallel DSG clients for one budget round."""
        if clients < 1:
            raise ValueError("at least one client is required")
        config = self.config
        # One shared index (central server), one DSG replica per client.
        replicas: List[DSG] = []
        for client in range(clients):
            replicas.append(
                DSG(
                    DSGConfig(
                        dataset=config.dataset,
                        dataset_rows=config.dataset_rows,
                        seed=config.seed + client,
                    )
                )
            )
        server_kqe = KQE(replicas[0].ndb.schema, rng=random.Random(config.seed))
        start = time.perf_counter()
        generated = 0
        sync_operations = 0
        for client_index, dsg in enumerate(replicas):
            for _ in range(config.per_client_budget):
                try:
                    query = dsg.generate_query(
                        extension_chooser=server_kqe.extension_chooser
                    )
                except GenerationError:
                    continue
                generated += 1
                # Central synchronization: every client must register its query
                # graph with the server before continuing; the extra clients pay
                # the (small) coordination overhead the paper mentions.
                server_kqe.register(query)
                sync_operations += 1
        elapsed = time.perf_counter() - start
        # Account for the coordination overhead of a real deployment: each
        # additional client adds a fixed fraction of per-query latency to the
        # serialized section on the server.
        elapsed *= 1.0 + config.sync_cost_fraction * (clients - 1)
        return ParallelSearchResult(
            clients=clients,
            queries_generated=generated,
            isomorphic_sets=server_kqe.explored_isomorphic_sets,
            sync_operations=sync_operations,
            elapsed_seconds=elapsed,
        )

    def sweep(self, max_clients: int = 5) -> List[ParallelSearchResult]:
        """Run the Figure 10 sweep over 1..max_clients clients."""
        return [self.run(clients) for clients in range(1, max_clients + 1)]
