"""Parallel query-space exploration (paper §4 last paragraph, Figure 10).

The paper parallelizes TQS by keeping the KQE graph index on a central server
while each client owns a database replica and a DSG process; the only shared
cost is synchronizing the index.  This module provides both reproductions of
that design:

* :class:`ParallelSearchSimulator` — the original in-process model: every
  simulated client runs its own generator against its own database copy, every
  generated query is pushed through the single shared graph index, and the
  metric reported is queries generated per simulated hour, as in Figure 10.

* The **real worker pool** (:func:`run_parallel_shards` and the
  ``run_parallel_*_campaign`` wrappers) — campaigns sharded across
  ``multiprocessing`` worker processes by (derived seed, dataset,
  dialect/backend).  Workers run the same shared iteration loop as the serial
  runners (:func:`~repro.core.campaign.run_campaign_loop`); at hour boundaries
  they ship batches of (embedding, canonical label) pairs to the coordinator,
  which merges them into a central :class:`~repro.kqe.graph_index.GraphIndex`
  and broadcasts the other workers' label-novel entries back — the paper's
  central-index synchronization, bulk-synchronous so runs are deterministic.
  The coordinator merges per-worker bug logs with cross-worker bug-type
  deduplication and rebuilds the per-hour series contract on the merged result.

The sync protocol itself is transport-agnostic: workers talk to the
coordinator through a :class:`SyncTransport`.  :class:`LocalSyncTransport`
carries it over ``multiprocessing`` queues (the in-process pool);
:class:`~repro.distributed.client.RemoteSyncTransport` carries the same verbs
over TCP to a :class:`~repro.distributed.server.IndexServer`, so shards can
run on separate machines (``transport="tcp"``, or the
``python -m repro.distributed`` CLI for genuinely remote clients).  Both paths
share one :class:`~repro.distributed.coordinator.CentralCoordinator`, so for
the same seed a TCP campaign is bit-identical to the in-process pool.

Run long campaigns from the command line::

    python -m repro.core.parallel --workers 4 --hours 24 --queries-per-hour 12
"""

from __future__ import annotations

import argparse
import hashlib
import multiprocessing
import queue as queue_module
import random
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.budget import (
    BudgetPolicy,
    budget_policy_from_name,
    registered_budget_policies,
    split_budget,
)
from repro.core.bug_report import BugIncident, BugLog
from repro.core.campaign import (
    CampaignConfig,
    CampaignResult,
    HourRecord,
    HourlySample,
    build_baseline_tester,
    build_differential_tester,
    build_tqs_tester,
    run_campaign_loop,
    tqs_variant_name,
)
from repro.core.execpipe import PipelineConfig
from repro.distributed.coordinator import CentralCoordinator
from repro.distributed.protocol import (
    IndexEntry,
    SyncBroadcast,
    codec_from_name,
    load_auth_key,
)
from repro.dsg.pipeline import DSG, DSGConfig
from repro.errors import CampaignError, GenerationError
from repro.kqe.explorer import KQE
from repro.kqe.graph_index import GraphIndex


# =========================================================================
# The in-process simulator (kept for the Figure 10 shape reproduction)
# =========================================================================


@dataclass
class ParallelSearchResult:
    """Outcome of one parallel-search simulation."""

    clients: int
    queries_generated: int
    isomorphic_sets: int
    sync_operations: int
    elapsed_seconds: float

    @property
    def queries_per_second(self) -> float:
        """Aggregate generation throughput."""
        if self.elapsed_seconds <= 0:
            return float(self.queries_generated)
        return self.queries_generated / self.elapsed_seconds


@dataclass
class ParallelSearchConfig:
    """Configuration of the simulated deployment."""

    dataset: str = "shopping"
    dataset_rows: int = 120
    per_client_budget: int = 120
    sync_cost_fraction: float = 0.04
    seed: int = 19


class ParallelSearchSimulator:
    """Simulates N clients sharing one central KQE graph index."""

    def __init__(self, config: Optional[ParallelSearchConfig] = None) -> None:
        self.config = config or ParallelSearchConfig()

    def run(self, clients: int) -> ParallelSearchResult:
        """Simulate *clients* parallel DSG clients for one budget round."""
        if clients < 1:
            raise ValueError("at least one client is required")
        config = self.config
        # One shared index (central server), one DSG replica per client.
        replicas: List[DSG] = []
        for client in range(clients):
            replicas.append(
                DSG(
                    DSGConfig(
                        dataset=config.dataset,
                        dataset_rows=config.dataset_rows,
                        seed=config.seed + client,
                    )
                )
            )
        server_kqe = KQE(replicas[0].ndb.schema, rng=random.Random(config.seed))
        start = time.perf_counter()
        generated = 0
        sync_operations = 0
        for client_index, dsg in enumerate(replicas):
            for _ in range(config.per_client_budget):
                try:
                    query = dsg.generate_query(
                        extension_chooser=server_kqe.extension_chooser
                    )
                except GenerationError:
                    continue
                generated += 1
                # Central synchronization: every client must register its query
                # graph with the server before continuing; the extra clients pay
                # the (small) coordination overhead the paper mentions.
                server_kqe.register(query)
                sync_operations += 1
        elapsed = time.perf_counter() - start
        # Account for the coordination overhead of a real deployment: each
        # additional client adds a fixed fraction of per-query latency to the
        # serialized section on the server.
        elapsed *= 1.0 + config.sync_cost_fraction * (clients - 1)
        return ParallelSearchResult(
            clients=clients,
            queries_generated=generated,
            isomorphic_sets=server_kqe.explored_isomorphic_sets,
            sync_operations=sync_operations,
            elapsed_seconds=elapsed,
        )

    def sweep(self, max_clients: int = 5) -> List[ParallelSearchResult]:
        """Run the Figure 10 sweep over 1..max_clients clients."""
        return [self.run(clients) for clients in range(1, max_clients + 1)]


# =========================================================================
# The real multi-process worker pool
# =========================================================================


def derive_worker_seed(campaign_seed: int, shard_id: int) -> int:
    """A deterministic, well-separated per-shard seed.

    Hash-derived (not ``seed + shard_id``) so neighbouring shards do not run
    correlated DSG pipelines — shard 1 with seed 5 must not equal shard 0 with
    seed 6.  Stable across processes and Python versions (unlike ``hash``).
    """
    digest = hashlib.sha256(f"tqs-shard:{campaign_seed}:{shard_id}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def shard_campaign_configs(config: CampaignConfig, workers: int) -> List[CampaignConfig]:
    """Split one campaign budget across *workers* shard configurations.

    Every shard keeps the full number of hours (so per-hour series line up for
    merging) but receives ``queries_per_hour / workers`` of the generation
    budget (remainder spread over the first shards) and a derived seed.
    """
    if workers < 1:
        raise CampaignError("at least one worker is required")
    # A shard with a zero budget would still pay a full DSG build and block
    # every sync barrier while contributing nothing; never create one.
    workers = max(1, min(workers, config.queries_per_hour))
    if workers == 1:
        # A 1-worker pool must be bitwise-identical to the serial runner on
        # the same config, so the campaign seed passes through unchanged.
        return [replace(config)]
    budgets = split_budget(config.queries_per_hour, workers)
    return [
        replace(
            config,
            queries_per_hour=budgets[shard_id],
            seed=derive_worker_seed(config.seed, shard_id),
        )
        for shard_id in range(workers)
    ]


@dataclass(frozen=True)
class ShardSpec:
    """One worker's assignment: what to test, against what, with which seed.

    Plain strings name the dialect / baseline / backend so the spec pickles
    across process boundaries; the worker materializes the actual objects.
    """

    shard_id: int
    kind: str  # "tqs" | "baseline" | "differential"
    config: CampaignConfig
    dialect: str = "SimMySQL"
    baseline: str = ""          # baseline name when kind == "baseline"
    backend: str = "sqlite"     # backend name when kind == "differential"
    # Execution-pipeline batch size for differential shards: above 1, each
    # worker overlaps target and reference execution (repro.core.execpipe).
    batch_size: int = 1


@dataclass
class ParallelCampaignConfig:
    """Knobs of the multi-process deployment."""

    workers: int = 4
    sync_interval: int = 1       # simulated hours between index syncs; 0 = never
    # Progress deadline, transport-dependent: over "local" queues it is the
    # seconds without hearing from ANY worker (heartbeats included) before
    # the pool is declared dead; over "tcp" it feeds the IndexServer's
    # round_timeout — once a sync round opens, laggards have this long to
    # deliver their batch (heartbeats prove liveness, not progress).  Size it
    # well above the slowest shard's per-hour runtime.
    worker_timeout: float = 300.0
    start_method: Optional[str] = None  # None = platform default ("fork" on Linux)
    # "local" runs the sync protocol over multiprocessing queues; "tcp" hosts
    # an in-process IndexServer and has every worker connect over localhost —
    # the same code path remote clients use, so CI can exercise it end to end.
    transport: str = "local"
    tcp_host: str = "127.0.0.1"
    tcp_port: int = 0            # 0 = ephemeral port chosen by the OS
    # Wire encoding of the TCP transport: "json" is protocol v2
    # (HMAC-authenticated JSON frames, no pickle deserialized from the
    # socket); "pickle" keeps the legacy trusted-host framing.  Ignored by
    # the local queue transport.
    protocol: str = "json"
    # Shared secret authenticating protocol v2 frames (None = unkeyed tags:
    # corruption is still caught, but any client can connect — fine on
    # localhost, not across hosts).
    auth_key: Optional[bytes] = None
    # Broadcast only label-novel entries to each worker (the coordinator's
    # novelty pruning).  Pruned and unpruned runs are each deterministic, but
    # differ from one another; the switch is campaign configuration.
    prune_broadcasts: bool = True
    # How the per-hour query budget is spread over the shards: "even" keeps
    # the historical fixed split; "adaptive" rebalances budget at every sync
    # round toward shards with higher novel-label discovery rates
    # (repro.core.budget).  Either way every hour's total budget is conserved
    # and runs are deterministic for a fixed seed.
    budget_policy: str = "even"
    # Execution-pipeline batch size inside each differential worker; 1 keeps
    # the strictly serial per-query path.
    pipeline_batch_size: int = 1
    # Print a live progress line (merged queries/s, novel-label rate, bugs,
    # phase mix) to stderr at every sync round.  Pure presentation: the
    # campaign's results are bit-identical with it on or off.
    live_stats: bool = False


@dataclass
class WorkerReport:
    """Everything a worker ships home when its shard completes."""

    shard_id: int
    tool: str
    dbms: str
    dataset: str
    samples: List[HourlySample]
    hourly_new_labels: List[List[str]]
    hourly_incidents: List[List[BugIncident]]
    unsynced_entries: List[IndexEntry] = field(default_factory=list)
    # The per-hour generation budget this worker actually ran each hour —
    # constant under the even policy, varying under adaptive rebalancing.
    hourly_budgets: List[int] = field(default_factory=list)
    # Sync-payload accounting: entries this worker shipped to the coordinator
    # (sync batches plus the unsynced tail above), entries it received in
    # broadcasts, and entries the coordinator's novelty pruning withheld from
    # it — so the payload reduction is measurable per worker.
    entries_shipped: int = 0
    broadcast_entries_received: int = 0
    broadcast_entries_suppressed: int = 0
    # Final cumulative telemetry snapshot of this worker's metrics registry
    # (:meth:`repro.obs.MetricsSnapshot.to_dict` form), or None when telemetry
    # is disabled.  A plain dict so the report pickles and JSON-encodes.
    telemetry: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class ShardSyncStats:
    """Per-worker view of the sync traffic, for reporting and reconciliation."""

    shard_id: int
    entries_shipped: int
    broadcast_entries_received: int
    broadcast_entries_suppressed: int
    # Per-hour budget series for this shard (the adaptive policy's decisions,
    # or a constant line under the even policy).
    hourly_budgets: Tuple[int, ...] = ()


@dataclass
class ParallelCampaignResult:
    """Merged outcome of one multi-process campaign."""

    merged: CampaignResult
    shards: List[CampaignResult]
    workers: int
    sync_rounds: int
    elapsed_seconds: float
    central_index_size: int
    central_distinct_labels: int
    transport: str = "local"
    broadcast_entries_sent: int = 0
    broadcast_entries_suppressed: int = 0
    sync_stats: List[ShardSyncStats] = field(default_factory=list)
    budget_policy: str = "even"
    # Merged telemetry across all shards (snapshot-dict form), or None when
    # telemetry was disabled.  Lives *outside* the deterministic summary:
    # timings vary run to run even though verdicts do not.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def queries_per_second(self) -> float:
        """Aggregate generation throughput over wall-clock time."""
        generated = self.merged.final.queries_generated
        if self.elapsed_seconds <= 0:
            return float(generated)
        return generated / self.elapsed_seconds


def sync_schedule(hours: int, sync_interval: int) -> Tuple[int, ...]:
    """The hour boundaries at which workers and coordinator rendezvous.

    The final hour is excluded — there is no further generation a sync could
    inform, and skipping it removes one pointless barrier.
    """
    if sync_interval <= 0:
        return ()
    return tuple(h for h in range(1, hours) if h % sync_interval == 0)


def _build_shard_tester(spec: ShardSpec):
    """Materialize the tester (and display metadata) for one shard."""
    from repro.baselines import make_baseline
    from repro.engine.dialects import dialect_by_name

    if spec.kind == "tqs":
        dialect = dialect_by_name(spec.dialect)
        tester = build_tqs_tester(dialect, spec.config)
        return tester, tqs_variant_name(spec.config), dialect.name
    if spec.kind == "baseline":
        dialect = dialect_by_name(spec.dialect)
        tester = build_baseline_tester(make_baseline(spec.baseline), dialect,
                                       spec.config)
        return tester, tester.name, dialect.name
    if spec.kind == "differential":
        from repro.backends import backend_from_name

        backend = backend_from_name(spec.backend)
        pipeline = (PipelineConfig(batch_size=spec.batch_size)
                    if spec.batch_size > 1 else None)
        tester = build_differential_tester(backend, spec.config,
                                           pipeline=pipeline)
        return tester, "TQS-differential", backend.name
    raise CampaignError(f"unknown shard kind {spec.kind!r}")


def _shard_index(tester) -> Optional[GraphIndex]:
    """The tester's local KQE graph index, when it runs with KQE guidance."""
    kqe = getattr(tester, "kqe", None)
    return kqe.index if kqe is not None else None


class SyncTransport:
    """How one worker talks to the central coordinator.

    The protocol is four verbs: ``register`` once up front, ``sync`` at every
    scheduled hour boundary (blocking until the coordinator broadcasts the
    other workers' entries), ``report`` once at the end, and ``error`` on
    failure; ``tick`` is the out-of-band liveness heartbeat.  Implementations
    carry the verbs over multiprocessing queues (:class:`LocalSyncTransport`)
    or TCP (:class:`~repro.distributed.client.RemoteSyncTransport`); the
    worker body (:func:`run_shard_with_transport`) is transport-blind.
    """

    def register(self, shard_id: Optional[int]) -> None:
        """Announce this worker to the coordinator before the campaign starts."""
        raise NotImplementedError

    def sync(self, shard_id: int, hour: int, entries: List[IndexEntry],
             telemetry: Optional[Dict[str, Any]] = None) -> SyncBroadcast:
        """Ship one batch and block until the round's broadcast arrives.

        *telemetry* is the worker's cumulative metrics snapshot (dict form),
        carried piggyback for the coordinator's live stats; it never
        influences the broadcast content.
        """
        raise NotImplementedError

    def report(self, report: "WorkerReport") -> None:
        """Deliver the finished shard's report to the coordinator."""
        raise NotImplementedError

    def error(self, shard_id: int, text: str) -> None:
        """Tell the coordinator this worker failed (text = traceback)."""
        raise NotImplementedError

    def tick(self, shard_id: int) -> None:
        """Liveness heartbeat; must be cheap and safe from a daemon thread."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (sockets); queues need no teardown."""


class LocalSyncTransport(SyncTransport):
    """The in-process pool's transport: a pair of multiprocessing queues."""

    def __init__(self, to_coordinator, from_coordinator) -> None:
        self._to_coordinator = to_coordinator
        self._from_coordinator = from_coordinator

    def register(self, shard_id: Optional[int]) -> None:
        # The local coordinator created the shards itself; nothing to announce.
        return None

    def sync(self, shard_id: int, hour: int, entries: List[IndexEntry],
             telemetry: Optional[Dict[str, Any]] = None) -> SyncBroadcast:
        self._to_coordinator.put(("sync", shard_id, hour, entries, telemetry))
        # Barrier: block until the coordinator broadcasts the other workers'
        # entries for this round.  The barrier has no fixed deadline of its
        # own — how long it takes depends on the *slowest peer's* hour, which
        # a worker cannot bound; deadlock arbitration belongs to the
        # coordinator (which sees heartbeats from every worker).  We only bail
        # out if the coordinator process itself died, so orphaned workers
        # never hang forever.
        parent = multiprocessing.parent_process()
        while True:
            try:
                return self._from_coordinator.get(timeout=5.0)
            except queue_module.Empty:
                if parent is not None and not parent.is_alive():
                    raise CampaignError("coordinator process died during sync")

    def report(self, report: "WorkerReport") -> None:
        self._to_coordinator.put(("done", report.shard_id, report))

    def error(self, shard_id: int, text: str) -> None:
        self._to_coordinator.put(("error", shard_id, text))

    def tick(self, shard_id: int) -> None:
        self._to_coordinator.put(("tick", shard_id))


def _make_worker_transport(transport_spec: Tuple) -> SyncTransport:
    """Materialize a transport inside the worker process.

    *transport_spec* must pickle across the process boundary, so it is a plain
    tagged tuple: ``("local", to_coordinator, from_coordinator)`` or
    ``("tcp", host, port, io_timeout, protocol, auth_key)``.
    """
    kind = transport_spec[0]
    if kind == "local":
        return LocalSyncTransport(transport_spec[1], transport_spec[2])
    if kind == "tcp":
        from repro.distributed.client import RemoteSyncTransport

        _, host, port, io_timeout, protocol, auth_key = transport_spec
        return RemoteSyncTransport(host, port,
                                   connect_timeout=min(60.0, io_timeout),
                                   io_timeout=io_timeout,
                                   protocol=protocol, auth_key=auth_key)
    raise CampaignError(f"unknown transport spec {transport_spec[0]!r}")


def run_shard_with_transport(spec: ShardSpec, sync_hours: Sequence[int],
                             transport: SyncTransport,
                             live_stats: bool = False) -> WorkerReport:
    """Run one shard's campaign, synchronizing through *transport*.

    This is the transport-blind worker body shared by the in-process pool's
    worker processes and the distributed CLI client.  It does not send the
    final report itself (callers manage heartbeat shutdown ordering); it
    returns the completed :class:`WorkerReport`.

    With *live_stats* a progress line is printed to stderr at every hour
    boundary (the distributed client's ``--live-stats``); the pool's
    coordinator renders its own merged line instead.
    """
    registry = obs.get_registry()
    run_start = time.perf_counter()
    with obs.span("setup"):
        tester, tool, dbms = _build_shard_tester(spec)
    index = _shard_index(tester)
    records: List[HourRecord] = []
    watermark = [len(index)] if index is not None else [0]
    shipped = [0]
    received = [0]
    suppressed = [0]
    # The live per-hour budget: starts at the shard's static allocation and is
    # overwritten by the coordinator's rebalancing decisions (when a budget
    # policy is active) at sync rounds.  ``hourly_budgets`` records what each
    # hour actually ran with, for the campaign report.
    current_budget = [spec.config.queries_per_hour]
    hourly_budgets: List[int] = []

    def budget_for_hour(hour: int) -> int:
        hourly_budgets.append(current_budget[0])
        return current_budget[0]

    def on_hour(record: HourRecord) -> None:
        records.append(record)
        if live_stats:
            print(
                obs.render_live_line(
                    registry.snapshot(),
                    time.perf_counter() - run_start,
                    hour=record.hour,
                    prefix=f"shard {spec.shard_id}",
                ),
                file=sys.stderr, flush=True,
            )
        if record.hour not in sync_hours:
            return
        entries: List[IndexEntry] = []
        if index is not None:
            # to_wire() is the sync protocol's single quantization point:
            # embeddings round-trip through float32 exactly once, here, so
            # every transport and wire protocol ships identical values.
            entries = index.entries_since(watermark[0]).to_wire()
        # Bulk-synchronous rounds keep the run deterministic — local state
        # never depends on timing, only on the round's merged content.  The
        # cumulative telemetry snapshot rides piggyback on the sync payload so
        # the coordinator can render merged live stats mid-campaign.
        with obs.span("sync"):
            broadcast = transport.sync(spec.shard_id, record.hour, entries,
                                       telemetry=obs.snapshot_dict())
        shipped[0] += len(entries)
        received[0] += len(broadcast.entries)
        suppressed[0] += broadcast.suppressed
        if broadcast.next_budget is not None:
            current_budget[0] = broadcast.next_budget
        if index is not None:
            for vector, label in broadcast.entries:
                index.add_embedding(vector, label)
            watermark[0] = len(index)

    result = CampaignResult(tool="", dbms="", dataset=spec.config.dataset)
    try:
        run_campaign_loop(tester, result, spec.config.hours,
                          budget_for_hour, on_hour=on_hour)
    finally:
        # Differential testers own an adapter (and possibly pipeline
        # threads); close() is idempotent and runs on every exit path so a
        # failing shard cannot leak its connection.
        closer = getattr(tester, "close", None)
        if closer is not None:
            closer()
    unsynced: List[IndexEntry] = []
    if index is not None:
        unsynced = index.entries_since(watermark[0]).to_wire()
    # The phase-coverage denominator: one observation of this shard's total
    # wall-clock, merged across shards by summing (histogram merge).
    registry.histogram("worker.run.seconds",
                       buckets=(1.0, 10.0, 60.0, 600.0, 3600.0)).observe(
        time.perf_counter() - run_start)
    return WorkerReport(
        shard_id=spec.shard_id,
        tool=tool,
        dbms=dbms,
        dataset=spec.config.dataset,
        samples=result.samples,
        hourly_new_labels=[record.new_labels for record in records],
        hourly_incidents=[record.new_incidents for record in records],
        unsynced_entries=unsynced,
        entries_shipped=shipped[0] + len(unsynced),
        broadcast_entries_received=received[0],
        broadcast_entries_suppressed=suppressed[0],
        hourly_budgets=hourly_budgets,
        telemetry=obs.snapshot_dict(),
    )


def run_shard_with_heartbeat(spec: ShardSpec, sync_hours: Sequence[int],
                             transport: SyncTransport,
                             heartbeat_interval: float,
                             live_stats: bool = False) -> WorkerReport:
    """Run one shard with a liveness heartbeat ticking around it.

    The heartbeat runs on a daemon thread and keeps ticking through the DSG
    build and arbitrarily long hours, so the coordinator's progress deadline
    measures worker *death*, never workload size.  Barrier arbitration is the
    coordinator's job: over the local transport a parked worker keeps ticking
    (queue puts are independent), while over TCP ticks queue behind the
    in-flight sync exchange — there the sync message itself refreshes the
    server's activity clock, and the barrier resolves when the slowest peer's
    batch (or the server's silence deadline) arrives.
    Shared by the pool's worker processes and the distributed CLI client.
    """
    stop_heartbeat = threading.Event()

    def _heartbeat() -> None:
        while not stop_heartbeat.wait(heartbeat_interval):
            try:
                transport.tick(spec.shard_id)
            except Exception:
                # Coordinator gone; the main thread will notice.  Count the
                # dropped tick so a flaky transport shows up in telemetry.
                obs.get_registry().counter("heartbeat.errors").inc()
                return

    heartbeat = threading.Thread(target=_heartbeat, daemon=True,
                                 name=f"tqs-heartbeat-{spec.shard_id}")
    heartbeat.start()
    try:
        return run_shard_with_transport(spec, sync_hours, transport,
                                        live_stats=live_stats)
    finally:
        stop_heartbeat.set()


def _worker_main(spec: ShardSpec, sync_hours: Tuple[int, ...],
                 heartbeat_interval: float, transport_spec: Tuple) -> None:
    """Worker process body: run one shard, synchronizing at hour boundaries."""
    # Fork-started workers inherit the parent's registry contents; a fresh
    # registry keeps each shard's telemetry snapshot self-contained.
    obs.reset_registry()
    transport: Optional[SyncTransport] = None
    try:
        transport = _make_worker_transport(transport_spec)
        transport.register(spec.shard_id)
        report = run_shard_with_heartbeat(spec, sync_hours, transport,
                                          heartbeat_interval)
        transport.report(report)
    except BaseException:  # pragma: no cover - exercised via deadlock tests
        if transport is not None:
            try:
                transport.error(spec.shard_id, traceback.format_exc())
            except Exception:
                # The error channel itself is down; the coordinator's
                # deadline will catch the dead shard.  Leave a trace.
                obs.get_registry().counter("worker.error_notify_failures").inc()
    finally:
        if transport is not None:
            transport.close()


def merge_worker_reports(reports: Sequence[WorkerReport]
                         ) -> Tuple[CampaignResult, List[CampaignResult]]:
    """Merge per-shard reports into one campaign result plus per-shard views.

    The merged per-hour series keep the serial contract: every cumulative
    metric is monotone, ``isomorphic_sets`` is the size of the union of label
    sets across workers at each hour, and bug counts come from replaying every
    worker's incidents hour by hour through one :class:`BugLog` (so the same
    (root cause, structure) pair found by two workers counts once).
    """
    if not reports:
        raise CampaignError("no worker reports to merge")
    reports = sorted(reports, key=lambda report: report.shard_id)
    hours = len(reports[0].samples)
    if any(len(report.samples) != hours for report in reports):
        raise CampaignError("shards disagree on campaign length; cannot merge")
    merged_log = BugLog()
    union_labels: set = set()
    merged_samples: List[HourlySample] = []
    for index in range(hours):
        for report in reports:
            union_labels.update(report.hourly_new_labels[index])
            for incident in report.hourly_incidents[index]:
                merged_log.record(incident)
        merged_samples.append(
            HourlySample(
                hour=index + 1,
                queries_generated=sum(
                    r.samples[index].queries_generated for r in reports),
                queries_executed=sum(
                    r.samples[index].queries_executed for r in reports),
                isomorphic_sets=len(union_labels),
                bug_count=merged_log.bug_count,
                bug_type_count=merged_log.bug_type_count,
                generations_rejected=sum(
                    r.samples[index].generations_rejected for r in reports),
            )
        )
    first = reports[0]
    merged = CampaignResult(tool=first.tool, dbms=first.dbms,
                            dataset=first.dataset, samples=merged_samples,
                            bug_log=merged_log)
    shard_results: List[CampaignResult] = []
    for report in reports:
        shard_log = BugLog()
        for incidents in report.hourly_incidents:
            for incident in incidents:
                shard_log.record(incident)
        shard_results.append(
            CampaignResult(tool=report.tool, dbms=report.dbms,
                           dataset=report.dataset, samples=report.samples,
                           bug_log=shard_log)
        )
    return merged, shard_results


def _receive(result_queue, processes, timeout: float, pending=None):
    """One protocol message from any worker, failing fast on a dead pool.

    ``tick`` heartbeats (sent by a daemon thread in every live worker) are
    consumed here and reset the silence deadline, so a pool that is merely
    slow — a long DSG build, a heavy hour — is never mistaken for a dead one:
    the deadline only fires when *no worker process* has been heard from for
    *timeout* seconds, i.e. when the pool has actually died.

    Surviving peers' heartbeats must not mask a single *hard-killed* worker
    (SIGKILL/OOM sends no "error" message), so *pending* — a callable giving
    the processes still owed a message this round — is polled too: a dead
    pending worker fails the pool after a short grace period that lets any
    already-queued message from it drain first.
    """
    deadline = time.monotonic() + timeout
    dead_polls = 0
    while True:
        try:
            message = result_queue.get(timeout=1.0)
        except queue_module.Empty:
            owed = list(pending()) if pending is not None else list(processes)
            dead = [p for p in owed if not p.is_alive()]
            if dead:
                dead_polls += 1
                if dead_polls >= 3:
                    names = ", ".join(p.name for p in dead)
                    raise CampaignError(
                        f"worker process(es) {names} died without reporting; "
                        "aborting the pool"
                    )
            else:
                dead_polls = 0
            if time.monotonic() > deadline:
                raise CampaignError(
                    f"no worker made progress for {timeout:.0f}s; assuming a "
                    "deadlocked pool (raise worker_timeout for heavier "
                    "per-hour budgets)"
                )
            if not any(process.is_alive() for process in processes):
                raise CampaignError(
                    "every worker exited without reporting; see worker logs"
                )
            continue
        deadline = time.monotonic() + timeout
        if message[0] == "tick":
            continue
        return message


def finalize_parallel_result(reports: Sequence[WorkerReport],
                             coordinator: CentralCoordinator,
                             workers: int, sync_rounds: int,
                             elapsed_seconds: float, transport: str,
                             budget_policy: str = "even"
                             ) -> ParallelCampaignResult:
    """Merge worker reports and coordinator state into the campaign outcome.

    Shared by the in-process pool, the TCP pool and the distributed serve CLI
    so every deployment reports identical numbers for identical campaigns.
    """
    merged, shard_results = merge_worker_reports(list(reports))
    ordered = sorted(reports, key=lambda report: report.shard_id)
    snapshots = [obs.MetricsSnapshot.from_dict(report.telemetry)
                 for report in ordered if report.telemetry]
    telemetry = (obs.MetricsSnapshot.merge_all(snapshots).to_dict()
                 if snapshots else None)
    sync_stats = [
        ShardSyncStats(
            shard_id=report.shard_id,
            entries_shipped=report.entries_shipped,
            broadcast_entries_received=report.broadcast_entries_received,
            broadcast_entries_suppressed=report.broadcast_entries_suppressed,
            hourly_budgets=tuple(report.hourly_budgets),
        )
        for report in ordered
    ]
    return ParallelCampaignResult(
        merged=merged,
        shards=shard_results,
        workers=workers,
        sync_rounds=sync_rounds,
        elapsed_seconds=elapsed_seconds,
        central_index_size=len(coordinator.index),
        central_distinct_labels=coordinator.index.distinct_canonical_labels(),
        transport=transport,
        broadcast_entries_sent=coordinator.broadcast_entries_sent,
        broadcast_entries_suppressed=coordinator.broadcast_entries_suppressed,
        sync_stats=sync_stats,
        budget_policy=budget_policy,
        telemetry=telemetry,
    )


def run_parallel_shards(shards: Sequence[ShardSpec],
                        parallel: Optional[ParallelCampaignConfig] = None
                        ) -> ParallelCampaignResult:
    """Run shard campaigns in a real worker pool with central index sync.

    The coordinator owns the central :class:`GraphIndex` (the paper's index
    server).  Rounds are bulk-synchronous: at each configured hour boundary it
    collects one batch of (embedding, canonical label) pairs from every worker,
    merges them via :meth:`GraphIndex.add_embedding`, and broadcasts to each
    worker the entries contributed by the *other* workers (minus the ones that
    worker's known labels make redundant, when novelty pruning is on) — so
    with one worker a parallel run is bitwise-identical to the serial runner.

    With ``parallel.transport == "tcp"`` the coordinator is a real
    :class:`~repro.distributed.server.IndexServer` on a localhost socket and
    every worker connects through
    :class:`~repro.distributed.client.RemoteSyncTransport`; results are
    bit-identical to the ``"local"`` queue transport for the same seed.
    """
    if not shards:
        raise CampaignError("at least one shard is required")
    parallel = parallel or ParallelCampaignConfig(workers=len(shards))
    hours = shards[0].config.hours
    if any(spec.config.hours != hours for spec in shards):
        raise CampaignError("all shards must run the same number of hours")
    if parallel.transport not in ("local", "tcp"):
        raise CampaignError(
            f"unknown transport {parallel.transport!r}; expected 'local' or 'tcp'"
        )
    # Fail fast on a bad policy name, before any process is spawned; the
    # policy object itself lives with the coordinator.
    budget_policy = budget_policy_from_name(parallel.budget_policy)
    if parallel.transport == "tcp":
        # Same for the wire protocol: a typo'd protocol name or a key on the
        # pickle codec must not surface as N dead worker processes.
        codec_from_name(parallel.protocol, parallel.auth_key)
    initial_budgets = {spec.shard_id: spec.config.queries_per_hour
                       for spec in shards}
    sync_hours = sync_schedule(hours, parallel.sync_interval)
    context = (multiprocessing.get_context(parallel.start_method)
               if parallel.start_method else multiprocessing.get_context())
    heartbeat_interval = max(1.0, min(15.0, parallel.worker_timeout / 4))
    if parallel.transport == "tcp":
        return _run_shards_over_tcp(shards, parallel, sync_hours, context,
                                    heartbeat_interval, budget_policy)
    result_queue = context.Queue()
    broadcast_queues = {spec.shard_id: context.Queue() for spec in shards}
    processes = [
        context.Process(
            target=_worker_main,
            args=(spec, sync_hours, heartbeat_interval,
                  ("local", result_queue, broadcast_queues[spec.shard_id])),
            daemon=True,
            name=f"tqs-shard-{spec.shard_id}",
        )
        for spec in shards
    ]
    coordinator = CentralCoordinator(prune=parallel.prune_broadcasts,
                                     budget_policy=budget_policy,
                                     initial_budgets=initial_budgets)
    procs_by_shard = {spec.shard_id: process
                      for spec, process in zip(shards, processes)}
    reports: Dict[int, WorkerReport] = {}
    start = time.perf_counter()
    for process in processes:
        process.start()
    round_telemetry: Dict[int, Dict[str, Any]] = {}
    try:
        for round_hour in sync_hours:
            batches: Dict[int, List[IndexEntry]] = {}
            while len(batches) < len(shards):
                message = _receive(result_queue, processes,
                                   parallel.worker_timeout,
                                   pending=lambda: [
                                       procs_by_shard[spec.shard_id]
                                       for spec in shards
                                       if spec.shard_id not in batches
                                   ])
                if message[0] == "error":
                    raise CampaignError(
                        f"worker {message[1]} failed:\n{message[2]}"
                    )
                if message[0] != "sync" or message[2] != round_hour:
                    raise CampaignError(
                        f"protocol violation: expected sync@{round_hour}, "
                        f"got {message[0]}@{message[2] if len(message) > 2 else '?'}"
                    )
                batches[message[1]] = message[3]
                if len(message) > 4 and message[4]:
                    round_telemetry[message[1]] = message[4]
            broadcasts = coordinator.complete_round(batches)
            for spec in shards:
                broadcast_queues[spec.shard_id].put(broadcasts[spec.shard_id])
            if parallel.live_stats and round_telemetry:
                merged_snapshot = obs.MetricsSnapshot.merge_all(
                    obs.MetricsSnapshot.from_dict(snapshot)
                    for snapshot in round_telemetry.values()
                )
                print(
                    obs.render_live_line(merged_snapshot,
                                         time.perf_counter() - start,
                                         hour=round_hour,
                                         prefix=f"pool[{len(shards)}w]"),
                    file=sys.stderr, flush=True,
                )
        while len(reports) < len(shards):
            message = _receive(result_queue, processes, parallel.worker_timeout,
                               pending=lambda: [
                                   procs_by_shard[spec.shard_id]
                                   for spec in shards
                                   if spec.shard_id not in reports
                               ])
            if message[0] == "error":
                raise CampaignError(f"worker {message[1]} failed:\n{message[2]}")
            if message[0] != "done":
                raise CampaignError(
                    f"protocol violation: expected done, got {message[0]}"
                )
            report: WorkerReport = message[2]
            reports[report.shard_id] = report
            coordinator.absorb(report.unsynced_entries)
    finally:
        for process in processes:
            process.join(timeout=5.0)
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
    elapsed = time.perf_counter() - start
    return finalize_parallel_result(list(reports.values()), coordinator,
                                    workers=len(shards),
                                    sync_rounds=len(sync_hours),
                                    elapsed_seconds=elapsed,
                                    transport="local",
                                    budget_policy=parallel.budget_policy)


def _run_shards_over_tcp(shards: Sequence[ShardSpec],
                         parallel: ParallelCampaignConfig,
                         sync_hours: Tuple[int, ...], context,
                         heartbeat_interval: float,
                         budget_policy: BudgetPolicy) -> ParallelCampaignResult:
    """The ``transport="tcp"`` pool: an in-process IndexServer + TCP workers.

    Exercises the full distributed stack (framing, registration, barrier
    rounds, novelty pruning, report upload) on localhost while keeping the
    one-call ``run_parallel_*_campaign`` interface.
    """
    from repro.distributed.server import IndexServer

    io_timeout = max(60.0, parallel.worker_timeout * 2)
    server = IndexServer(shards=shards, sync_hours=sync_hours,
                         host=parallel.tcp_host, port=parallel.tcp_port,
                         prune=parallel.prune_broadcasts,
                         round_timeout=parallel.worker_timeout,
                         budget_policy=budget_policy,
                         protocol=parallel.protocol,
                         auth_key=parallel.auth_key)
    server.start()
    start = time.perf_counter()
    processes = [
        context.Process(
            target=_worker_main,
            args=(spec, sync_hours, heartbeat_interval,
                  ("tcp", server.host, server.port, io_timeout,
                   parallel.protocol, parallel.auth_key)),
            daemon=True,
            name=f"tqs-shard-{spec.shard_id}",
        )
        for spec in shards
    ]
    try:
        for process in processes:
            process.start()
        while not server.wait(0.5):
            if server.failure is not None:
                raise CampaignError(server.failure)
            if not any(process.is_alive() for process in processes):
                # Workers are gone; give in-flight frames a moment to land.
                if server.wait(2.0):
                    break
                raise CampaignError(
                    server.failure
                    or "every worker exited without reporting; see worker logs"
                )
        if server.failure is not None:
            raise CampaignError(server.failure)
    finally:
        for process in processes:
            process.join(timeout=5.0)
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        server.stop()
    elapsed = time.perf_counter() - start
    return finalize_parallel_result(list(server.reports.values()),
                                    server.coordinator, workers=len(shards),
                                    sync_rounds=len(sync_hours),
                                    elapsed_seconds=elapsed, transport="tcp",
                                    budget_policy=parallel.budget_policy)


# --------------------------------------------------------- campaign wrappers


def build_shard_specs(kind: str, config: CampaignConfig, workers: int,
                      dialect: str = "SimMySQL", baseline: str = "",
                      backend: str = "sqlite",
                      batch_size: int = 1) -> List[ShardSpec]:
    """Split one campaign into per-worker :class:`ShardSpec` assignments.

    The single source of truth for shard construction: the in-process
    wrappers below and the ``python -m repro.distributed serve`` CLI both use
    it, so a distributed deployment runs exactly the shards the local pool
    would for the same campaign arguments.
    """
    if kind not in ("tqs", "baseline", "differential"):
        raise CampaignError(
            f"unknown campaign kind {kind!r}; "
            "expected 'tqs', 'baseline' or 'differential'"
        )
    if kind == "baseline" and not baseline:
        raise CampaignError("baseline campaigns need a baseline name")
    return [
        ShardSpec(shard_id=shard_id, kind=kind, config=shard_config,
                  dialect=dialect, baseline=baseline, backend=backend,
                  batch_size=batch_size)
        for shard_id, shard_config in enumerate(
            shard_campaign_configs(config, workers))
    ]


def run_parallel_tqs_campaign(dialect, config: Optional[CampaignConfig] = None,
                              parallel: Optional[ParallelCampaignConfig] = None
                              ) -> ParallelCampaignResult:
    """Shard one TQS campaign against a simulated DBMS across worker processes."""
    config = config or CampaignConfig()
    parallel = parallel or ParallelCampaignConfig()
    shards = build_shard_specs("tqs", config, parallel.workers,
                               dialect=dialect.name)
    return run_parallel_shards(shards, parallel)


def run_parallel_baseline_campaign(baseline_name: str, dialect,
                                   config: Optional[CampaignConfig] = None,
                                   parallel: Optional[ParallelCampaignConfig] = None
                                   ) -> ParallelCampaignResult:
    """Shard one baseline campaign (PQS / TLP / NoRec) across worker processes."""
    config = config or CampaignConfig()
    parallel = parallel or ParallelCampaignConfig()
    shards = build_shard_specs("baseline", config, parallel.workers,
                               dialect=dialect.name, baseline=baseline_name)
    return run_parallel_shards(shards, parallel)


def run_parallel_differential_campaign(backend_name: str,
                                       config: Optional[CampaignConfig] = None,
                                       parallel: Optional[ParallelCampaignConfig] = None
                                       ) -> ParallelCampaignResult:
    """Shard one differential campaign against a named backend across processes.

    Every worker deploys its own DSG-generated database replica into its own
    backend instance (e.g. an in-memory SQLite connection per process), so
    there is no shared connection to contend on.
    """
    config = config or CampaignConfig()
    parallel = parallel or ParallelCampaignConfig()
    shards = build_shard_specs("differential", config, parallel.workers,
                               backend=backend_name,
                               batch_size=parallel.pipeline_batch_size)
    return run_parallel_shards(shards, parallel)


# ------------------------------------------------------------------ the CLI


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.core.parallel`` — run a long campaign on many cores."""
    from repro import ALL_DIALECTS, dialect_by_name, registered_executors
    from repro.analysis.reporting import render_table, render_worker_pool

    parser = argparse.ArgumentParser(
        prog="python -m repro.core.parallel",
        description="Run a TQS testing campaign sharded across worker processes "
                    "with central KQE index synchronization.",
    )
    parser.add_argument("--kind", choices=("tqs", "baseline", "differential"),
                        default="tqs", help="campaign kind (default: tqs)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker process count (default: 4)")
    parser.add_argument("--hours", type=int, default=24,
                        help="simulated hours (default: 24)")
    parser.add_argument("--queries-per-hour", type=int, default=12,
                        help="total generation budget per hour, across all "
                             "workers (default: 12)")
    parser.add_argument("--dataset", default="shopping",
                        help="DSG dataset name (default: shopping)")
    parser.add_argument("--dataset-rows", type=int, default=150,
                        help="wide-table rows per shard (default: 150)")
    parser.add_argument("--seed", type=int, default=5,
                        help="campaign seed; worker seeds are derived from it")
    parser.add_argument("--sync-interval", type=int, default=1,
                        help="hours between KQE index syncs; 0 disables "
                             "(default: 1)")
    parser.add_argument("--dialect", default="SimMySQL",
                        choices=[profile.name for profile in ALL_DIALECTS],
                        help="simulated DBMS for tqs/baseline campaigns")
    parser.add_argument("--baseline", default="NoRec",
                        help="baseline name for --kind baseline (default: NoRec)")
    parser.add_argument("--backend", default="sqlite",
                        help="backend name for --kind differential: 'sqlite', "
                             "'sim' or 'sim:<Dialect>' (default: sqlite)")
    parser.add_argument("--worker-timeout", type=float, default=300.0,
                        help="seconds without hearing from any worker before "
                             "the pool is declared dead (default: 300)")
    parser.add_argument("--transport", choices=("local", "tcp"),
                        default="local",
                        help="sync transport: in-process queues or a "
                             "localhost TCP index server (default: local)")
    parser.add_argument("--protocol", choices=("json", "pickle"),
                        default="json",
                        help="wire encoding for --transport tcp: 'json' is "
                             "protocol v2 (authenticated JSON frames), "
                             "'pickle' the legacy trusted-host framing "
                             "(default: json)")
    parser.add_argument("--auth-key-file", default="",
                        help="file holding the shared secret that "
                             "authenticates protocol v2 frames (json "
                             "protocol only)")
    parser.add_argument("--no-prune", action="store_true",
                        help="disable novelty pruning: rebroadcast every "
                             "other worker's entries, not just label-novel "
                             "ones")
    parser.add_argument("--budget-policy", default="even",
                        choices=registered_budget_policies(),
                        help="per-hour budget split across shards: 'even' "
                             "(fixed) or 'adaptive' (rebalanced toward "
                             "shards discovering novel structures faster)")
    parser.add_argument("--batch-size", type=int, default=1,
                        help="execution-pipeline batch size inside each "
                             "differential worker; >1 overlaps target and "
                             "reference execution (default: 1)")
    parser.add_argument("--live-stats", action="store_true",
                        help="print a merged progress line (queries/s, novel "
                             "labels, bugs, phase mix) to stderr at every "
                             "sync round")
    parser.add_argument("--executor", default="row",
                        choices=registered_executors(),
                        help="reference execution strategy for differential "
                             "campaigns: 'row' (classic interpreter) or "
                             "'columnar' (vectorized) (default: row)")
    parser.add_argument("--query-cache", action="store_true",
                        help="memoize rendered SQL and reference results in "
                             "a per-shard content-addressed cache (verdicts "
                             "stay bit-identical)")
    parser.add_argument("--setop-probability", type=float, default=0.0,
                        help="probability a generated statement becomes a "
                             "UNION / UNION ALL / INTERSECT / EXCEPT "
                             "compound (differential campaigns; default: 0)")
    parser.add_argument("--scalar-subquery-probability", type=float,
                        default=0.0,
                        help="probability of injecting an uncorrelated "
                             "scalar subquery into a generated query "
                             "(default: 0)")
    parser.add_argument("--cte-probability", type=float, default=0.0,
                        help="probability a generated statement is wrapped "
                             "in a WITH clause (default: 0)")
    args = parser.parse_args(argv)

    config = CampaignConfig(
        dataset=args.dataset,
        dataset_rows=args.dataset_rows,
        hours=args.hours,
        queries_per_hour=args.queries_per_hour,
        seed=args.seed,
        reference_executor=args.executor,
        use_query_cache=args.query_cache,
        setop_probability=args.setop_probability,
        scalar_subquery_probability=args.scalar_subquery_probability,
        cte_probability=args.cte_probability,
    )
    parallel = ParallelCampaignConfig(
        workers=args.workers,
        sync_interval=args.sync_interval,
        worker_timeout=args.worker_timeout,
        transport=args.transport,
        protocol=args.protocol,
        auth_key=load_auth_key(args.auth_key_file) if args.auth_key_file else None,
        prune_broadcasts=not args.no_prune,
        budget_policy=args.budget_policy,
        pipeline_batch_size=args.batch_size,
        live_stats=args.live_stats,
    )
    if args.kind == "tqs":
        outcome = run_parallel_tqs_campaign(dialect_by_name(args.dialect),
                                            config, parallel)
    elif args.kind == "baseline":
        outcome = run_parallel_baseline_campaign(args.baseline,
                                                 dialect_by_name(args.dialect),
                                                 config, parallel)
    else:
        outcome = run_parallel_differential_campaign(args.backend, config,
                                                     parallel)
    print(render_worker_pool(outcome))
    final = outcome.merged.final
    print()
    print(render_table(
        ["hour", "queries", "isomorphic sets", "bugs", "bug types", "rejected"],
        [[s.hour, s.queries_generated, s.isomorphic_sets, s.bug_count,
          s.bug_type_count, s.generations_rejected]
         for s in outcome.merged.samples],
        title=f"Merged per-hour series ({outcome.merged.tool} vs "
              f"{outcome.merged.dbms})",
    ))
    print()
    assert outcome.merged.bug_log is not None
    print(outcome.merged.bug_log.summary())
    print(f"{final.queries_generated} queries in {outcome.elapsed_seconds:.1f}s "
          f"({outcome.queries_per_second:.1f} q/s) across {outcome.workers} "
          f"workers over {outcome.transport} transport "
          f"({outcome.budget_policy} budgets), "
          f"{outcome.sync_rounds} sync rounds, central index: "
          f"{outcome.central_index_size} entries / "
          f"{outcome.central_distinct_labels} distinct structures, "
          f"broadcasts: {outcome.broadcast_entries_sent} entries sent, "
          f"{outcome.broadcast_entries_suppressed} suppressed by novelty "
          f"pruning")
    if outcome.telemetry is not None:
        print()
        print(obs.render_phase_breakdown(
            obs.MetricsSnapshot.from_dict(outcome.telemetry)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    # Delegate to the canonical module object (runpy executes a separate
    # ``__main__`` copy of this file): shard specs must pickle as
    # ``repro.core.parallel.ShardSpec`` for spawn-based start methods.
    from repro.core.parallel import main as _canonical_main

    raise SystemExit(_canonical_main())
