"""Parallel query-space exploration (paper §4 last paragraph, Figure 10).

The paper parallelizes TQS by keeping the KQE graph index on a central server
while each client owns a database replica and a DSG process; the only shared
cost is synchronizing the index.  This module provides both reproductions of
that design:

* :class:`ParallelSearchSimulator` — the original in-process model: every
  simulated client runs its own generator against its own database copy, every
  generated query is pushed through the single shared graph index, and the
  metric reported is queries generated per simulated hour, as in Figure 10.

* The **real worker pool** (:func:`run_parallel_shards` and the
  ``run_parallel_*_campaign`` wrappers) — campaigns sharded across
  ``multiprocessing`` worker processes by (derived seed, dataset,
  dialect/backend).  Workers run the same shared iteration loop as the serial
  runners (:func:`~repro.core.campaign.run_campaign_loop`); at hour boundaries
  they ship batches of (embedding, canonical label) pairs to the coordinator,
  which merges them into a central :class:`~repro.kqe.graph_index.GraphIndex`
  and broadcasts the other workers' entries back — the paper's central-index
  synchronization, bulk-synchronous so runs are deterministic.  The coordinator
  merges per-worker bug logs with cross-worker bug-type deduplication and
  rebuilds the per-hour series contract on the merged result.

Run long campaigns from the command line::

    python -m repro.core.parallel --workers 4 --hours 24 --queries-per-hour 12
"""

from __future__ import annotations

import argparse
import hashlib
import multiprocessing
import queue as queue_module
import random
import threading
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bug_report import BugIncident, BugLog
from repro.core.campaign import (
    CampaignConfig,
    CampaignResult,
    HourRecord,
    HourlySample,
    build_baseline_tester,
    build_differential_tester,
    build_tqs_tester,
    run_campaign_loop,
    tqs_variant_name,
)
from repro.dsg.pipeline import DSG, DSGConfig
from repro.errors import CampaignError, GenerationError
from repro.kqe.explorer import KQE
from repro.kqe.graph_index import GraphIndex

# Serialized index entries: (embedding as a plain list, canonical label).
IndexEntry = Tuple[List[float], str]


# =========================================================================
# The in-process simulator (kept for the Figure 10 shape reproduction)
# =========================================================================


@dataclass
class ParallelSearchResult:
    """Outcome of one parallel-search simulation."""

    clients: int
    queries_generated: int
    isomorphic_sets: int
    sync_operations: int
    elapsed_seconds: float

    @property
    def queries_per_second(self) -> float:
        """Aggregate generation throughput."""
        if self.elapsed_seconds <= 0:
            return float(self.queries_generated)
        return self.queries_generated / self.elapsed_seconds


@dataclass
class ParallelSearchConfig:
    """Configuration of the simulated deployment."""

    dataset: str = "shopping"
    dataset_rows: int = 120
    per_client_budget: int = 120
    sync_cost_fraction: float = 0.04
    seed: int = 19


class ParallelSearchSimulator:
    """Simulates N clients sharing one central KQE graph index."""

    def __init__(self, config: Optional[ParallelSearchConfig] = None) -> None:
        self.config = config or ParallelSearchConfig()

    def run(self, clients: int) -> ParallelSearchResult:
        """Simulate *clients* parallel DSG clients for one budget round."""
        if clients < 1:
            raise ValueError("at least one client is required")
        config = self.config
        # One shared index (central server), one DSG replica per client.
        replicas: List[DSG] = []
        for client in range(clients):
            replicas.append(
                DSG(
                    DSGConfig(
                        dataset=config.dataset,
                        dataset_rows=config.dataset_rows,
                        seed=config.seed + client,
                    )
                )
            )
        server_kqe = KQE(replicas[0].ndb.schema, rng=random.Random(config.seed))
        start = time.perf_counter()
        generated = 0
        sync_operations = 0
        for client_index, dsg in enumerate(replicas):
            for _ in range(config.per_client_budget):
                try:
                    query = dsg.generate_query(
                        extension_chooser=server_kqe.extension_chooser
                    )
                except GenerationError:
                    continue
                generated += 1
                # Central synchronization: every client must register its query
                # graph with the server before continuing; the extra clients pay
                # the (small) coordination overhead the paper mentions.
                server_kqe.register(query)
                sync_operations += 1
        elapsed = time.perf_counter() - start
        # Account for the coordination overhead of a real deployment: each
        # additional client adds a fixed fraction of per-query latency to the
        # serialized section on the server.
        elapsed *= 1.0 + config.sync_cost_fraction * (clients - 1)
        return ParallelSearchResult(
            clients=clients,
            queries_generated=generated,
            isomorphic_sets=server_kqe.explored_isomorphic_sets,
            sync_operations=sync_operations,
            elapsed_seconds=elapsed,
        )

    def sweep(self, max_clients: int = 5) -> List[ParallelSearchResult]:
        """Run the Figure 10 sweep over 1..max_clients clients."""
        return [self.run(clients) for clients in range(1, max_clients + 1)]


# =========================================================================
# The real multi-process worker pool
# =========================================================================


def derive_worker_seed(campaign_seed: int, shard_id: int) -> int:
    """A deterministic, well-separated per-shard seed.

    Hash-derived (not ``seed + shard_id``) so neighbouring shards do not run
    correlated DSG pipelines — shard 1 with seed 5 must not equal shard 0 with
    seed 6.  Stable across processes and Python versions (unlike ``hash``).
    """
    digest = hashlib.sha256(f"tqs-shard:{campaign_seed}:{shard_id}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def shard_campaign_configs(config: CampaignConfig, workers: int) -> List[CampaignConfig]:
    """Split one campaign budget across *workers* shard configurations.

    Every shard keeps the full number of hours (so per-hour series line up for
    merging) but receives ``queries_per_hour / workers`` of the generation
    budget (remainder spread over the first shards) and a derived seed.
    """
    if workers < 1:
        raise CampaignError("at least one worker is required")
    # A shard with a zero budget would still pay a full DSG build and block
    # every sync barrier while contributing nothing; never create one.
    workers = max(1, min(workers, config.queries_per_hour))
    if workers == 1:
        # A 1-worker pool must be bitwise-identical to the serial runner on
        # the same config, so the campaign seed passes through unchanged.
        return [replace(config)]
    base, remainder = divmod(config.queries_per_hour, workers)
    shards = []
    for shard_id in range(workers):
        shards.append(
            replace(
                config,
                queries_per_hour=base + (1 if shard_id < remainder else 0),
                seed=derive_worker_seed(config.seed, shard_id),
            )
        )
    return shards


@dataclass(frozen=True)
class ShardSpec:
    """One worker's assignment: what to test, against what, with which seed.

    Plain strings name the dialect / baseline / backend so the spec pickles
    across process boundaries; the worker materializes the actual objects.
    """

    shard_id: int
    kind: str  # "tqs" | "baseline" | "differential"
    config: CampaignConfig
    dialect: str = "SimMySQL"
    baseline: str = ""          # baseline name when kind == "baseline"
    backend: str = "sqlite"     # backend name when kind == "differential"


@dataclass
class ParallelCampaignConfig:
    """Knobs of the multi-process deployment."""

    workers: int = 4
    sync_interval: int = 1       # simulated hours between index syncs; 0 = never
    # Seconds without hearing from ANY worker (liveness heartbeats, syncs,
    # results) before the pool is declared dead and the run fails fast.
    worker_timeout: float = 300.0
    start_method: Optional[str] = None  # None = platform default ("fork" on Linux)


@dataclass
class WorkerReport:
    """Everything a worker ships home when its shard completes."""

    shard_id: int
    tool: str
    dbms: str
    dataset: str
    samples: List[HourlySample]
    hourly_new_labels: List[List[str]]
    hourly_incidents: List[List[BugIncident]]
    unsynced_entries: List[IndexEntry] = field(default_factory=list)


@dataclass
class ParallelCampaignResult:
    """Merged outcome of one multi-process campaign."""

    merged: CampaignResult
    shards: List[CampaignResult]
    workers: int
    sync_rounds: int
    elapsed_seconds: float
    central_index_size: int
    central_distinct_labels: int

    @property
    def queries_per_second(self) -> float:
        """Aggregate generation throughput over wall-clock time."""
        generated = self.merged.final.queries_generated
        if self.elapsed_seconds <= 0:
            return float(generated)
        return generated / self.elapsed_seconds


def _sync_hours(hours: int, sync_interval: int) -> Tuple[int, ...]:
    """The hour boundaries at which workers and coordinator rendezvous.

    The final hour is excluded — there is no further generation a sync could
    inform, and skipping it removes one pointless barrier.
    """
    if sync_interval <= 0:
        return ()
    return tuple(h for h in range(1, hours) if h % sync_interval == 0)


def _build_shard_tester(spec: ShardSpec):
    """Materialize the tester (and display metadata) for one shard."""
    from repro.baselines import make_baseline
    from repro.engine.dialects import dialect_by_name

    if spec.kind == "tqs":
        dialect = dialect_by_name(spec.dialect)
        tester = build_tqs_tester(dialect, spec.config)
        return tester, tqs_variant_name(spec.config), dialect.name
    if spec.kind == "baseline":
        dialect = dialect_by_name(spec.dialect)
        tester = build_baseline_tester(make_baseline(spec.baseline), dialect,
                                       spec.config)
        return tester, tester.name, dialect.name
    if spec.kind == "differential":
        from repro.backends import backend_from_name

        backend = backend_from_name(spec.backend)
        tester = build_differential_tester(backend, spec.config)
        return tester, "TQS-differential", backend.name
    raise CampaignError(f"unknown shard kind {spec.kind!r}")


def _shard_index(tester) -> Optional[GraphIndex]:
    """The tester's local KQE graph index, when it runs with KQE guidance."""
    kqe = getattr(tester, "kqe", None)
    return kqe.index if kqe is not None else None


def _await_broadcast(from_coordinator) -> List[IndexEntry]:
    """Block at the sync barrier until the coordinator broadcasts.

    The barrier has no fixed deadline of its own: how long it takes depends on
    the *slowest peer's* hour, which a worker cannot bound.  Deadlock
    arbitration belongs to the coordinator (which sees heartbeats from every
    worker); here we only bail out if the coordinator process itself died,
    so orphaned workers never hang forever.
    """
    parent = multiprocessing.parent_process()
    while True:
        try:
            return from_coordinator.get(timeout=5.0)
        except queue_module.Empty:
            if parent is not None and not parent.is_alive():
                raise CampaignError("coordinator process died during sync")


def _worker_main(spec: ShardSpec, sync_hours: Tuple[int, ...],
                 heartbeat_interval: float, to_coordinator,
                 from_coordinator) -> None:
    """Worker process body: run one shard, synchronizing at hour boundaries."""
    import numpy as np

    # Liveness heartbeat on a daemon thread: it keeps ticking through the DSG
    # build and arbitrarily long hours, so the coordinator's progress deadline
    # measures worker *death*, never workload size.  (A worker parked at the
    # sync barrier also ticks — barrier arbitration is the coordinator's job.)
    stop_heartbeat = threading.Event()

    def _heartbeat() -> None:
        while not stop_heartbeat.wait(heartbeat_interval):
            to_coordinator.put(("tick", spec.shard_id))

    heartbeat = threading.Thread(target=_heartbeat, daemon=True,
                                 name=f"tqs-heartbeat-{spec.shard_id}")
    heartbeat.start()
    try:
        tester, tool, dbms = _build_shard_tester(spec)
        index = _shard_index(tester)
        records: List[HourRecord] = []
        watermark = [len(index)] if index is not None else [0]

        def on_hour(record: HourRecord) -> None:
            records.append(record)
            if record.hour not in sync_hours:
                return
            entries: List[IndexEntry] = []
            if index is not None:
                entries = [
                    (vector.tolist(), label)
                    for vector, label in index.entries_since(watermark[0])
                ]
            to_coordinator.put(("sync", spec.shard_id, record.hour, entries))
            # Barrier: block until the coordinator broadcasts the other
            # workers' entries for this round.  Bulk-synchronous rounds keep
            # the run deterministic — local state never depends on timing.
            broadcast = _await_broadcast(from_coordinator)
            if index is not None:
                for vector, label in broadcast:
                    index.add_embedding(np.asarray(vector, dtype=np.float64),
                                        label)
                watermark[0] = len(index)

        result = CampaignResult(tool="", dbms="", dataset=spec.config.dataset)
        try:
            run_campaign_loop(tester, result, spec.config.hours,
                              spec.config.queries_per_hour, on_hour=on_hour)
        finally:
            if spec.kind == "differential":
                getattr(tester, "backend").close()
        unsynced: List[IndexEntry] = []
        if index is not None:
            unsynced = [
                (vector.tolist(), label)
                for vector, label in index.entries_since(watermark[0])
            ]
        report = WorkerReport(
            shard_id=spec.shard_id,
            tool=tool,
            dbms=dbms,
            dataset=spec.config.dataset,
            samples=result.samples,
            hourly_new_labels=[record.new_labels for record in records],
            hourly_incidents=[record.new_incidents for record in records],
            unsynced_entries=unsynced,
        )
        stop_heartbeat.set()
        to_coordinator.put(("done", spec.shard_id, report))
    except BaseException:  # pragma: no cover - exercised via deadlock tests
        stop_heartbeat.set()
        to_coordinator.put(("error", spec.shard_id, traceback.format_exc()))


def merge_worker_reports(reports: Sequence[WorkerReport]
                         ) -> Tuple[CampaignResult, List[CampaignResult]]:
    """Merge per-shard reports into one campaign result plus per-shard views.

    The merged per-hour series keep the serial contract: every cumulative
    metric is monotone, ``isomorphic_sets`` is the size of the union of label
    sets across workers at each hour, and bug counts come from replaying every
    worker's incidents hour by hour through one :class:`BugLog` (so the same
    (root cause, structure) pair found by two workers counts once).
    """
    if not reports:
        raise CampaignError("no worker reports to merge")
    reports = sorted(reports, key=lambda report: report.shard_id)
    hours = len(reports[0].samples)
    if any(len(report.samples) != hours for report in reports):
        raise CampaignError("shards disagree on campaign length; cannot merge")
    merged_log = BugLog()
    union_labels: set = set()
    merged_samples: List[HourlySample] = []
    for index in range(hours):
        for report in reports:
            union_labels.update(report.hourly_new_labels[index])
            for incident in report.hourly_incidents[index]:
                merged_log.record(incident)
        merged_samples.append(
            HourlySample(
                hour=index + 1,
                queries_generated=sum(
                    r.samples[index].queries_generated for r in reports),
                queries_executed=sum(
                    r.samples[index].queries_executed for r in reports),
                isomorphic_sets=len(union_labels),
                bug_count=merged_log.bug_count,
                bug_type_count=merged_log.bug_type_count,
                generations_rejected=sum(
                    r.samples[index].generations_rejected for r in reports),
            )
        )
    first = reports[0]
    merged = CampaignResult(tool=first.tool, dbms=first.dbms,
                            dataset=first.dataset, samples=merged_samples,
                            bug_log=merged_log)
    shard_results: List[CampaignResult] = []
    for report in reports:
        shard_log = BugLog()
        for incidents in report.hourly_incidents:
            for incident in incidents:
                shard_log.record(incident)
        shard_results.append(
            CampaignResult(tool=report.tool, dbms=report.dbms,
                           dataset=report.dataset, samples=report.samples,
                           bug_log=shard_log)
        )
    return merged, shard_results


def _receive(result_queue, processes, timeout: float):
    """One protocol message from any worker, failing fast on a dead pool.

    ``tick`` heartbeats (sent by a daemon thread in every live worker) are
    consumed here and reset the silence deadline, so a pool that is merely
    slow — a long DSG build, a heavy hour — is never mistaken for a dead one:
    the deadline only fires when *no worker process* has been heard from for
    *timeout* seconds, i.e. when the pool has actually died.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            message = result_queue.get(timeout=1.0)
        except queue_module.Empty:
            if time.monotonic() > deadline:
                raise CampaignError(
                    f"no worker made progress for {timeout:.0f}s; assuming a "
                    "deadlocked pool (raise worker_timeout for heavier "
                    "per-hour budgets)"
                )
            if not any(process.is_alive() for process in processes):
                raise CampaignError(
                    "every worker exited without reporting; see worker logs"
                )
            continue
        deadline = time.monotonic() + timeout
        if message[0] == "tick":
            continue
        return message


def run_parallel_shards(shards: Sequence[ShardSpec],
                        parallel: Optional[ParallelCampaignConfig] = None
                        ) -> ParallelCampaignResult:
    """Run shard campaigns in a real worker pool with central index sync.

    The coordinator owns the central :class:`GraphIndex` (the paper's index
    server).  Rounds are bulk-synchronous: at each configured hour boundary it
    collects one batch of (embedding, canonical label) pairs from every worker,
    merges them via :meth:`GraphIndex.add_embedding`, and broadcasts to each
    worker the entries contributed by the *other* workers — so with one worker
    a parallel run is bitwise-identical to the serial runner.
    """
    if not shards:
        raise CampaignError("at least one shard is required")
    parallel = parallel or ParallelCampaignConfig(workers=len(shards))
    hours = shards[0].config.hours
    if any(spec.config.hours != hours for spec in shards):
        raise CampaignError("all shards must run the same number of hours")
    sync_hours = _sync_hours(hours, parallel.sync_interval)
    context = (multiprocessing.get_context(parallel.start_method)
               if parallel.start_method else multiprocessing.get_context())
    heartbeat_interval = max(1.0, min(15.0, parallel.worker_timeout / 4))
    result_queue = context.Queue()
    broadcast_queues = {spec.shard_id: context.Queue() for spec in shards}
    processes = [
        context.Process(
            target=_worker_main,
            args=(spec, sync_hours, heartbeat_interval, result_queue,
                  broadcast_queues[spec.shard_id]),
            daemon=True,
            name=f"tqs-shard-{spec.shard_id}",
        )
        for spec in shards
    ]
    central_index = GraphIndex()
    reports: Dict[int, WorkerReport] = {}
    start = time.perf_counter()
    for process in processes:
        process.start()
    try:
        for round_hour in sync_hours:
            batches: Dict[int, List[IndexEntry]] = {}
            while len(batches) < len(shards):
                message = _receive(result_queue, processes,
                                   parallel.worker_timeout)
                if message[0] == "error":
                    raise CampaignError(
                        f"worker {message[1]} failed:\n{message[2]}"
                    )
                if message[0] != "sync" or message[2] != round_hour:
                    raise CampaignError(
                        f"protocol violation: expected sync@{round_hour}, "
                        f"got {message[0]}@{message[2] if len(message) > 2 else '?'}"
                    )
                batches[message[1]] = message[3]
            for shard_id in sorted(batches):
                for vector, label in batches[shard_id]:
                    central_index.add_embedding(vector, label)
            for spec in shards:
                others = [
                    entry
                    for shard_id in sorted(batches)
                    if shard_id != spec.shard_id
                    for entry in batches[shard_id]
                ]
                broadcast_queues[spec.shard_id].put(others)
        while len(reports) < len(shards):
            message = _receive(result_queue, processes, parallel.worker_timeout)
            if message[0] == "error":
                raise CampaignError(f"worker {message[1]} failed:\n{message[2]}")
            if message[0] != "done":
                raise CampaignError(
                    f"protocol violation: expected done, got {message[0]}"
                )
            report: WorkerReport = message[2]
            reports[report.shard_id] = report
            for vector, label in report.unsynced_entries:
                central_index.add_embedding(vector, label)
    finally:
        for process in processes:
            process.join(timeout=5.0)
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
    elapsed = time.perf_counter() - start
    merged, shard_results = merge_worker_reports(list(reports.values()))
    return ParallelCampaignResult(
        merged=merged,
        shards=shard_results,
        workers=len(shards),
        sync_rounds=len(sync_hours),
        elapsed_seconds=elapsed,
        central_index_size=len(central_index),
        central_distinct_labels=central_index.distinct_canonical_labels(),
    )


# --------------------------------------------------------- campaign wrappers


def run_parallel_tqs_campaign(dialect, config: Optional[CampaignConfig] = None,
                              parallel: Optional[ParallelCampaignConfig] = None
                              ) -> ParallelCampaignResult:
    """Shard one TQS campaign against a simulated DBMS across worker processes."""
    config = config or CampaignConfig()
    parallel = parallel or ParallelCampaignConfig()
    shards = [
        ShardSpec(shard_id=shard_id, kind="tqs", config=shard_config,
                  dialect=dialect.name)
        for shard_id, shard_config in enumerate(
            shard_campaign_configs(config, parallel.workers))
    ]
    return run_parallel_shards(shards, parallel)


def run_parallel_baseline_campaign(baseline_name: str, dialect,
                                   config: Optional[CampaignConfig] = None,
                                   parallel: Optional[ParallelCampaignConfig] = None
                                   ) -> ParallelCampaignResult:
    """Shard one baseline campaign (PQS / TLP / NoRec) across worker processes."""
    config = config or CampaignConfig()
    parallel = parallel or ParallelCampaignConfig()
    shards = [
        ShardSpec(shard_id=shard_id, kind="baseline", config=shard_config,
                  dialect=dialect.name, baseline=baseline_name)
        for shard_id, shard_config in enumerate(
            shard_campaign_configs(config, parallel.workers))
    ]
    return run_parallel_shards(shards, parallel)


def run_parallel_differential_campaign(backend_name: str,
                                       config: Optional[CampaignConfig] = None,
                                       parallel: Optional[ParallelCampaignConfig] = None
                                       ) -> ParallelCampaignResult:
    """Shard one differential campaign against a named backend across processes.

    Every worker deploys its own DSG-generated database replica into its own
    backend instance (e.g. an in-memory SQLite connection per process), so
    there is no shared connection to contend on.
    """
    config = config or CampaignConfig()
    parallel = parallel or ParallelCampaignConfig()
    shards = [
        ShardSpec(shard_id=shard_id, kind="differential", config=shard_config,
                  backend=backend_name)
        for shard_id, shard_config in enumerate(
            shard_campaign_configs(config, parallel.workers))
    ]
    return run_parallel_shards(shards, parallel)


# ------------------------------------------------------------------ the CLI


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.core.parallel`` — run a long campaign on many cores."""
    from repro.analysis.reporting import render_table, render_worker_pool
    from repro.engine.dialects import ALL_DIALECTS, dialect_by_name

    parser = argparse.ArgumentParser(
        prog="python -m repro.core.parallel",
        description="Run a TQS testing campaign sharded across worker processes "
                    "with central KQE index synchronization.",
    )
    parser.add_argument("--kind", choices=("tqs", "baseline", "differential"),
                        default="tqs", help="campaign kind (default: tqs)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker process count (default: 4)")
    parser.add_argument("--hours", type=int, default=24,
                        help="simulated hours (default: 24)")
    parser.add_argument("--queries-per-hour", type=int, default=12,
                        help="total generation budget per hour, across all "
                             "workers (default: 12)")
    parser.add_argument("--dataset", default="shopping",
                        help="DSG dataset name (default: shopping)")
    parser.add_argument("--dataset-rows", type=int, default=150,
                        help="wide-table rows per shard (default: 150)")
    parser.add_argument("--seed", type=int, default=5,
                        help="campaign seed; worker seeds are derived from it")
    parser.add_argument("--sync-interval", type=int, default=1,
                        help="hours between KQE index syncs; 0 disables "
                             "(default: 1)")
    parser.add_argument("--dialect", default="SimMySQL",
                        choices=[profile.name for profile in ALL_DIALECTS],
                        help="simulated DBMS for tqs/baseline campaigns")
    parser.add_argument("--baseline", default="NoRec",
                        help="baseline name for --kind baseline (default: NoRec)")
    parser.add_argument("--backend", default="sqlite",
                        help="backend name for --kind differential: 'sqlite', "
                             "'sim' or 'sim:<Dialect>' (default: sqlite)")
    parser.add_argument("--worker-timeout", type=float, default=300.0,
                        help="seconds without hearing from any worker before "
                             "the pool is declared dead (default: 300)")
    args = parser.parse_args(argv)

    config = CampaignConfig(
        dataset=args.dataset,
        dataset_rows=args.dataset_rows,
        hours=args.hours,
        queries_per_hour=args.queries_per_hour,
        seed=args.seed,
    )
    parallel = ParallelCampaignConfig(
        workers=args.workers,
        sync_interval=args.sync_interval,
        worker_timeout=args.worker_timeout,
    )
    if args.kind == "tqs":
        outcome = run_parallel_tqs_campaign(dialect_by_name(args.dialect),
                                            config, parallel)
    elif args.kind == "baseline":
        outcome = run_parallel_baseline_campaign(args.baseline,
                                                 dialect_by_name(args.dialect),
                                                 config, parallel)
    else:
        outcome = run_parallel_differential_campaign(args.backend, config,
                                                     parallel)
    print(render_worker_pool(outcome))
    final = outcome.merged.final
    print()
    print(render_table(
        ["hour", "queries", "isomorphic sets", "bugs", "bug types", "rejected"],
        [[s.hour, s.queries_generated, s.isomorphic_sets, s.bug_count,
          s.bug_type_count, s.generations_rejected]
         for s in outcome.merged.samples],
        title=f"Merged per-hour series ({outcome.merged.tool} vs "
              f"{outcome.merged.dbms})",
    ))
    print()
    assert outcome.merged.bug_log is not None
    print(outcome.merged.bug_log.summary())
    print(f"{final.queries_generated} queries in {outcome.elapsed_seconds:.1f}s "
          f"({outcome.queries_per_second:.1f} q/s) across {outcome.workers} "
          f"workers, {outcome.sync_rounds} sync rounds, central index: "
          f"{outcome.central_index_size} entries / "
          f"{outcome.central_distinct_labels} distinct structures")
    return 0


if __name__ == "__main__":  # pragma: no cover
    # Delegate to the canonical module object (runpy executes a separate
    # ``__main__`` copy of this file): shard specs must pickle as
    # ``repro.core.parallel.ShardSpec`` for spawn-based start methods.
    from repro.core.parallel import main as _canonical_main

    raise SystemExit(_canonical_main())
