"""Test-case reduction (the role C-Reduce plays in the paper, §5.1).

Before reporting a bug, the paper minimizes the failing query with C-Reduce so
developers receive a small test case.  The reducer here performs structured delta
debugging directly on the :class:`~repro.plan.logical.QuerySpec`: it repeatedly
tries dropping join steps, filter conjuncts, GROUP BY columns and projection
items, keeping a change only when the provided failure predicate still holds.
"""

from __future__ import annotations
from typing import Callable, List

from repro.expr.ast import And, Expression
from repro.plan.logical import QuerySpec

FailurePredicate = Callable[[QuerySpec], bool]
"""Returns True when the (reduced) query still triggers the bug."""


def _copy_query(query: QuerySpec, **overrides) -> QuerySpec:
    base = QuerySpec(
        base=query.base,
        joins=list(query.joins),
        select=list(query.select),
        where=query.where,
        group_by=list(query.group_by),
        order_by=list(query.order_by),
        distinct=query.distinct,
        limit=query.limit,
    )
    for key, value in overrides.items():
        setattr(base, key, value)
    return base


class QueryReducer:
    """Structured delta-debugging over generated join queries."""

    def __init__(self, still_fails: FailurePredicate, max_rounds: int = 4) -> None:
        self.still_fails = still_fails
        self.max_rounds = max_rounds
        self.attempts = 0

    # ------------------------------------------------------------------ passes

    def _try(self, candidate: QuerySpec) -> bool:
        try:
            candidate.validate()
        except Exception:
            return False
        self.attempts += 1
        try:
            return self.still_fails(candidate)
        except Exception:
            return False

    def _reduce_joins(self, query: QuerySpec) -> QuerySpec:
        changed = True
        while changed and query.joins:
            changed = False
            for index in range(len(query.joins) - 1, -1, -1):
                remaining = query.joins[:index] + query.joins[index + 1:]
                dropped_alias = query.joins[index].table.alias
                select = [
                    item for item in query.select
                    if all(t != dropped_alias for t, _ in item.expression.references())
                ]
                group_by = [
                    ref for ref in query.group_by if ref.table != dropped_alias
                ]
                where = query.where
                if where is not None and any(
                    t == dropped_alias for t, _ in where.references()
                ):
                    where = None
                if not select:
                    continue
                candidate = _copy_query(
                    query, joins=remaining, select=select, group_by=group_by, where=where
                )
                if self._try(candidate):
                    query = candidate
                    changed = True
                    break
        return query

    def _reduce_where(self, query: QuerySpec) -> QuerySpec:
        where = query.where
        if where is None:
            return query
        candidate = _copy_query(query, where=None)
        if self._try(candidate):
            return candidate
        if isinstance(where, And) and len(where.operands) > 1:
            for index in range(len(where.operands)):
                remaining: List[Expression] = [
                    op for i, op in enumerate(where.operands) if i != index
                ]
                new_where = remaining[0] if len(remaining) == 1 else And(*remaining)
                candidate = _copy_query(query, where=new_where)
                if self._try(candidate):
                    return self._reduce_where(candidate)
        return query

    def _reduce_select(self, query: QuerySpec) -> QuerySpec:
        if len(query.select) <= 1:
            return query
        for index in range(len(query.select) - 1, -1, -1):
            if len(query.select) <= 1:
                break
            remaining = [item for i, item in enumerate(query.select) if i != index]
            dropped = query.select[index]
            group_by = query.group_by
            if dropped.aggregate is None and query.group_by:
                group_by = [
                    ref for ref in query.group_by
                    if (ref.table, ref.column) not in {
                        key for key in [getattr(dropped.expression, "key", None)] if key
                    }
                ]
            candidate = _copy_query(query, select=remaining, group_by=group_by)
            if self._try(candidate):
                query = candidate
        return query

    # ------------------------------------------------------------------ driver

    def reduce(self, query: QuerySpec) -> QuerySpec:
        """Minimize *query* while the failure predicate keeps holding."""
        if not self._try(query):
            return query
        current = query
        for _ in range(self.max_rounds):
            before = current.render()
            current = self._reduce_joins(current)
            current = self._reduce_where(current)
            current = self._reduce_select(current)
            if current.render() == before:
                break
        return current
