"""Differential oracle: reference executor vs an external backend.

The simulated campaigns verify engine results against the wide-table ground
truth.  When the target is a *real* engine (SQLite today; DuckDB / MySQL /
Postgres adapters later), the reference executor plays the role SQLancer's
baselines give to a second implementation: every TQS-generated query runs on
both sides, the result sets are normalized (column order ignored, rows compared
as sets under canonical numeric forms, floats within tolerance), and any
disagreement is filed through the existing :class:`~repro.core.bug_report.BugLog`.

The normalization rules mirror the repo's own result-set semantics
(:meth:`~repro.engine.resultset.ResultSet.normalized` /
:meth:`~repro.engine.resultset.ResultSet.normalized_bag`): the comparison
domain is selected per query shape by :func:`preserves_duplicates` — sets for
DISTINCT projections and aggregates, multisets where duplicates are part of
the answer (UNION ALL compounds) — and
:func:`~repro.sqlvalue.comparison.values_close` absorbs representation drift
such as the reference's exact ``Decimal`` vs a backend's ``REAL``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro import obs
from repro.backends.base import BackendAdapter, BackendExecution
from repro.core.bug_report import BugIncident, BugLog
from repro.core.execpipe import ExecutionPipeline, PipelineConfig, QueryJob
from repro.core.qcache import QueryCache, dataset_fingerprint, result_cache_key
from repro.dsg.pipeline import DSG
from repro.engine.engine import Engine
from repro.engine.resultset import ResultSet
from repro.errors import BackendError, GenerationError, RenderError
from repro.kqe.explorer import KQE
from repro.kqe.isomorphism import IsomorphicSetCounter
from repro.kqe.query_graph import QueryGraphBuilder
from repro.plan.logical import AnyQuerySpec, CompoundQuerySpec
from repro.sqlvalue.comparison import values_close
from repro.sqlvalue.values import row_sort_key


@dataclass
class DifferentialConfig:
    """Knobs of the cross-engine comparison."""

    float_rel_tol: float = 1e-9
    float_abs_tol: float = 1e-12
    use_kqe: bool = True
    max_generation_retries: int = 5
    seed: int = 97


def preserves_duplicates(query: AnyQuerySpec) -> bool:
    """Whether *query*'s result is a multiset, selecting the comparison mode.

    DISTINCT projections and aggregates produce sets; a compound with UNION
    ALL (or a plain non-DISTINCT, non-aggregated projection) can legitimately
    emit duplicate rows, where the multiplicity itself is part of the answer
    — two engines returning ``[1, 1]`` vs ``[1]`` disagree.
    """
    if isinstance(query, CompoundQuerySpec):
        return query.preserves_duplicates()
    return not query.distinct and not query.has_aggregates()


def result_sets_match(reference: ResultSet, observed: ResultSet,
                      rel_tol: float = 1e-9, abs_tol: float = 1e-12,
                      bag: bool = False) -> bool:
    """Order-insensitive, float-tolerant result equality.

    With ``bag=False`` (the sound mode for DISTINCT projections) rows compare
    as sets — duplicate-insensitive.  With ``bag=True`` rows compare as
    multisets: each normalized row's multiplicity must agree, which is what
    UNION ALL results require.
    """
    if bag:
        if reference.normalized_bag() == observed.normalized_bag():
            return True
        ref_sorted = sorted(reference.normalized_bag().elements(),
                            key=row_sort_key)
        obs_sorted = sorted(observed.normalized_bag().elements(),
                            key=row_sort_key)
    else:
        ref_rows = reference.normalized()
        obs_rows = observed.normalized()
        if ref_rows == obs_rows:
            return True
        ref_sorted = sorted(ref_rows, key=row_sort_key)
        obs_sorted = sorted(obs_rows, key=row_sort_key)
    # Tolerant fallback: compare the (de)duplicated rows pairwise in sorted
    # order, allowing per-cell float drift.  Rows whose sort position shifts
    # under drift larger than the tolerance are genuine mismatches anyway.
    if len(ref_sorted) != len(obs_sorted):
        return False
    for ref_row, obs_row in zip(ref_sorted, obs_sorted):
        if len(ref_row) != len(obs_row):
            return False
        for ref_value, obs_value in zip(ref_row, obs_row):
            if not values_close(ref_value, obs_value, rel_tol=rel_tol,
                                abs_tol=abs_tol):
                return False
    return True


@dataclass
class DifferentialOutcome:
    """What one differential iteration observed."""

    query: AnyQuerySpec
    canonical_label: str
    sql: str
    matched: bool
    skipped: bool = False
    skip_reason: str = ""
    incident: Optional[BugIncident] = None
    reference_rows: int = 0
    observed_rows: int = 0

    @property
    def detected(self) -> bool:
        """True when the backend disagreed with the reference executor."""
        return not self.matched and not self.skipped


class DifferentialOracle:
    """Compares one backend against the bug-free reference executor."""

    def __init__(self, reference: Engine, backend: BackendAdapter,
                 bug_log: Optional[BugLog] = None,
                 config: Optional[DifferentialConfig] = None,
                 query_cache: Optional[QueryCache] = None) -> None:
        self.reference = reference
        self.backend = backend
        self.bug_log = bug_log if bug_log is not None else BugLog()
        self.config = config or DifferentialConfig()
        self.query_cache = query_cache
        self.comparisons = 0
        self.skipped = 0
        self._dataset_fingerprint: Optional[str] = None

    def execute_reference(self, query: AnyQuerySpec,
                          label: str = "") -> ResultSet:
        """Run *query* on the reference engine, through the result cache.

        Cache keys are content-addressed (canonical SQL + dataset fingerprint
        + executor name), so a hit returns exactly what the miss path would
        recompute — the cache-on == cache-off determinism contract.  Only the
        actual execution is timed under ``execute.reference``; that is the
        phase the cache is built to collapse.
        """
        cache = self.query_cache
        if cache is None:
            with obs.span("execute.reference"):
                return self.reference.execute(query)
        if self._dataset_fingerprint is None:
            self._dataset_fingerprint = dataset_fingerprint(
                self.reference.database
            )
        executor = getattr(self.reference, "executor", None)
        key = result_cache_key(
            executor.name if executor is not None else "row",
            label,
            self._dataset_fingerprint,
            query.render(),
        )
        hit, cached = cache.get(key, "result")
        if hit:
            return cached
        with obs.span("execute.reference"):
            result = self.reference.execute(query)
        cache.put(key, result, "result")
        return result

    def precheck(self, query: AnyQuerySpec,
                 label: str = "") -> Optional[DifferentialOutcome]:
        """The pre-execution skip decision; a skip outcome or None.

        Called before any engine touches the query, in submission order, by
        both the serial path and the batched pipeline — so skip accounting is
        identical between them.
        """
        if query.limit is not None:
            # LIMIT without a total order picks an engine-chosen subset; two
            # correct engines may legitimately disagree, so it is incomparable.
            self.skipped += 1
            return DifferentialOutcome(
                query=query, canonical_label=label, sql="", matched=True,
                skipped=True, skip_reason="LIMIT result is engine-defined",
            )
        return None

    def judge(self, query: AnyQuerySpec, label: str,
              execution: BackendExecution,
              reference_result: Optional[ResultSet]) -> DifferentialOutcome:
        """Turn one (execution, reference result) pair into a verdict.

        An execution that failed (``execution.error``) is skipped, not filed:
        a query the dialect cannot express (RenderError) or the engine rejects
        at runtime (BackendError) is not a *logic* bug, and skipping keeps one
        unsupported construct from aborting a long campaign.
        """
        if execution.error is not None:
            self.skipped += 1
            obs.get_registry().counter(
                "execute.errors",
                backend=self.backend.name,
                kind=type(execution.error).__name__,
            ).inc()
            return DifferentialOutcome(
                query=query, canonical_label=label, sql="", matched=True,
                skipped=True, skip_reason=str(execution.error),
            )
        assert reference_result is not None
        self.comparisons += 1
        with obs.span("judge"):
            matched = result_sets_match(
                reference_result, execution.result,
                rel_tol=self.config.float_rel_tol,
                abs_tol=self.config.float_abs_tol,
                bag=preserves_duplicates(query),
            )
        outcome = DifferentialOutcome(
            query=query,
            canonical_label=label,
            sql=execution.sql,
            matched=matched,
            reference_rows=len(reference_result),
            observed_rows=len(execution.result),
        )
        if not matched:
            incident = BugIncident(
                dbms=self.backend.name,
                query_sql=execution.sql or query.render(),
                hint_name="default",
                detection_mode="backend_differential",
                query_canonical_label=label,
                fired_bug_ids=execution.fired_bug_ids,
                expected_rows=len(reference_result),
                observed_rows=len(execution.result),
            )
            self.bug_log.record(incident)
            outcome.incident = incident
        return outcome

    def check(self, query: AnyQuerySpec, label: str = "") -> DifferentialOutcome:
        """Run *query* on both sides and record any mismatch (serial path).

        The batched pipeline runs the same three stages — :meth:`precheck`,
        execution, :meth:`judge` — with the two executions overlapped; this
        method is their strictly serial composition, so the two paths cannot
        drift apart.
        """
        skip = self.precheck(query, label)
        if skip is not None:
            return skip
        try:
            execution: BackendExecution = self.backend.execute(query)
        except (RenderError, BackendError) as error:
            return self.judge(query, label, BackendExecution(error=error), None)
        reference_result = self.execute_reference(query, label)
        return self.judge(query, label, execution, reference_result)


class DifferentialTester:
    """The TQS loop re-targeted at a backend: generate, render, execute, compare.

    Mirrors :class:`~repro.core.tqs.TQS` (generation retries, KQE guidance,
    diversity accounting) but replaces the wide-table ground-truth verification
    with the differential oracle.  One instance drives one backend over one
    DSG-generated database.

    With a :class:`~repro.core.execpipe.PipelineConfig` whose ``batch_size``
    exceeds 1, generated queries are buffered and executed through the
    overlapped :class:`~repro.core.execpipe.ExecutionPipeline` — target and
    reference concurrently — instead of one at a time.  Generation order, KQE
    registration and verdicts are bit-identical to the serial path; only the
    wall clock changes.  Callers driving a batched tester directly must call
    :meth:`flush` before reading counters (the shared campaign loop does so at
    every hour boundary).
    """

    def __init__(self, dsg: DSG, backend: BackendAdapter,
                 reference: Optional[Engine] = None,
                 config: Optional[DifferentialConfig] = None,
                 pipeline: Optional[PipelineConfig] = None,
                 query_cache: Optional[QueryCache] = None) -> None:
        self.dsg = dsg
        self.backend = backend
        self.config = config or DifferentialConfig()
        self.reference = reference or Engine(dsg.database)
        self.oracle = DifferentialOracle(
            self.reference, backend, config=self.config,
            query_cache=query_cache,
        )
        self.pipeline_config = pipeline or PipelineConfig()
        self.pipeline = (
            ExecutionPipeline(self.oracle, self.pipeline_config)
            if self.pipeline_config.batch_size > 1 else None
        )
        self.kqe = (
            KQE(dsg.ndb.schema, rng=random.Random(self.config.seed + 1))
            if self.config.use_kqe else None
        )
        self.graph_builder = QueryGraphBuilder(dsg.ndb.schema)
        self.diversity = IsomorphicSetCounter()
        self.queries_generated = 0
        self.outcomes: List[DifferentialOutcome] = []
        self._pending: List[QueryJob] = []
        self._closed = False

    @property
    def bug_log(self) -> BugLog:
        """The accumulated mismatch log."""
        return self.oracle.bug_log

    @property
    def queries_executed(self) -> int:
        """Number of cross-engine comparisons performed."""
        return self.oracle.comparisons

    @property
    def explored_isomorphic_sets(self) -> int:
        """Distinct query-graph isomorphism classes generated so far."""
        return self.diversity.distinct_sets

    def _generate(self) -> AnyQuerySpec:
        chooser = self.kqe.extension_chooser if self.kqe is not None else None
        last_error: Optional[Exception] = None
        for _ in range(self.config.max_generation_retries):
            try:
                return self.dsg.generate_statement(extension_chooser=chooser)
            except GenerationError as error:
                last_error = error
        raise GenerationError(f"query generation kept failing: {last_error}")

    def run_iteration(self) -> Optional[DifferentialOutcome]:
        """Generate one query and compare the backend against the reference.

        On the serial path (batch size 1) the comparison happens immediately
        and the outcome is returned.  On the batched path the query is
        buffered — executing as soon as a full batch accumulates — and the
        return value is None; outcomes land in :attr:`outcomes` (in generation
        order) when the batch flushes.
        """
        with obs.span("generate"):
            query = self._generate()
            self.queries_generated += 1
            label = self.graph_builder.build(query).canonical_label()
            self.diversity.add_label(label)
            if self.kqe is not None:
                self.kqe.register(query)
        if self.pipeline is None:
            outcome = self.oracle.check(query, label)
            self.outcomes.append(outcome)
            return outcome
        self._pending.append(QueryJob(query=query, label=label))
        if len(self._pending) >= self.pipeline_config.batch_size:
            self.flush()
        return None

    def flush(self) -> None:
        """Execute and judge any buffered queries (no-op on the serial path)."""
        if self.pipeline is None or not self._pending:
            return
        jobs, self._pending = self._pending, []
        self.outcomes.extend(self.pipeline.run_batch(jobs))

    def close(self) -> None:
        """Flush pending work, stop pipeline threads, close the backend.

        Safe to call twice; every campaign/worker error path funnels through
        here so adapters are never leaked.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.flush()
        finally:
            if self.pipeline is not None:
                self.pipeline.close()
            self.backend.close()

    def run(self, iterations: int) -> BugLog:
        """Run several iterations, skipping failed generations."""
        for _ in range(iterations):
            try:
                self.run_iteration()
            except GenerationError:
                continue
        self.flush()
        return self.bug_log
