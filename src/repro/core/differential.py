"""Differential oracle: reference executor vs an external backend.

The simulated campaigns verify engine results against the wide-table ground
truth.  When the target is a *real* engine (SQLite today; DuckDB / MySQL /
Postgres adapters later), the reference executor plays the role SQLancer's
baselines give to a second implementation: every TQS-generated query runs on
both sides, the result sets are normalized (column order ignored, rows compared
as sets under canonical numeric forms, floats within tolerance), and any
disagreement is filed through the existing :class:`~repro.core.bug_report.BugLog`.

The normalization rules mirror the repo's own result-set semantics
(:meth:`~repro.engine.resultset.ResultSet.normalized`): generated queries are
DISTINCT projections, so sets — not multisets — are the comparison domain, and
:func:`~repro.sqlvalue.comparison.values_close` absorbs representation drift
such as the reference's exact ``Decimal`` vs a backend's ``REAL``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.backends.base import BackendAdapter, BackendExecution
from repro.core.bug_report import BugIncident, BugLog
from repro.dsg.pipeline import DSG
from repro.engine.engine import Engine
from repro.engine.resultset import ResultSet
from repro.errors import BackendError, GenerationError, RenderError
from repro.kqe.explorer import KQE
from repro.kqe.isomorphism import IsomorphicSetCounter
from repro.kqe.query_graph import QueryGraphBuilder
from repro.plan.logical import QuerySpec
from repro.sqlvalue.comparison import values_close
from repro.sqlvalue.values import row_sort_key


@dataclass
class DifferentialConfig:
    """Knobs of the cross-engine comparison."""

    float_rel_tol: float = 1e-9
    float_abs_tol: float = 1e-12
    use_kqe: bool = True
    max_generation_retries: int = 5
    seed: int = 97


def result_sets_match(reference: ResultSet, observed: ResultSet,
                      rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Order-insensitive, duplicate-insensitive, float-tolerant set equality."""
    ref_rows = reference.normalized()
    obs_rows = observed.normalized()
    if ref_rows == obs_rows:
        return True
    # Tolerant fallback: compare the deduplicated rows pairwise in sorted
    # order, allowing per-cell float drift.  Rows whose sort position shifts
    # under drift larger than the tolerance are genuine mismatches anyway.
    ref_sorted = sorted(ref_rows, key=row_sort_key)
    obs_sorted = sorted(obs_rows, key=row_sort_key)
    if len(ref_sorted) != len(obs_sorted):
        return False
    for ref_row, obs_row in zip(ref_sorted, obs_sorted):
        if len(ref_row) != len(obs_row):
            return False
        for ref_value, obs_value in zip(ref_row, obs_row):
            if not values_close(ref_value, obs_value, rel_tol=rel_tol,
                                abs_tol=abs_tol):
                return False
    return True


@dataclass
class DifferentialOutcome:
    """What one differential iteration observed."""

    query: QuerySpec
    canonical_label: str
    sql: str
    matched: bool
    skipped: bool = False
    skip_reason: str = ""
    incident: Optional[BugIncident] = None
    reference_rows: int = 0
    observed_rows: int = 0

    @property
    def detected(self) -> bool:
        """True when the backend disagreed with the reference executor."""
        return not self.matched and not self.skipped


class DifferentialOracle:
    """Compares one backend against the bug-free reference executor."""

    def __init__(self, reference: Engine, backend: BackendAdapter,
                 bug_log: Optional[BugLog] = None,
                 config: Optional[DifferentialConfig] = None) -> None:
        self.reference = reference
        self.backend = backend
        self.bug_log = bug_log if bug_log is not None else BugLog()
        self.config = config or DifferentialConfig()
        self.comparisons = 0
        self.skipped = 0

    def check(self, query: QuerySpec, label: str = "") -> DifferentialOutcome:
        """Run *query* on both sides and record any mismatch."""
        if query.limit is not None:
            # LIMIT without a total order picks an engine-chosen subset; two
            # correct engines may legitimately disagree, so it is incomparable.
            self.skipped += 1
            return DifferentialOutcome(
                query=query, canonical_label=label, sql="", matched=True,
                skipped=True, skip_reason="LIMIT result is engine-defined",
            )
        try:
            execution: BackendExecution = self.backend.execute(query)
        except (RenderError, BackendError) as error:
            # A query the dialect cannot express (RenderError) or the engine
            # rejects at runtime (BackendError) is not a *logic* bug; skipping
            # it keeps one unsupported construct from aborting a long campaign
            # and discarding every result gathered so far.
            self.skipped += 1
            return DifferentialOutcome(
                query=query, canonical_label=label, sql="", matched=True,
                skipped=True, skip_reason=str(error),
            )
        reference_result = self.reference.execute(query)
        self.comparisons += 1
        matched = result_sets_match(
            reference_result, execution.result,
            rel_tol=self.config.float_rel_tol,
            abs_tol=self.config.float_abs_tol,
        )
        outcome = DifferentialOutcome(
            query=query,
            canonical_label=label,
            sql=execution.sql,
            matched=matched,
            reference_rows=len(reference_result),
            observed_rows=len(execution.result),
        )
        if not matched:
            incident = BugIncident(
                dbms=self.backend.name,
                query_sql=execution.sql or query.render(),
                hint_name="default",
                detection_mode="backend_differential",
                query_canonical_label=label,
                fired_bug_ids=execution.fired_bug_ids,
                expected_rows=len(reference_result),
                observed_rows=len(execution.result),
            )
            self.bug_log.record(incident)
            outcome.incident = incident
        return outcome


class DifferentialTester:
    """The TQS loop re-targeted at a backend: generate, render, execute, compare.

    Mirrors :class:`~repro.core.tqs.TQS` (generation retries, KQE guidance,
    diversity accounting) but replaces the wide-table ground-truth verification
    with the differential oracle.  One instance drives one backend over one
    DSG-generated database.
    """

    def __init__(self, dsg: DSG, backend: BackendAdapter,
                 reference: Optional[Engine] = None,
                 config: Optional[DifferentialConfig] = None) -> None:
        self.dsg = dsg
        self.backend = backend
        self.config = config or DifferentialConfig()
        self.reference = reference or Engine(dsg.database)
        self.oracle = DifferentialOracle(
            self.reference, backend, config=self.config
        )
        self.kqe = (
            KQE(dsg.ndb.schema, rng=random.Random(self.config.seed + 1))
            if self.config.use_kqe else None
        )
        self.graph_builder = QueryGraphBuilder(dsg.ndb.schema)
        self.diversity = IsomorphicSetCounter()
        self.queries_generated = 0
        self.outcomes: List[DifferentialOutcome] = []

    @property
    def bug_log(self) -> BugLog:
        """The accumulated mismatch log."""
        return self.oracle.bug_log

    @property
    def queries_executed(self) -> int:
        """Number of cross-engine comparisons performed."""
        return self.oracle.comparisons

    @property
    def explored_isomorphic_sets(self) -> int:
        """Distinct query-graph isomorphism classes generated so far."""
        return self.diversity.distinct_sets

    def _generate(self) -> QuerySpec:
        chooser = self.kqe.extension_chooser if self.kqe is not None else None
        last_error: Optional[Exception] = None
        for _ in range(self.config.max_generation_retries):
            try:
                return self.dsg.generate_query(extension_chooser=chooser)
            except GenerationError as error:
                last_error = error
        raise GenerationError(f"query generation kept failing: {last_error}")

    def run_iteration(self) -> DifferentialOutcome:
        """Generate one query and compare the backend against the reference."""
        query = self._generate()
        self.queries_generated += 1
        label = self.graph_builder.build(query).canonical_label()
        self.diversity.add_label(label)
        if self.kqe is not None:
            self.kqe.register(query)
        outcome = self.oracle.check(query, label)
        self.outcomes.append(outcome)
        return outcome

    def run(self, iterations: int) -> BugLog:
        """Run several iterations, skipping failed generations."""
        for _ in range(iterations):
            try:
                self.run_iteration()
            except GenerationError:
                continue
        return self.bug_log
