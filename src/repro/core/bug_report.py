"""Bug reports, incidents and root-cause bookkeeping.

The paper reports two numbers per DBMS: the number of *bugs* found in 24 hours
(Table 4 / Figure 8-9, e.g. 31 for MySQL) and the number of *bug types* after
root-cause analysis (7 for MySQL).  We mirror that: every oracle mismatch yields
a :class:`BugIncident`; incidents are deduplicated by (root-cause bug ids, query
structure) to form "bugs", and the set of implicated seeded fault ids forms the
"bug types".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple


@dataclass(frozen=True)
class BugIncident:
    """One detected mismatch between an engine result and the oracle."""

    dbms: str
    query_sql: str
    hint_name: str
    detection_mode: str  # "ground_truth" or "differential"
    query_canonical_label: str
    fired_bug_ids: Tuple[int, ...]
    expected_rows: int
    observed_rows: int
    minimized_sql: Optional[str] = None

    @property
    def root_cause(self) -> FrozenSet[int]:
        """The seeded fault ids implicated in this incident."""
        return frozenset(self.fired_bug_ids)


@dataclass
class BugLog:
    """Accumulates incidents and exposes the paper's two headline metrics."""

    incidents: List[BugIncident] = field(default_factory=list)
    _bug_keys: Set[Tuple[FrozenSet[int], str]] = field(default_factory=set)

    def record(self, incident: BugIncident) -> bool:
        """Add an incident; returns True when it constitutes a *new* bug.

        A "bug" in the paper's counting is a unique minimized test case: we
        approximate that by the pair (root-cause fault ids, query-graph
        isomorphism class), so re-detecting the same fault through a structurally
        identical query does not inflate the count.
        """
        self.incidents.append(incident)
        key = (incident.root_cause, incident.query_canonical_label)
        if key in self._bug_keys:
            return False
        self._bug_keys.add(key)
        return True

    def merge(self, other: "BugLog") -> int:
        """Fold another log's incidents into this one; returns new-bug count.

        Incidents re-run through :meth:`record`, so two logs reporting the
        same (root cause, query structure) pair collapse into one bug.  Use
        this to combine finished campaigns (e.g. the same dialect tested over
        several datasets); the parallel runner's own merge replays incidents
        hour by hour instead, because it must sample bug counts per hour.
        """
        return sum(1 for incident in other.incidents if self.record(incident))

    @property
    def bug_count(self) -> int:
        """Number of distinct bugs (unique test cases) found so far."""
        return len(self._bug_keys)

    @property
    def bug_types(self) -> Set[int]:
        """The seeded fault ids implicated so far (the paper's bug types)."""
        types: Set[int] = set()
        for incident in self.incidents:
            types.update(incident.fired_bug_ids)
        return types

    @property
    def bug_type_count(self) -> int:
        """Number of distinct bug types."""
        return len(self.bug_types)

    def incidents_for_type(self, bug_id: int) -> List[BugIncident]:
        """All incidents implicating one seeded fault."""
        return [i for i in self.incidents if bug_id in i.fired_bug_ids]

    def summary(self) -> str:
        """One-line summary."""
        return (
            f"{self.bug_count} bugs of {self.bug_type_count} types "
            f"({len(self.incidents)} raw incidents)"
        )
