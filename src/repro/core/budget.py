"""Pluggable per-hour budget policies for sharded campaigns.

The parallel runner splits one campaign's ``queries_per_hour`` budget across
its shards.  Historically that split was fixed and even; this module makes it a
policy object with two decision points:

* :meth:`BudgetPolicy.split` — the initial allocation, before any shard has
  run (largest-remainder even split by default, matching the historical
  behaviour bit for bit);
* :meth:`BudgetPolicy.rebalance` — called by the central coordinator at every
  bulk-synchronous sync round with each shard's *novel-label count* for the
  round (canonical labels the shard contributed that the central index had
  never seen).  The returned allocation is shipped back to the workers inside
  the round's :class:`~repro.distributed.protocol.SyncBroadcast` and governs
  their following hours.

Policies must conserve the total budget: every allocation they return sums to
the campaign's ``queries_per_hour``, so the budget identity
``queries_generated + generations_rejected == hours * queries_per_hour`` holds
for merged campaigns under any policy.  Rebalancing decisions are pure
functions of round content, never of timing, so adaptive campaigns stay
deterministic for a fixed seed (over the local queue transport and TCP alike).

:class:`AdaptiveBudgetPolicy` implements the ROADMAP's adaptive-shard-budgets
item: budget flows toward shards whose recent rounds discovered more novel
query-graph structures, raising merged diversity per wall-clock second while a
configurable floor keeps any shard from starving entirely.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

from repro.errors import CampaignError


def split_budget(total: int, shares: int) -> List[int]:
    """Largest-remainder even split of *total* into *shares* integer parts.

    The remainder goes to the first shares, e.g. ``split_budget(14, 4) ==
    [4, 4, 3, 3]`` — exactly the split :func:`shard_campaign_configs` has
    always produced.
    """
    if shares < 1:
        raise CampaignError("cannot split a budget over zero shares")
    base, remainder = divmod(total, shares)
    return [base + (1 if index < remainder else 0) for index in range(shares)]


def redistribute_budget(budgets: Mapping[int, int],
                        evicted: int) -> Dict[int, int]:
    """Reassign an evicted shard's per-hour budget to the survivors.

    The freed budget is spread over the surviving shards by largest-remainder
    split in sorted shard order (deterministic), so the campaign's per-hour
    total is conserved: ``sum(result.values()) == sum(budgets.values())``.
    Evicting an unknown shard is a no-op; evicting the only shard returns an
    empty allocation (the budget has nowhere to go).
    """
    if evicted not in budgets:
        return dict(budgets)
    freed = budgets[evicted]
    survivors = sorted(sid for sid in budgets if sid != evicted)
    allocation = {sid: budgets[sid] for sid in survivors}
    if not survivors:
        return {}
    for sid, extra in zip(survivors, split_budget(freed, len(survivors))):
        allocation[sid] += extra
    return allocation


class BudgetPolicy:
    """How a campaign's per-hour query budget is spread over its shards.

    The base class is the even, static policy: the initial split is even and
    :meth:`rebalance` returns the allocation unchanged.  Subclasses override
    :meth:`rebalance`; they must return a dict over exactly the same shard ids
    whose values sum to the same total.
    """

    name = "even"

    def split(self, total: int, shares: int) -> List[int]:
        """The initial allocation, before any shard has produced anything."""
        return split_budget(total, shares)

    def rebalance(self, budgets: Mapping[int, int],
                  novel_counts: Mapping[int, int]) -> Dict[int, int]:
        """One sync round's reallocation decision.

        *budgets* maps shard id to its current per-hour budget; *novel_counts*
        maps shard id to the number of label-novel index entries the shard
        contributed this round.  The default keeps the allocation unchanged.
        """
        return dict(budgets)


class EvenBudgetPolicy(BudgetPolicy):
    """The historical fixed even split, as an explicit named policy."""


class AdaptiveBudgetPolicy(BudgetPolicy):
    """Rebalance budget toward shards discovering novel structures faster.

    At each sync round the next allocation is proportional to each shard's
    smoothed novelty weight ``novel_count + smoothing``, floored at
    ``min_budget`` queries per hour so a shard that went cold keeps probing
    (its database replica may still hold unexplored structures), with the
    integer remainder distributed by largest fractional part (ties to the
    lower shard id, so rounds are deterministic).

    The allocation is monotone in the novelty signal: a shard that discovered
    at least as many novel labels as a peer is never allocated less than that
    peer.
    """

    name = "adaptive"

    def __init__(self, min_budget: int = 1, smoothing: float = 1.0) -> None:
        if min_budget < 0:
            raise CampaignError("min_budget must be non-negative")
        if smoothing <= 0:
            raise CampaignError(
                "smoothing must be positive (a zero-novelty round would "
                "otherwise divide by zero)"
            )
        self.min_budget = min_budget
        self.smoothing = smoothing

    def rebalance(self, budgets: Mapping[int, int],
                  novel_counts: Mapping[int, int]) -> Dict[int, int]:
        shard_ids = sorted(budgets)
        total = sum(budgets.values())
        floor = self.min_budget
        if total < floor * len(shard_ids):
            # Not enough budget to honour the floor; fall back to even.
            allocation = split_budget(total, len(shard_ids))
            return {sid: allocation[i] for i, sid in enumerate(shard_ids)}
        spread = total - floor * len(shard_ids)
        weights = {
            sid: novel_counts.get(sid, 0) + self.smoothing for sid in shard_ids
        }
        weight_sum = sum(weights.values())
        raw = {sid: spread * weights[sid] / weight_sum for sid in shard_ids}
        allocation = {sid: floor + int(raw[sid]) for sid in shard_ids}
        leftover = total - sum(allocation.values())
        # Largest fractional remainder first; ties broken by shard id so the
        # result never depends on dict ordering or arrival timing.
        by_remainder = sorted(
            shard_ids, key=lambda sid: (-(raw[sid] - int(raw[sid])), sid)
        )
        for sid in by_remainder[:leftover]:
            allocation[sid] += 1
        return allocation


_POLICY_FACTORIES: Dict[str, Callable[[], BudgetPolicy]] = {}


def register_budget_policy(name: str,
                           factory: Callable[[], BudgetPolicy]) -> None:
    """Register a budget policy under *name* for CLI / config lookup."""
    _POLICY_FACTORIES[name] = factory


def budget_policy_from_name(name: str) -> BudgetPolicy:
    """Construct a registered budget policy from its plain-string name."""
    try:
        factory = _POLICY_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICY_FACTORIES))
        raise CampaignError(
            f"unknown budget policy {name!r}; registered policies: {known}"
        ) from None
    return factory()


def registered_budget_policies() -> List[str]:
    """The names accepted by :func:`budget_policy_from_name`, sorted."""
    return sorted(_POLICY_FACTORIES)


register_budget_policy("even", EvenBudgetPolicy)
register_budget_policy("adaptive", AdaptiveBudgetPolicy)
