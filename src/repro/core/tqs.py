"""TQS: the top-level testing loop (Algorithm 1).

One :class:`TQS` instance binds a DSG pipeline (schema + data + generator +
oracle), a target engine and (optionally) a KQE explorer, and repeatedly:

1. generates a join query by (adaptive) random walk,
2. registers its query graph for diversity accounting,
3. transforms it with several hint sets,
4. executes every transformed query on the target engine,
5. verifies each result set against the wide-table ground truth (or, in the
   ``use_ground_truth=False`` ablation, against the other physical plans), and
6. records, deduplicates and minimizes any detected logic bug.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro import obs
from repro.core.bug_report import BugIncident, BugLog
from repro.core.reduction import QueryReducer
from repro.dsg.ground_truth import GroundTruth
from repro.dsg.pipeline import DSG
from repro.engine.engine import Engine, ExecutionReport
from repro.errors import GenerationError
from repro.kqe.explorer import KQE
from repro.kqe.isomorphism import IsomorphicSetCounter
from repro.kqe.query_graph import QueryGraphBuilder
from repro.plan.logical import QuerySpec


@dataclass
class TQSConfig:
    """Switches of the TQS loop (the ablation axes of Table 5)."""

    use_ground_truth: bool = True
    use_kqe: bool = True
    reduce_failures: bool = False
    max_generation_retries: int = 5
    seed: int = 97


@dataclass
class IterationOutcome:
    """What happened during one iteration of Algorithm 1."""

    query: QuerySpec
    canonical_label: str
    novel_structure: bool
    executions: int
    incidents: List[BugIncident] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        """Whether this iteration revealed at least one mismatch."""
        return bool(self.incidents)


class TQS:
    """Transformed Query Synthesis against one simulated DBMS."""

    def __init__(self, dsg: DSG, engine: Engine,
                 config: Optional[TQSConfig] = None,
                 kqe: Optional[KQE] = None) -> None:
        self.dsg = dsg
        self.engine = engine
        self.config = config or TQSConfig()
        self.rng = random.Random(self.config.seed)
        self.kqe = kqe if kqe is not None else (
            KQE(dsg.ndb.schema, rng=random.Random(self.config.seed + 1))
            if self.config.use_kqe else None
        )
        self.graph_builder = QueryGraphBuilder(dsg.ndb.schema)
        self.diversity = IsomorphicSetCounter()
        self.bug_log = BugLog()
        self.queries_generated = 0
        self.queries_executed = 0

    # ---------------------------------------------------------------- plumbing

    def _generate(self) -> QuerySpec:
        chooser = self.kqe.extension_chooser if (self.kqe and self.config.use_kqe) else None
        last_error: Optional[Exception] = None
        for _ in range(self.config.max_generation_retries):
            try:
                return self.dsg.generate_query(extension_chooser=chooser)
            except GenerationError as error:
                last_error = error
        raise GenerationError(f"query generation kept failing: {last_error}")

    def _verify_with_ground_truth(
        self, query: QuerySpec, label: str, reports: Sequence[ExecutionReport],
        ground_truth: GroundTruth,
    ) -> List[BugIncident]:
        incidents: List[BugIncident] = []
        for report in reports:
            if ground_truth.matches(report.result):
                continue
            incidents.append(
                BugIncident(
                    dbms=self.engine.name,
                    query_sql=query.render(report.hints.render_comment()),
                    hint_name=report.hints.name,
                    detection_mode="ground_truth",
                    query_canonical_label=label,
                    fired_bug_ids=report.fired_bug_ids,
                    expected_rows=len(ground_truth.result),
                    observed_rows=len(report.result),
                )
            )
        return incidents

    def _verify_differentially(
        self, query: QuerySpec, label: str, reports: Sequence[ExecutionReport]
    ) -> List[BugIncident]:
        """The TQS!GT ablation: compare the plans against each other only."""
        if len(reports) < 2:
            return []
        signatures = [report.result.normalized() for report in reports]
        majority_signature, _count = Counter(signatures).most_common(1)[0]
        majority_rows = next(
            len(report.result) for report, signature in zip(reports, signatures)
            if signature == majority_signature
        )
        # Faults that also fired in the majority plans cannot explain why the
        # deviating plan differs, so differential testing can only attribute a
        # mismatch to the faults unique to the deviating execution.  This is
        # exactly why plan-independent bugs are invisible to the TQS!GT variant.
        majority_fired = set()
        for report, signature in zip(reports, signatures):
            if signature == majority_signature:
                majority_fired.update(report.fired_bug_ids)
        incidents: List[BugIncident] = []
        for report, signature in zip(reports, signatures):
            if signature == majority_signature:
                continue
            blamed = tuple(sorted(set(report.fired_bug_ids) - majority_fired))
            incidents.append(
                BugIncident(
                    dbms=self.engine.name,
                    query_sql=query.render(report.hints.render_comment()),
                    hint_name=report.hints.name,
                    detection_mode="differential",
                    query_canonical_label=label,
                    fired_bug_ids=blamed,
                    expected_rows=majority_rows,
                    observed_rows=len(report.result),
                )
            )
        return incidents

    def _minimize(self, query: QuerySpec, incident: BugIncident) -> Optional[str]:
        hints = next(
            (t.hints for t in self.dsg.transform_query(query)
             if t.hints.name == incident.hint_name),
            None,
        )
        if hints is None:
            return None

        def still_fails(candidate: QuerySpec) -> bool:
            ground_truth = self.dsg.ground_truth(candidate)
            result = self.engine.execute(candidate, hints)
            return not ground_truth.matches(result)

        reducer = QueryReducer(still_fails)
        minimized = reducer.reduce(query)
        return minimized.render(hints.render_comment())

    # ------------------------------------------------------------------ public

    def run_iteration(self) -> IterationOutcome:
        """One pass through lines 7-15 of Algorithm 1."""
        with obs.span("generate"):
            query = self._generate()
            self.queries_generated += 1
            graph = self.graph_builder.build(query)
            label = graph.canonical_label()
            novel = self.diversity.add_label(label)
            if self.kqe is not None and self.config.use_kqe:
                self.kqe.register(query)
            transformed = self.dsg.transform_query(query)
        with obs.span("execute.target"):
            reports = [
                self.engine.execute_with_report(query, item.hints)
                for item in transformed
            ]
        self.queries_executed += len(reports)
        with obs.span("judge"):
            if self.config.use_ground_truth:
                ground_truth = self.dsg.ground_truth(query)
                incidents = self._verify_with_ground_truth(query, label, reports,
                                                           ground_truth)
            else:
                incidents = self._verify_differentially(query, label, reports)
            if incidents and self.config.reduce_failures:
                minimized_sql = self._minimize(query, incidents[0])
                if minimized_sql is not None:
                    incidents[0] = BugIncident(
                        **{**incidents[0].__dict__, "minimized_sql": minimized_sql}
                    )
            for incident in incidents:
                self.bug_log.record(incident)
        return IterationOutcome(
            query=query,
            canonical_label=label,
            novel_structure=novel,
            executions=len(reports),
            incidents=incidents,
        )

    def run(self, iterations: int) -> BugLog:
        """Run several iterations and return the accumulated bug log."""
        for _ in range(iterations):
            try:
                self.run_iteration()
            except GenerationError:
                continue
        return self.bug_log

    # ------------------------------------------------------------------ stats

    @property
    def explored_isomorphic_sets(self) -> int:
        """Distinct query-graph isomorphism classes generated so far."""
        return self.diversity.distinct_sets
