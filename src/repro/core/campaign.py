"""Testing campaigns: the simulated 24-hour runs behind every figure and table.

The paper runs each tool for 24 wall-clock hours and reports per-hour series
(diversity, bug count) plus end-of-run totals (Table 4, Table 5).  A laptop
reproduction cannot spend 24 real hours per cell, so a campaign is budgeted:
each simulated "hour" corresponds to a fixed number of generated queries, and
all per-hour series are reported against simulated hours.  Shapes (who grows
faster, where curves flatten) are preserved; absolute per-hour magnitudes simply
scale with the per-hour budget.

All campaign kinds (TQS, baseline, differential) share one iteration loop,
:func:`run_campaign_loop`: a tester object exposing ``run_iteration()`` plus the
cumulative counters is driven hour by hour, rejected generations are counted
instead of silently swallowed, and an optional per-hour hook receives the hour's
deltas — the seam the multi-process parallel runner
(:mod:`repro.core.parallel`) uses for index synchronization and merging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Union

from repro import obs
from repro.backends import backend_from_name
from repro.backends.base import BackendAdapter
from repro.baselines import make_baseline
from repro.baselines.base import BaselineTester
from repro.core.bug_report import BugIncident, BugLog
from repro.core.differential import DifferentialConfig, DifferentialTester
from repro.core.execpipe import PipelineConfig
from repro.core.qcache import QueryCache
from repro.core.tqs import TQS, TQSConfig
from repro.dsg.pipeline import DSG, DSGConfig
from repro.dsg.query_gen import GenerationConfig
from repro.engine.dialects import DialectProfile, dialect_by_name
from repro.engine.engine import Engine, reference_engine
from repro.errors import CampaignError, GenerationError


@dataclass
class HourlySample:
    """The cumulative state of a campaign after one simulated hour."""

    hour: int
    queries_generated: int
    queries_executed: int
    isomorphic_sets: int
    bug_count: int
    bug_type_count: int
    generations_rejected: int = 0


@dataclass
class CampaignResult:
    """Full output of one campaign."""

    tool: str
    dbms: str
    dataset: str
    samples: List[HourlySample] = field(default_factory=list)
    bug_log: Optional[BugLog] = None

    @property
    def final(self) -> HourlySample:
        """The last hourly sample."""
        if not self.samples:
            raise CampaignError("campaign produced no samples")
        return self.samples[-1]

    @property
    def generations_rejected(self) -> int:
        """Generations the walk abandoned over the whole campaign.

        Surfaced so throughput numbers are honest: ``queries_generated`` counts
        only successful generations, and this counts the attempts that burned
        budget without producing a query.
        """
        return self.final.generations_rejected

    def series(self, attribute: str) -> List[int]:
        """One per-hour series, e.g. ``series('bug_count')``."""
        return [getattr(sample, attribute) for sample in self.samples]


@dataclass
class CampaignConfig:
    """Configuration of a TQS campaign."""

    dataset: str = "shopping"
    dataset_rows: int = 150
    hours: int = 24
    queries_per_hour: int = 12
    seed: int = 5
    use_noise: bool = True
    use_ground_truth: bool = True
    use_kqe: bool = True
    max_hint_sets: Optional[int] = None
    # Reference execution strategy ("row" or "columnar") and the
    # content-addressed render/result cache — differential campaigns only;
    # both leave verdicts bit-identical (see repro.core.qcache).
    reference_executor: str = "row"
    use_query_cache: bool = False
    # Widened-grammar probabilities (set operations, scalar subqueries,
    # CTEs).  0.0 keeps the classic join-query-only grammar and, by the
    # no-draw gating in the generator, byte-identical RNG streams.
    setop_probability: float = 0.0
    scalar_subquery_probability: float = 0.0
    cte_probability: float = 0.0

    def dsg_config(self) -> DSGConfig:
        """The DSG configuration implied by this campaign."""
        return DSGConfig(
            dataset=self.dataset,
            dataset_rows=self.dataset_rows,
            seed=self.seed,
            inject_noise=self.use_noise,
            adversarial_pairs=self.use_noise,
            max_hint_sets=self.max_hint_sets,
            generation=GenerationConfig(
                setop_probability=self.setop_probability,
                scalar_subquery_probability=self.scalar_subquery_probability,
                cte_probability=self.cte_probability,
            ),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign, fully described by plain data — the stable public API.

    Where the legacy runners took live objects plus a parameter sprawl
    (dialect profile, baseline instance, adapter, pipeline config, ...), a
    spec names everything by string and scalar, so it can be stored, diffed,
    hashed, shipped across processes and replayed.  :func:`run_campaign` is
    the single entrypoint consuming it.

    ``kind`` selects the campaign flavour:

    * ``"tqs"`` — TQS against the simulated ``dialect``;
    * ``"baseline"`` — SQLancer-style ``baseline`` against ``dialect``;
    * ``"differential"`` — TQS generation differentially against the real
      ``backend`` adapter, honouring ``reference_executor``,
      ``use_query_cache`` and ``pipeline_batch_size``.

    ``workers > 1`` routes through the multiprocessing pool
    (:mod:`repro.core.parallel`) and returns its merged
    ``ParallelCampaignResult`` instead of a :class:`CampaignResult`.
    """

    kind: str = "tqs"
    dialect: str = "SimMySQL"
    baseline: str = ""
    backend: str = "sqlite"
    dataset: str = "shopping"
    dataset_rows: int = 150
    hours: int = 24
    queries_per_hour: int = 12
    seed: int = 5
    use_noise: bool = True
    use_ground_truth: bool = True
    use_kqe: bool = True
    max_hint_sets: Optional[int] = None
    reference_executor: str = "row"
    use_query_cache: bool = False
    setop_probability: float = 0.0
    scalar_subquery_probability: float = 0.0
    cte_probability: float = 0.0
    pipeline_batch_size: int = 1
    workers: int = 1

    def campaign_config(self) -> "CampaignConfig":
        """The per-shard :class:`CampaignConfig` this spec implies."""
        return CampaignConfig(
            dataset=self.dataset,
            dataset_rows=self.dataset_rows,
            hours=self.hours,
            queries_per_hour=self.queries_per_hour,
            seed=self.seed,
            use_noise=self.use_noise,
            use_ground_truth=self.use_ground_truth,
            use_kqe=self.use_kqe,
            max_hint_sets=self.max_hint_sets,
            reference_executor=self.reference_executor,
            use_query_cache=self.use_query_cache,
            setop_probability=self.setop_probability,
            scalar_subquery_probability=self.scalar_subquery_probability,
            cte_probability=self.cte_probability,
        )

    def pipeline_config(self) -> Optional[PipelineConfig]:
        """The execution-pipeline config, or None for the serial path."""
        if self.pipeline_batch_size > 1:
            return PipelineConfig(batch_size=self.pipeline_batch_size)
        return None


def run_campaign(spec: CampaignSpec, on_hour: Optional["OnHour"] = None):
    """Run the campaign *spec* describes; the single public entrypoint.

    Returns a :class:`CampaignResult`, or the parallel pool's merged
    ``ParallelCampaignResult`` when ``spec.workers > 1`` (the ``on_hour``
    hook is a serial-path seam and is ignored by the pool, which has its own
    coordinator-side hooks).
    """
    if spec.kind not in ("tqs", "baseline", "differential"):
        raise CampaignError(
            f"unknown campaign kind {spec.kind!r}; "
            "expected 'tqs', 'baseline' or 'differential'"
        )
    if spec.kind == "baseline" and not spec.baseline:
        raise CampaignError("baseline campaigns need spec.baseline set")
    config = spec.campaign_config()
    if spec.workers > 1:
        # Deferred import: the parallel runner imports this module.
        from repro.core.parallel import (
            ParallelCampaignConfig,
            build_shard_specs,
            run_parallel_shards,
        )

        shards = build_shard_specs(
            spec.kind, config, spec.workers, dialect=spec.dialect,
            baseline=spec.baseline, backend=spec.backend,
            batch_size=spec.pipeline_batch_size,
        )
        return run_parallel_shards(
            shards,
            ParallelCampaignConfig(
                workers=spec.workers,
                pipeline_batch_size=spec.pipeline_batch_size,
            ),
        )
    if spec.kind == "tqs":
        return run_tqs_campaign(dialect_by_name(spec.dialect), config,
                                on_hour=on_hour)
    if spec.kind == "baseline":
        return run_baseline_campaign(make_baseline(spec.baseline),
                                     dialect_by_name(spec.dialect), config,
                                     on_hour=on_hour)
    return run_differential_campaign(backend_from_name(spec.backend), config,
                                     pipeline=spec.pipeline_config(),
                                     on_hour=on_hour)


# --------------------------------------------------------------- shared loop


@dataclass
class HourRecord:
    """One simulated hour's deltas, handed to the ``on_hour`` hook.

    ``new_labels`` are the canonical labels of isomorphic sets first explored
    during this hour; ``new_incidents`` the bug incidents recorded during it.
    Both are what a parallel worker must ship to the coordinator so the merged
    campaign preserves the per-hour series contract.
    """

    hour: int
    sample: HourlySample
    new_labels: List[str]
    new_incidents: List[BugIncident]


OnHour = Callable[[HourRecord], None]

# The per-hour budget: a constant, or a callable mapping the 1-based hour to
# that hour's budget — the seam through which adaptive shard budgets flow.
QueriesPerHour = Union[int, Callable[[int], int]]


def run_campaign_loop(tester, result: CampaignResult, hours: int,
                      queries_per_hour: QueriesPerHour,
                      on_hour: Optional[OnHour] = None) -> CampaignResult:
    """Drive any tester through a budgeted campaign, one shared loop.

    *tester* must expose ``run_iteration()`` (raising
    :class:`~repro.errors.GenerationError` when a walk dead-ends), the
    cumulative counters ``queries_generated`` / ``queries_executed`` /
    ``explored_isomorphic_sets``, a ``bug_log`` and a ``diversity``
    isomorphic-set counter.  :class:`~repro.core.tqs.TQS`, every
    :class:`~repro.baselines.base.BaselineTester` and
    :class:`~repro.core.differential.DifferentialTester` all do.  A tester may
    additionally expose ``flush()``; it is called at every hour boundary so
    batched execution (the pipelined differential tester) drains before the
    hour's counters are sampled — which is what keeps pipelined per-hour
    series identical to serial ones.

    *queries_per_hour* may be a callable of the 1-based hour instead of a
    constant: the adaptive-budget worker uses that to apply the coordinator's
    per-round reallocations without forking the loop.
    """
    registry = obs.get_registry()
    rejected = 0
    known_labels: Set[str] = set()
    incident_watermark = 0
    flush = getattr(tester, "flush", None)
    # Counter baselines: testers hand cumulative counts to the loop, telemetry
    # counters want per-hour deltas (and must stay correct for testers that
    # are resumed with non-zero counts).
    prev_generated = tester.queries_generated
    prev_executed = tester.queries_executed
    prev_sets = tester.explored_isomorphic_sets
    prev_bugs = tester.bug_log.bug_count
    prev_rejected = 0
    for hour in range(1, hours + 1):
        budget = (queries_per_hour(hour) if callable(queries_per_hour)
                  else queries_per_hour)
        for _ in range(budget):
            try:
                tester.run_iteration()
            except GenerationError:
                # A failed generation must not abort the campaign, but it must
                # not vanish either: it burned budget without a query.
                rejected += 1
        if flush is not None:
            flush()
        sample = HourlySample(
            hour=hour,
            queries_generated=tester.queries_generated,
            queries_executed=tester.queries_executed,
            isomorphic_sets=tester.explored_isomorphic_sets,
            bug_count=tester.bug_log.bug_count,
            bug_type_count=tester.bug_log.bug_type_count,
            generations_rejected=rejected,
        )
        result.samples.append(sample)
        registry.counter("campaign.hours").inc()
        registry.counter("campaign.queries_generated").inc(
            sample.queries_generated - prev_generated)
        registry.counter("campaign.queries_executed").inc(
            sample.queries_executed - prev_executed)
        registry.counter("campaign.novel_labels").inc(
            sample.isomorphic_sets - prev_sets)
        registry.counter("campaign.bugs").inc(sample.bug_count - prev_bugs)
        registry.counter("campaign.generations_rejected").inc(
            rejected - prev_rejected)
        prev_generated = sample.queries_generated
        prev_executed = sample.queries_executed
        prev_sets = sample.isomorphic_sets
        prev_bugs = sample.bug_count
        prev_rejected = rejected
        if on_hour is not None:
            current_labels = tester.diversity.labels
            new_labels = sorted(current_labels - known_labels)
            known_labels.update(new_labels)
            new_incidents = list(tester.bug_log.incidents[incident_watermark:])
            incident_watermark = len(tester.bug_log.incidents)
            on_hour(HourRecord(hour=hour, sample=sample, new_labels=new_labels,
                               new_incidents=new_incidents))
    result.bug_log = tester.bug_log
    return result


# ----------------------------------------------------------- tester factories


def tqs_variant_name(config: CampaignConfig) -> str:
    """The Table 5 variant name implied by a campaign's ablation switches."""
    if not config.use_noise:
        return "TQS!Noise"
    if not config.use_ground_truth:
        return "TQS!GT"
    if not config.use_kqe:
        return "TQS!KQE"
    return "TQS"


def build_tqs_tester(dialect: DialectProfile, config: CampaignConfig) -> TQS:
    """Construct the DSG + engine + TQS stack for one campaign (or shard)."""
    dsg = DSG(config.dsg_config())
    engine = Engine(dsg.database, dialect)
    return TQS(
        dsg,
        engine,
        TQSConfig(
            use_ground_truth=config.use_ground_truth,
            use_kqe=config.use_kqe,
            seed=config.seed,
        ),
    )


def build_baseline_tester(baseline: BaselineTester, dialect: DialectProfile,
                          config: CampaignConfig) -> BaselineTester:
    """Bind a baseline tester to a freshly generated database and engine."""
    dsg = DSG(config.dsg_config())
    engine = Engine(dsg.database, dialect)
    baseline.bind(dsg, engine, seed=config.seed)
    return baseline


def build_differential_tester(backend: BackendAdapter, config: CampaignConfig,
                              reference: Optional[Engine] = None,
                              differential: Optional[DifferentialConfig] = None,
                              pipeline: Optional[PipelineConfig] = None,
                              query_cache: Optional[QueryCache] = None
                              ) -> DifferentialTester:
    """Deploy a DSG database into *backend* and wrap it in a tester.

    ``config.reference_executor`` selects the reference execution strategy
    ("row" / "columnar"); ``config.use_query_cache`` attaches a fresh
    :class:`~repro.core.qcache.QueryCache` serving both reference results and
    the backend's rendered SQL (pass *query_cache* to share one across
    testers, e.g. for repeat-campaign benches).

    A failed deploy (schema rejected, data unloadable) closes the adapter
    before re-raising, so callers that never obtain a tester cannot leak a
    connection.
    """
    dsg = DSG(config.dsg_config())
    differential = differential or DifferentialConfig(
        use_kqe=config.use_kqe, seed=config.seed
    )
    reference = reference or reference_engine(
        dsg.database, executor=config.reference_executor
    )
    if query_cache is None and config.use_query_cache:
        query_cache = QueryCache()
    if query_cache is not None and hasattr(backend, "query_cache"):
        backend.query_cache = query_cache
    try:
        backend.deploy(dsg.database)
    except Exception:
        backend.close()
        raise
    return DifferentialTester(dsg, backend, reference=reference,
                              config=differential, pipeline=pipeline,
                              query_cache=query_cache)


# ------------------------------------------------------------ campaign kinds


def run_tqs_campaign(dialect: DialectProfile,
                     config: Optional[CampaignConfig] = None,
                     on_hour: Optional[OnHour] = None) -> CampaignResult:
    """Run TQS against one simulated DBMS for a budgeted number of hours.

    Deprecated thin wrapper: prefer ``run_campaign(CampaignSpec(kind="tqs",
    dialect=...))``.  Kept for callers injecting a live
    :class:`DialectProfile`.
    """
    config = config or CampaignConfig()
    tqs = build_tqs_tester(dialect, config)
    result = CampaignResult(tool=tqs_variant_name(config), dbms=dialect.name,
                            dataset=config.dataset)
    return run_campaign_loop(tqs, result, config.hours, config.queries_per_hour,
                             on_hour=on_hour)


def run_baseline_campaign(baseline: BaselineTester, dialect: DialectProfile,
                          config: Optional[CampaignConfig] = None,
                          on_hour: Optional[OnHour] = None) -> CampaignResult:
    """Run one SQLancer-style baseline for the same budget.

    Deprecated thin wrapper: prefer ``run_campaign(CampaignSpec(
    kind="baseline", baseline=...))``.  Kept for callers injecting a live
    :class:`BaselineTester`.
    """
    config = config or CampaignConfig()
    baseline = build_baseline_tester(baseline, dialect, config)
    result = CampaignResult(tool=baseline.name, dbms=dialect.name,
                            dataset=config.dataset)
    return run_campaign_loop(baseline, result, config.hours,
                             config.queries_per_hour, on_hour=on_hour)


def run_differential_campaign(backend: BackendAdapter,
                              config: Optional[CampaignConfig] = None,
                              reference: Optional[Engine] = None,
                              differential: Optional[DifferentialConfig] = None,
                              pipeline: Optional[PipelineConfig] = None,
                              on_hour: Optional[OnHour] = None) -> CampaignResult:
    """Run the TQS generator differentially against a real (or wrapped) backend.

    Deprecated thin wrapper: prefer ``run_campaign(CampaignSpec(
    kind="differential", backend=...))``.  Kept for callers injecting a live
    adapter, reference engine or pipeline config.

    The DSG-generated, noise-injected database is deployed into *backend*
    (rendered CREATE TABLE / INSERT for real engines), then every generated
    query executes on both the bug-free reference executor and the backend; any
    normalized-result disagreement is recorded as a bug incident.  The returned
    :class:`CampaignResult` carries the same per-hour series as the simulated
    campaigns, so the analysis/reporting layer works unchanged.

    *pipeline* selects the overlapped execution schedule: with a
    ``batch_size`` above 1, target and reference executions run concurrently
    (see :mod:`repro.core.execpipe`) with bit-identical verdicts to the
    default serial path.
    """
    config = config or CampaignConfig()
    tester: Optional[DifferentialTester] = None
    try:
        tester = build_differential_tester(backend, config, reference=reference,
                                           differential=differential,
                                           pipeline=pipeline)
        result = CampaignResult(tool="TQS-differential", dbms=backend.name,
                                dataset=config.dataset)
        return run_campaign_loop(tester, result, config.hours,
                                 config.queries_per_hour, on_hour=on_hour)
    finally:
        # The tester's close() flushes pipeline threads and closes the
        # adapter; when the build itself failed there is no tester, but the
        # adapter may still hold a connection (close() is idempotent).
        if tester is not None:
            tester.close()
        else:
            backend.close()


def run_ablation(dialect: DialectProfile, base_config: Optional[CampaignConfig] = None
                 ) -> Dict[str, CampaignResult]:
    """Run the four Table 5 variants against one DBMS."""
    base_config = base_config or CampaignConfig()
    variants = {
        "TQS": {},
        "TQS!Noise": {"use_noise": False},
        "TQS!GT": {"use_ground_truth": False},
        "TQS!KQE": {"use_kqe": False},
    }
    results: Dict[str, CampaignResult] = {}
    for name, overrides in variants.items():
        config = CampaignConfig(**{**base_config.__dict__, **overrides})
        results[name] = run_tqs_campaign(dialect, config)
    return results
