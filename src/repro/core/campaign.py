"""Testing campaigns: the simulated 24-hour runs behind every figure and table.

The paper runs each tool for 24 wall-clock hours and reports per-hour series
(diversity, bug count) plus end-of-run totals (Table 4, Table 5).  A laptop
reproduction cannot spend 24 real hours per cell, so a campaign is budgeted:
each simulated "hour" corresponds to a fixed number of generated queries, and
all per-hour series are reported against simulated hours.  Shapes (who grows
faster, where curves flatten) are preserved; absolute per-hour magnitudes simply
scale with the per-hour budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.backends.base import BackendAdapter
from repro.baselines.base import BaselineTester
from repro.core.bug_report import BugLog
from repro.core.differential import DifferentialConfig, DifferentialTester
from repro.core.tqs import TQS, TQSConfig
from repro.dsg.pipeline import DSG, DSGConfig
from repro.engine.dialects import DialectProfile
from repro.engine.engine import Engine, reference_engine
from repro.errors import CampaignError, GenerationError


@dataclass
class HourlySample:
    """The cumulative state of a campaign after one simulated hour."""

    hour: int
    queries_generated: int
    queries_executed: int
    isomorphic_sets: int
    bug_count: int
    bug_type_count: int


@dataclass
class CampaignResult:
    """Full output of one campaign."""

    tool: str
    dbms: str
    dataset: str
    samples: List[HourlySample] = field(default_factory=list)
    bug_log: Optional[BugLog] = None

    @property
    def final(self) -> HourlySample:
        """The last hourly sample."""
        if not self.samples:
            raise CampaignError("campaign produced no samples")
        return self.samples[-1]

    def series(self, attribute: str) -> List[int]:
        """One per-hour series, e.g. ``series('bug_count')``."""
        return [getattr(sample, attribute) for sample in self.samples]


@dataclass
class CampaignConfig:
    """Configuration of a TQS campaign."""

    dataset: str = "shopping"
    dataset_rows: int = 150
    hours: int = 24
    queries_per_hour: int = 12
    seed: int = 5
    use_noise: bool = True
    use_ground_truth: bool = True
    use_kqe: bool = True
    max_hint_sets: Optional[int] = None

    def dsg_config(self) -> DSGConfig:
        """The DSG configuration implied by this campaign."""
        return DSGConfig(
            dataset=self.dataset,
            dataset_rows=self.dataset_rows,
            seed=self.seed,
            inject_noise=self.use_noise,
            adversarial_pairs=self.use_noise,
            max_hint_sets=self.max_hint_sets,
        )


def run_tqs_campaign(dialect: DialectProfile,
                     config: Optional[CampaignConfig] = None) -> CampaignResult:
    """Run TQS against one simulated DBMS for a budgeted number of hours."""
    config = config or CampaignConfig()
    dsg = DSG(config.dsg_config())
    engine = Engine(dsg.database, dialect)
    tqs = TQS(
        dsg,
        engine,
        TQSConfig(
            use_ground_truth=config.use_ground_truth,
            use_kqe=config.use_kqe,
            seed=config.seed,
        ),
    )
    variant = "TQS"
    if not config.use_noise:
        variant = "TQS!Noise"
    elif not config.use_ground_truth:
        variant = "TQS!GT"
    elif not config.use_kqe:
        variant = "TQS!KQE"
    result = CampaignResult(tool=variant, dbms=dialect.name, dataset=config.dataset)
    for hour in range(1, config.hours + 1):
        for _ in range(config.queries_per_hour):
            try:
                tqs.run_iteration()
            except GenerationError:
                continue
        result.samples.append(
            HourlySample(
                hour=hour,
                queries_generated=tqs.queries_generated,
                queries_executed=tqs.queries_executed,
                isomorphic_sets=tqs.explored_isomorphic_sets,
                bug_count=tqs.bug_log.bug_count,
                bug_type_count=tqs.bug_log.bug_type_count,
            )
        )
    result.bug_log = tqs.bug_log
    return result


def run_baseline_campaign(baseline: BaselineTester, dialect: DialectProfile,
                          config: Optional[CampaignConfig] = None) -> CampaignResult:
    """Run one SQLancer-style baseline for the same budget."""
    config = config or CampaignConfig()
    dsg = DSG(config.dsg_config())
    engine = Engine(dsg.database, dialect)
    baseline.bind(dsg, engine, seed=config.seed)
    result = CampaignResult(tool=baseline.name, dbms=dialect.name, dataset=config.dataset)
    for hour in range(1, config.hours + 1):
        for _ in range(config.queries_per_hour):
            # Baseline generators walk the same schema graph as TQS and can hit
            # the same dead ends; one failed generation must not abort the
            # whole campaign (mirrors the TQS loop above).
            try:
                baseline.run_iteration()
            except GenerationError:
                continue
        result.samples.append(
            HourlySample(
                hour=hour,
                queries_generated=baseline.queries_generated,
                queries_executed=baseline.queries_executed,
                isomorphic_sets=baseline.explored_isomorphic_sets,
                bug_count=baseline.bug_log.bug_count,
                bug_type_count=baseline.bug_log.bug_type_count,
            )
        )
    result.bug_log = baseline.bug_log
    return result


def run_differential_campaign(backend: BackendAdapter,
                              config: Optional[CampaignConfig] = None,
                              reference: Optional[Engine] = None,
                              differential: Optional[DifferentialConfig] = None
                              ) -> CampaignResult:
    """Run the TQS generator differentially against a real (or wrapped) backend.

    The DSG-generated, noise-injected database is deployed into *backend*
    (rendered CREATE TABLE / INSERT for real engines), then every generated
    query executes on both the bug-free reference executor and the backend; any
    normalized-result disagreement is recorded as a bug incident.  The returned
    :class:`CampaignResult` carries the same per-hour series as the simulated
    campaigns, so the analysis/reporting layer works unchanged.
    """
    config = config or CampaignConfig()
    dsg = DSG(config.dsg_config())
    differential = differential or DifferentialConfig(
        use_kqe=config.use_kqe, seed=config.seed
    )
    reference = reference or reference_engine(dsg.database)
    backend.deploy(dsg.database)
    tester = DifferentialTester(dsg, backend, reference=reference,
                                config=differential)
    result = CampaignResult(tool="TQS-differential", dbms=backend.name,
                            dataset=config.dataset)
    try:
        for hour in range(1, config.hours + 1):
            for _ in range(config.queries_per_hour):
                try:
                    tester.run_iteration()
                except GenerationError:
                    continue
            result.samples.append(
                HourlySample(
                    hour=hour,
                    queries_generated=tester.queries_generated,
                    queries_executed=tester.queries_executed,
                    isomorphic_sets=tester.explored_isomorphic_sets,
                    bug_count=tester.bug_log.bug_count,
                    bug_type_count=tester.bug_log.bug_type_count,
                )
            )
    finally:
        backend.close()
    result.bug_log = tester.bug_log
    return result


def run_ablation(dialect: DialectProfile, base_config: Optional[CampaignConfig] = None
                 ) -> Dict[str, CampaignResult]:
    """Run the four Table 5 variants against one DBMS."""
    base_config = base_config or CampaignConfig()
    variants = {
        "TQS": {},
        "TQS!Noise": {"use_noise": False},
        "TQS!GT": {"use_ground_truth": False},
        "TQS!KQE": {"use_kqe": False},
    }
    results: Dict[str, CampaignResult] = {}
    for name, overrides in variants.items():
        config = CampaignConfig(**{**base_config.__dict__, **overrides})
        results[name] = run_tqs_campaign(dialect, config)
    return results
