"""TQS core: the testing loop, bug logs, reduction, campaigns and parallel search."""

from repro.core.bug_report import BugIncident, BugLog
from repro.core.campaign import (
    CampaignConfig,
    CampaignResult,
    HourlySample,
    run_ablation,
    run_baseline_campaign,
    run_differential_campaign,
    run_tqs_campaign,
)
from repro.core.differential import (
    DifferentialConfig,
    DifferentialOracle,
    DifferentialOutcome,
    DifferentialTester,
    result_sets_match,
)
from repro.core.parallel import (
    ParallelSearchConfig,
    ParallelSearchResult,
    ParallelSearchSimulator,
)
from repro.core.reduction import QueryReducer
from repro.core.tqs import TQS, IterationOutcome, TQSConfig

__all__ = [
    "BugIncident",
    "BugLog",
    "CampaignConfig",
    "CampaignResult",
    "DifferentialConfig",
    "DifferentialOracle",
    "DifferentialOutcome",
    "DifferentialTester",
    "HourlySample",
    "IterationOutcome",
    "ParallelSearchConfig",
    "ParallelSearchResult",
    "ParallelSearchSimulator",
    "QueryReducer",
    "TQS",
    "TQSConfig",
    "result_sets_match",
    "run_ablation",
    "run_baseline_campaign",
    "run_differential_campaign",
    "run_tqs_campaign",
]
