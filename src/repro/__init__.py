"""TQS: Transformed Query Synthesis — detecting logic bugs of join optimizations.

A from-scratch Python reproduction of "Detecting Logic Bugs of Join Optimizations
in DBMS" (SIGMOD 2023).  The package contains both the paper's contribution (DSG
and KQE, orchestrated by :class:`repro.core.TQS`) and every substrate it needs:
an in-memory relational engine with hint-controllable join algorithms, four
simulated DBMS dialects with seeded logic bugs, SQLancer-style baselines, and the
campaign/benchmark harness that regenerates the paper's tables and figures.

Quickstart
----------
>>> from repro import DSG, DSGConfig, Engine, SIM_MYSQL, TQS, TQSConfig
>>> dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=120, seed=1))
>>> engine = Engine(dsg.database, SIM_MYSQL)
>>> tqs = TQS(dsg, engine, TQSConfig(seed=1))
>>> log = tqs.run(iterations=20)
>>> log.bug_count >= 0
True
"""

from repro.backends import (
    BackendAdapter,
    DuckDBBackend,
    SQLDialectSpec,
    SQLITE_DIALECT,
    SQLRenderer,
    SQLiteBackend,
    SimulatedBackend,
    backend_from_name,
    register_backend,
)
from repro.core import (
    AdaptiveBudgetPolicy,
    BudgetPolicy,
    BugIncident,
    BugLog,
    CampaignConfig,
    CampaignResult,
    CampaignSpec,
    DifferentialConfig,
    DifferentialOracle,
    DifferentialOutcome,
    DifferentialTester,
    ExecutionPipeline,
    ParallelCampaignConfig,
    PipelineConfig,
    ParallelCampaignResult,
    ParallelSearchConfig,
    ParallelSearchSimulator,
    QueryCache,
    QueryReducer,
    TQS,
    TQSConfig,
    run_ablation,
    run_baseline_campaign,
    run_campaign,
    run_differential_campaign,
    run_parallel_baseline_campaign,
    run_parallel_differential_campaign,
    run_parallel_shards,
    run_parallel_tqs_campaign,
    run_tqs_campaign,
)
from repro.dsg import DSG, DSGConfig, GroundTruthOracle, WideTable
from repro.engine import (
    ALL_DIALECTS,
    Engine,
    ExecutorBackend,
    ResultSet,
    SIM_MARIADB,
    SIM_MYSQL,
    SIM_TIDB,
    SIM_XDB,
    dialect_by_name,
    executor_from_name,
    reference_engine,
    register_executor,
    registered_executors,
)
from repro.kqe import KQE, KQEConfig
from repro.optimizer import HintSet, standard_hint_sets
from repro.plan import CompoundQuerySpec, JoinType, QuerySpec, SetOperator

__version__ = "1.0.0"

__all__ = [
    "ALL_DIALECTS",
    "AdaptiveBudgetPolicy",
    "BackendAdapter",
    "BudgetPolicy",
    "BugIncident",
    "BugLog",
    "CampaignConfig",
    "CampaignResult",
    "CampaignSpec",
    "DSG",
    "DSGConfig",
    "DifferentialConfig",
    "DifferentialOracle",
    "DifferentialOutcome",
    "DifferentialTester",
    "DuckDBBackend",
    "Engine",
    "ExecutionPipeline",
    "ExecutorBackend",
    "GroundTruthOracle",
    "HintSet",
    "JoinType",
    "KQE",
    "KQEConfig",
    "ParallelCampaignConfig",
    "PipelineConfig",
    "ParallelCampaignResult",
    "ParallelSearchConfig",
    "ParallelSearchSimulator",
    "QueryCache",
    "QueryReducer",
    "CompoundQuerySpec",
    "QuerySpec",
    "ResultSet",
    "SetOperator",
    "SQLDialectSpec",
    "SQLITE_DIALECT",
    "SQLRenderer",
    "SQLiteBackend",
    "SimulatedBackend",
    "SIM_MARIADB",
    "SIM_MYSQL",
    "SIM_TIDB",
    "SIM_XDB",
    "TQS",
    "TQSConfig",
    "WideTable",
    "backend_from_name",
    "dialect_by_name",
    "executor_from_name",
    "reference_engine",
    "register_backend",
    "register_executor",
    "registered_executors",
    "run_ablation",
    "run_baseline_campaign",
    "run_campaign",
    "run_differential_campaign",
    "run_parallel_baseline_campaign",
    "run_parallel_differential_campaign",
    "run_parallel_shards",
    "run_parallel_tqs_campaign",
    "run_tqs_campaign",
    "standard_hint_sets",
    "__version__",
]
