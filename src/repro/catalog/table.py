"""Table schemas: columns, primary keys and secondary keys."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.catalog.column import Column
from repro.errors import CatalogError, SchemaError


@dataclass(frozen=True)
class KeyConstraint:
    """A (possibly composite) key over one table."""

    columns: Tuple[str, ...]
    unique: bool = False
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("a key constraint must cover at least one column")


class TableSchema:
    """Schema of a single table: ordered columns plus key metadata.

    The DSG normalizer always adds an explicit ``RowID`` surrogate primary key
    (per paper §3.1) and additionally records the *implicit* primary key -- the
    candidate key discovered from functional dependencies -- so the query
    generator can build PK–FK join conditions.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str] = (),
        implicit_key: Sequence[str] = (),
        keys: Sequence[KeyConstraint] = (),
    ) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._by_name: Dict[str, Column] = {}
        for column in self.columns:
            if column.name in self._by_name:
                raise SchemaError(f"duplicate column {column.name!r} in table {name!r}")
            self._by_name[column.name] = column
        self.primary_key: Tuple[str, ...] = tuple(primary_key)
        self.implicit_key: Tuple[str, ...] = tuple(implicit_key)
        self.keys: Tuple[KeyConstraint, ...] = tuple(keys)
        for key_col in list(self.primary_key) + list(self.implicit_key):
            if key_col not in self._by_name:
                raise SchemaError(
                    f"key column {key_col!r} is not a column of table {name!r}"
                )

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Names of all columns, in declaration order."""
        return tuple(column.name for column in self.columns)

    def has_column(self, name: str) -> bool:
        """True when the table defines a column called *name*."""
        return name in self._by_name

    def column(self, name: str) -> Column:
        """Return the column named *name* or raise :class:`CatalogError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from None

    def data_columns(self) -> Tuple[Column, ...]:
        """All columns except the surrogate ``RowID``."""
        return tuple(c for c in self.columns if c.name != "RowID")

    def render_ddl(self) -> str:
        """Render a CREATE TABLE statement for this schema."""
        parts = [column.render_ddl() for column in self.columns]
        if self.primary_key:
            parts.append(f"PRIMARY KEY ({', '.join(self.primary_key)})")
        for key in self.keys:
            keyword = "UNIQUE KEY" if key.unique else "KEY"
            key_name = key.name or "_".join(key.columns)
            parts.append(f"{keyword} {key_name} ({', '.join(key.columns)})")
        body = ",\n  ".join(parts)
        return f"CREATE TABLE {self.name} (\n  {body}\n);"

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"TableSchema({self.name!r}, columns={list(self.column_names)})"


def make_table(
    name: str,
    columns: Iterable[Column],
    primary_key: Sequence[str] = (),
    implicit_key: Sequence[str] = (),
    keys: Sequence[KeyConstraint] = (),
) -> TableSchema:
    """Convenience constructor mirroring :class:`TableSchema`."""
    return TableSchema(
        name,
        list(columns),
        primary_key=primary_key,
        implicit_key=implicit_key,
        keys=keys,
    )
