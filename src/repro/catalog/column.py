"""Column definitions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sqlvalue.datatypes import DataType


@dataclass(frozen=True)
class Column:
    """A single column of a table.

    Attributes
    ----------
    name:
        Column name, unique within its table.
    dtype:
        The SQL :class:`~repro.sqlvalue.datatypes.DataType` of the column.
    comment:
        Free-form description, used by the dataset generators to record the
        semantic role of a column (e.g. ``"implicit primary key"``).
    """

    name: str
    dtype: DataType
    comment: Optional[str] = None

    @property
    def nullable(self) -> bool:
        """Whether the column accepts NULL."""
        return self.dtype.nullable

    def render_ddl(self) -> str:
        """Render this column as a DDL fragment."""
        return f"{self.name} {self.dtype.render()}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render_ddl()
