"""Catalog objects: columns, table schemas, keys and database schemas."""

from repro.catalog.column import Column
from repro.catalog.schema import DatabaseSchema, ForeignKey
from repro.catalog.table import KeyConstraint, TableSchema, make_table

__all__ = [
    "Column",
    "DatabaseSchema",
    "ForeignKey",
    "KeyConstraint",
    "TableSchema",
    "make_table",
]
