"""Database schemas: a set of tables plus primary–foreign key relationships."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.table import TableSchema
from repro.errors import CatalogError, SchemaError


@dataclass(frozen=True)
class ForeignKey:
    """A primary–foreign key relationship between two tables.

    ``table.columns`` references ``ref_table.ref_columns``; in the DSG schema the
    referenced columns are always the implicit primary key of the parent table.
    """

    table: str
    columns: Tuple[str, ...]
    ref_table: str
    ref_columns: Tuple[str, ...]
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise SchemaError("foreign key column counts do not match")
        if not self.columns:
            raise SchemaError("foreign key must cover at least one column")

    def joins(self, table_a: str, table_b: str) -> bool:
        """True when this FK connects *table_a* and *table_b* (in either order)."""
        return {self.table, self.ref_table} == {table_a, table_b}

    def render_ddl(self) -> str:
        """Render as an ALTER TABLE ... ADD CONSTRAINT fragment."""
        fk_name = self.name or f"fk_{self.table}_{'_'.join(self.columns)}"
        return (
            f"ALTER TABLE {self.table} ADD CONSTRAINT {fk_name} "
            f"FOREIGN KEY ({', '.join(self.columns)}) "
            f"REFERENCES {self.ref_table} ({', '.join(self.ref_columns)});"
        )


class DatabaseSchema:
    """A collection of table schemas plus the PK–FK edges between them."""

    def __init__(
        self,
        tables: Sequence[TableSchema],
        foreign_keys: Sequence[ForeignKey] = (),
        name: str = "testdb",
    ) -> None:
        self.name = name
        self._tables: Dict[str, TableSchema] = {}
        for table in tables:
            if table.name in self._tables:
                raise SchemaError(f"duplicate table {table.name!r}")
            self._tables[table.name] = table
        self.foreign_keys: Tuple[ForeignKey, ...] = tuple(foreign_keys)
        for fk in self.foreign_keys:
            self._validate_foreign_key(fk)

    def _validate_foreign_key(self, fk: ForeignKey) -> None:
        child = self.table(fk.table)
        parent = self.table(fk.ref_table)
        for column in fk.columns:
            if not child.has_column(column):
                raise SchemaError(
                    f"foreign key column {column!r} missing from table {fk.table!r}"
                )
        for column in fk.ref_columns:
            if not parent.has_column(column):
                raise SchemaError(
                    f"referenced column {column!r} missing from table {fk.ref_table!r}"
                )

    @property
    def table_names(self) -> Tuple[str, ...]:
        """Names of all tables."""
        return tuple(self._tables)

    @property
    def tables(self) -> Tuple[TableSchema, ...]:
        """All table schemas."""
        return tuple(self._tables.values())

    def has_table(self, name: str) -> bool:
        """True when a table called *name* exists."""
        return name in self._tables

    def table(self, name: str) -> TableSchema:
        """Return the table schema named *name* or raise :class:`CatalogError`."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"schema has no table {name!r}") from None

    def foreign_keys_of(self, table: str) -> List[ForeignKey]:
        """Foreign keys where *table* participates as child or parent."""
        return [fk for fk in self.foreign_keys if table in (fk.table, fk.ref_table)]

    def join_edge(self, table_a: str, table_b: str) -> Optional[ForeignKey]:
        """Return the FK joining two tables, if any."""
        for fk in self.foreign_keys:
            if fk.joins(table_a, table_b):
                return fk
        return None

    def joinable_neighbors(self, table: str) -> List[str]:
        """Names of tables directly joinable with *table* through an FK."""
        neighbors = []
        for fk in self.foreign_keys:
            if fk.table == table:
                neighbors.append(fk.ref_table)
            elif fk.ref_table == table:
                neighbors.append(fk.table)
        return sorted(set(neighbors))

    def column_owner(self, column: str) -> List[str]:
        """Names of tables that define a column named *column*."""
        return [t.name for t in self.tables if t.has_column(column)]

    def render_ddl(self) -> str:
        """Render the full schema as DDL text."""
        statements = [table.render_ddl() for table in self.tables]
        statements.extend(fk.render_ddl() for fk in self.foreign_keys)
        return "\n\n".join(statements)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"DatabaseSchema({self.name!r}, tables={list(self.table_names)})"
