"""The public engine facade: execute logical queries under hints against a database."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.engine.dialects import DialectProfile
from repro.engine.executor import ExecutorBackend, executor_from_name
from repro.engine.faults import ActiveFaults
from repro.engine.resultset import ResultSet
from repro.optimizer.hints import HintSet, default_hints
from repro.optimizer.planner import Planner
from repro.plan.logical import (
    AnyQuerySpec,
    CompoundQuerySpec,
    QuerySpec,
    combine_set_rows,
)
from repro.plan.physical import ExecutionHooks, PhysicalOperator
from repro.storage.database import Database


@dataclass
class ExecutionReport:
    """Result of one query execution, with diagnostic metadata."""

    result: ResultSet
    hints: HintSet
    plan_description: str
    fired_bug_ids: Tuple[int, ...]


class Engine:
    """A simulated DBMS instance bound to one database.

    A clean engine (no dialect) behaves correctly; an engine built from a
    :class:`~repro.engine.dialects.DialectProfile` carries that dialect's seeded
    bug profile and can return incorrect result sets under the trigger
    conditions of those bugs -- exactly the behaviour TQS is designed to detect.
    """

    def __init__(
        self,
        database: Database,
        dialect: Optional[DialectProfile] = None,
        hooks: Optional[ExecutionHooks] = None,
        executor: Union[ExecutorBackend, str, None] = None,
    ) -> None:
        self.database = database
        self.dialect = dialect
        if hooks is not None:
            self.hooks = hooks
        elif dialect is not None:
            self.hooks = dialect.active_faults()
        else:
            self.hooks = ExecutionHooks()
        if isinstance(executor, str):
            executor = executor_from_name(executor)
        self.executor = executor
        self.planner = Planner(database, self.hooks)
        self.queries_executed = 0

    # ------------------------------------------------------------------ naming

    @property
    def name(self) -> str:
        """Engine display name."""
        if self.dialect is None:
            return "ReferenceEngine"
        return f"{self.dialect.name} {self.dialect.version}"

    # --------------------------------------------------------------- execution

    def plan(self, query: QuerySpec, hints: Optional[HintSet] = None) -> PhysicalOperator:
        """Build the physical plan without executing it (EXPLAIN)."""
        return self.planner.plan(query, hints or default_hints())

    def explain(self, query: QuerySpec, hints: Optional[HintSet] = None) -> str:
        """Return a textual plan description."""
        return self.plan(query, hints).explain()

    def execute(self, query: AnyQuerySpec, hints: Optional[HintSet] = None) -> ResultSet:
        """Execute *query* under *hints* and return its result set.

        A pluggable executor (``executor="columnar"``) only covers bug-free
        unhinted execution: hinted runs and fault-profile hooks always take
        the row path, whose per-row seams are where seeded bugs fire.
        """
        if (
            self.executor is not None
            and hints is None
            and type(self.hooks) is ExecutionHooks
        ):
            return self.executor.execute(self, query)
        return self.execute_with_report(query, hints).result

    def _execute_compound(
        self, query: CompoundQuerySpec, hints: Optional[HintSet]
    ) -> ExecutionReport:
        """Execute a set-operation query by folding its arm results.

        Each arm runs through the normal (row) path — under the same hints
        and fault hooks — and the shared :func:`combine_set_rows` fold merges
        the arm outputs.  A ``cte_name`` wrapper is inlined: the outer CTE
        projection is a pass-through, so the body's result *is* the result.
        """
        query.validate()
        reports = [self.execute_with_report(arm, hints) for arm in query.arms]
        rows = combine_set_rows([report.result.rows for report in reports],
                                query.operators)
        if query.limit is not None:
            rows = rows[: query.limit]
        fired: Tuple[int, ...] = tuple(sorted(
            {bug for report in reports for bug in report.fired_bug_ids}
        ))
        plan = "\n".join(
            part
            for report, op in zip(reports, list(query.operators) + [None])
            for part in ([report.plan_description] +
                         ([op.render()] if op is not None else []))
        )
        return ExecutionReport(
            result=ResultSet(query.output_columns(), rows),
            hints=reports[0].hints,
            plan_description=plan,
            fired_bug_ids=fired,
        )

    def execute_with_report(
        self, query: AnyQuerySpec, hints: Optional[HintSet] = None
    ) -> ExecutionReport:
        """Execute and also report the plan and which seeded bugs fired."""
        if isinstance(query, CompoundQuerySpec):
            return self._execute_compound(query, hints)
        hints = hints or default_hints()
        if isinstance(self.hooks, ActiveFaults):
            self.hooks.reset_fired()
        operator = self.planner.plan(query, hints)
        names = operator.output_columns()
        rows = [tuple(row[name] for name in names) for row in operator.rows()]
        self.queries_executed += 1
        fired: Tuple[int, ...] = ()
        if isinstance(self.hooks, ActiveFaults):
            fired = tuple(sorted(self.hooks.fired))
        return ExecutionReport(
            result=ResultSet(names, rows),
            hints=hints,
            plan_description=operator.explain(),
            fired_bug_ids=fired,
        )

    def execute_all_hints(
        self, query: QuerySpec, hint_sets: Sequence[HintSet]
    ) -> List[ExecutionReport]:
        """Execute the same logical query under every hint set (the trans_q step)."""
        return [self.execute_with_report(query, hints) for hints in hint_sets]


def reference_engine(
    database: Database,
    executor: Union[ExecutorBackend, str, None] = None,
) -> Engine:
    """A bug-free engine over *database* (used by tests and the NoRec baseline).

    *executor* selects the execution strategy by registry name ("row",
    "columnar") or instance; ``None`` and ``"row"`` both mean the classic
    row-dict interpreter.
    """
    if executor == "row":
        executor = None
    return Engine(database, dialect=None, hooks=ExecutionHooks(),
                  executor=executor)
