"""Fault injection: the seeded logic bugs of the simulated DBMSs.

The paper evaluates TQS against four real DBMSs whose optimizers contain latent
logic bugs.  Those systems are not available offline, so this module seeds the
same *classes* of bugs (Table 4) into the in-memory engine at the operator seams
defined in :mod:`repro.plan.physical`:

* the ``join_key`` seam corrupts join-key normalization (``0`` vs ``-0``,
  lossy ``varchar``→``double`` casts, cached-constant rounding);
* the ``null_pad`` seam corrupts the padding of outer joins (NULL becomes an
  empty string or zero, the MariaDB join-buffer bug family);
* the ``flag`` seam enables behavioural deviations (semi-join ignoring its join
  key under materialization, anti-join dropping NULL-key rows, merge join losing
  rows, LEFT JOIN silently converted to INNER JOIN, ...).

A bug only fires when its :class:`FaultTrigger` matches the execution context,
mirroring how the real bugs only manifest under particular physical plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from decimal import Decimal
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.plan.logical import JoinType
from repro.plan.physical import ExecRow, ExecutionHooks, JoinAlgorithm, TriggerContext
from repro.sqlvalue.casts import cast_for_domain, to_double_lossy
from repro.sqlvalue.comparison import correct_hash_key
from repro.sqlvalue.datatypes import TypeCategory
from repro.sqlvalue.values import NULL, canonical_numeric

HASH_BASED_ALGORITHMS = frozenset(
    {
        JoinAlgorithm.HASH,
        JoinAlgorithm.BLOCK_NESTED_LOOP_HASH,
        JoinAlgorithm.BATCHED_KEY_ACCESS,
        JoinAlgorithm.INDEX_NESTED_LOOP,
    }
)

SCAN_BASED_ALGORITHMS = frozenset(
    {JoinAlgorithm.NESTED_LOOP, JoinAlgorithm.BLOCK_NESTED_LOOP}
)


@dataclass(frozen=True)
class FaultTrigger:
    """Conditions under which a seeded bug fires.

    Every field is optional; ``None`` (or an empty frozenset for
    ``requires_disabled_switches``) means "don't care".  All specified conditions
    must hold simultaneously.
    """

    algorithms: Optional[FrozenSet[JoinAlgorithm]] = None
    join_types: Optional[FrozenSet[JoinType]] = None
    key_domains: Optional[FrozenSet[TypeCategory]] = None
    require_materialization: Optional[bool] = None
    require_semijoin_transform: Optional[bool] = None
    max_join_cache_level: Optional[int] = None
    requires_disabled_switches: FrozenSet[str] = frozenset()
    require_null_keys: Optional[bool] = None
    require_derived_from_subquery: Optional[bool] = None

    def matches(self, ctx: TriggerContext) -> bool:
        """True when the execution context satisfies every condition."""
        if self.algorithms is not None and ctx.algorithm not in self.algorithms:
            return False
        if self.join_types is not None and ctx.join_type not in self.join_types:
            return False
        if self.key_domains is not None and ctx.key_domain not in self.key_domains:
            return False
        if (
            self.require_materialization is not None
            and ctx.materialization != self.require_materialization
        ):
            return False
        if (
            self.require_semijoin_transform is not None
            and ctx.semijoin_transform != self.require_semijoin_transform
        ):
            return False
        if (
            self.max_join_cache_level is not None
            and ctx.join_cache_level > self.max_join_cache_level
        ):
            return False
        if not self.requires_disabled_switches <= ctx.disabled_switches:
            return False
        if self.require_null_keys is not None and ctx.has_null_keys != self.require_null_keys:
            return False
        if (
            self.require_derived_from_subquery is not None
            and ctx.derived_from_subquery != self.require_derived_from_subquery
        ):
            return False
        return True

    @property
    def plan_independent(self) -> bool:
        """True when the bug fires regardless of the chosen physical plan.

        Plan-independent bugs corrupt every hinted variant identically, which is
        why differential testing (the TQS!GT ablation) cannot reveal them.
        """
        return (
            self.algorithms is None
            and self.require_materialization is None
            and self.require_semijoin_transform is None
            and self.max_join_cache_level is None
            and not self.requires_disabled_switches
        )


# --------------------------------------------------------------------- behaviors

_NEGATIVE_ZERO_KEY = -5e-324
"""Denormal float used as the (incorrect) hash/merge key of ``-0`` values."""


def _is_negative_zero(value: Any) -> bool:
    if isinstance(value, float):
        return value == 0.0 and str(value).startswith("-")
    if isinstance(value, Decimal):
        return value == 0 and value.is_signed()
    return False


def _behavior_distinguish_negative_zero(value: Any, domain: TypeCategory) -> Any:
    if _is_negative_zero(value):
        return _NEGATIVE_ZERO_KEY
    return correct_hash_key(cast_for_domain(value, domain))


def _behavior_cast_to_double(value: Any, domain: TypeCategory) -> Any:
    return canonical_numeric(to_double_lossy(value))


def _behavior_round_decimal_constants(value: Any, domain: TypeCategory) -> Any:
    correct = correct_hash_key(cast_for_domain(value, domain))
    if isinstance(correct, (int, float, Decimal)) and not isinstance(correct, bool):
        return int(round(float(correct)))
    return correct


KEY_BEHAVIORS: Dict[str, Callable[[Any, TypeCategory], Any]] = {
    "distinguish_negative_zero": _behavior_distinguish_negative_zero,
    "cast_varchar_to_double": _behavior_cast_to_double,
    "round_decimal_constants": _behavior_round_decimal_constants,
}
"""join_key-seam behaviors by name."""

PAD_BEHAVIORS: Dict[str, Any] = {
    "empty_string": "",
    "zero": 0,
}
"""null_pad-seam behaviors by name (value used instead of NULL)."""


@dataclass(frozen=True)
class BugSpec:
    """One seeded logic bug, mirroring one row of Table 4.

    Attributes
    ----------
    bug_id:
        Stable identifier (1..20, the Table 4 numbering).
    dbms:
        Name of the simulated DBMS the bug belongs to.
    seam:
        ``"flag"``, ``"join_key"`` or ``"null_pad"``.
    behavior:
        Effect name (for ``flag``) or behavior name (for the other seams).
    trigger:
        When the bug fires.
    severity, status, description:
        Reporting metadata copied from Table 4.
    """

    bug_id: int
    dbms: str
    seam: str
    behavior: str
    trigger: FaultTrigger
    severity: str = "Major"
    status: str = "Verified"
    description: str = ""

    def __post_init__(self) -> None:
        if self.seam not in ("flag", "join_key", "null_pad"):
            raise ReproError(f"unknown fault seam {self.seam!r}")
        if self.seam == "join_key" and self.behavior not in KEY_BEHAVIORS:
            raise ReproError(f"unknown join_key behavior {self.behavior!r}")
        if self.seam == "null_pad" and self.behavior not in PAD_BEHAVIORS:
            raise ReproError(f"unknown null_pad behavior {self.behavior!r}")

    @property
    def plan_independent(self) -> bool:
        """Whether differential testing can never reveal this bug."""
        return self.trigger.plan_independent


class ActiveFaults(ExecutionHooks):
    """ExecutionHooks implementation backed by a list of seeded bugs.

    Besides corrupting execution, the object records which bug ids *fired*
    (i.e. had a matching trigger and were consulted at a seam) during the most
    recent query execution; the campaign uses this to attribute a detected
    mismatch to root-cause bug types, standing in for the paper's manual root
    cause analysis with C-Reduce-minimized test cases.
    """

    def __init__(self, bugs: Sequence[BugSpec] = ()) -> None:
        self.bugs: Tuple[BugSpec, ...] = tuple(bugs)
        self.fired: Set[int] = set()

    # -------------------------------------------------------------- bookkeeping

    def reset_fired(self) -> None:
        """Clear the fired-bug record (called before each query execution)."""
        self.fired.clear()

    def _matching(self, seam: str, trigger: TriggerContext) -> List[BugSpec]:
        return [
            bug
            for bug in self.bugs
            if bug.seam == seam and bug.trigger.matches(trigger)
        ]

    # ------------------------------------------------------------------- seams

    def join_key(self, value: Any, domain: TypeCategory, trigger: TriggerContext) -> Any:
        matching = self._matching("join_key", trigger)
        if not matching:
            return super().join_key(value, domain, trigger)
        result = value
        for bug in matching:
            self.fired.add(bug.bug_id)
            result = KEY_BEHAVIORS[bug.behavior](result, domain)
        return result

    def null_pad_value(self, column: str, trigger: TriggerContext) -> Any:
        matching = self._matching("null_pad", trigger)
        if not matching:
            return NULL
        bug = matching[0]
        self.fired.add(bug.bug_id)
        return PAD_BEHAVIORS[bug.behavior]

    def flag(self, effect: str, trigger: TriggerContext) -> bool:
        for bug in self.bugs:
            if bug.seam == "flag" and bug.behavior == effect and bug.trigger.matches(trigger):
                self.fired.add(bug.bug_id)
                return True
        return False

    def post_rows(self, rows: List[ExecRow], trigger: TriggerContext) -> List[ExecRow]:
        return rows

    # --------------------------------------------------------------- utilities

    def bug_by_id(self, bug_id: int) -> BugSpec:
        """Look up a seeded bug by id."""
        for bug in self.bugs:
            if bug.bug_id == bug_id:
                return bug
        raise ReproError(f"no seeded bug with id {bug_id}")

    def plan_independent_ids(self) -> Set[int]:
        """Ids of seeded bugs that no differential comparison can reveal."""
        return {bug.bug_id for bug in self.bugs if bug.plan_independent}

    def __len__(self) -> int:
        return len(self.bugs)
