"""Result sets returned by the simulated engines."""

from __future__ import annotations

from collections import Counter
from typing import Any, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.sqlvalue.values import is_null, normalize_row, row_sort_key


class ResultSet:
    """An executed query's output: column names plus rows.

    Rows are stored in the order the engine produced them, but comparisons
    are order-insensitive.  Two comparison domains exist, selected by the
    query shape: :meth:`same_rows` compares *sets* of normalized rows, sound
    for the DISTINCT projections the DSG oracle generates, while
    :meth:`same_bag` compares *multisets* — required the moment a query can
    legitimately emit duplicates (UNION ALL compounds), where set comparison
    would silently equate ``[1, 1]`` with ``[1]``.

    A result set is immutable after construction (``rows`` is a tuple of
    tuples), which lets :meth:`normalized` / :meth:`normalized_bag` cache
    their views: every ``same_rows`` / ``contains_all`` call — twice per
    comparison on the differential hot path — previously re-normalized both
    sides from scratch.
    """

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[Any]]) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        self.rows: Tuple[Tuple[Any, ...], ...] = tuple(tuple(row) for row in rows)
        self._normalized: Optional[FrozenSet[Tuple[Any, ...]]] = None
        self._normalized_bag: Optional[Counter] = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def is_empty(self) -> bool:
        """True when the result has no rows."""
        return not self.rows

    def normalized(self) -> FrozenSet[Tuple[Any, ...]]:
        """The set of normalized rows used for comparisons (computed once)."""
        if self._normalized is None:
            self._normalized = frozenset(normalize_row(row) for row in self.rows)
        return self._normalized

    def normalized_bag(self) -> Counter:
        """The multiset of normalized rows (row -> multiplicity), cached."""
        if self._normalized_bag is None:
            self._normalized_bag = Counter(
                normalize_row(row) for row in self.rows
            )
        return self._normalized_bag

    def sorted_rows(self) -> List[Tuple[Any, ...]]:
        """Rows sorted into a deterministic order (for display and snapshots)."""
        return sorted(self.rows, key=row_sort_key)

    def column_values(self, column: str) -> List[Any]:
        """All values of one output column."""
        index = self.columns.index(column)
        return [row[index] for row in self.rows]

    def same_rows(self, other: "ResultSet") -> bool:
        """Set equality of normalized rows."""
        return self.normalized() == other.normalized()

    def same_bag(self, other: "ResultSet") -> bool:
        """Multiset equality of normalized rows (duplicates count)."""
        return self.normalized_bag() == other.normalized_bag()

    def contains_all(self, other: "ResultSet") -> bool:
        """True when every row of *other* appears in this result set."""
        return other.normalized() <= self.normalized()

    def render(self, max_rows: int = 20) -> str:
        """Pretty-print the result set as an ASCII table."""
        header = " | ".join(self.columns)
        separator = "-+-".join("-" * len(name) for name in self.columns)
        lines = [header, separator]
        for row in self.sorted_rows()[:max_rows]:
            lines.append(" | ".join("NULL" if is_null(v) else str(v) for v in row))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        if not self.rows:
            lines.append("(empty set)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"ResultSet(columns={list(self.columns)}, rows={len(self.rows)})"
