"""Simulated DBMS engines: execution facade, result sets, faults and dialects."""

from repro.engine.dialects import (
    ALL_DIALECTS,
    SIM_MARIADB,
    SIM_MYSQL,
    SIM_TIDB,
    SIM_XDB,
    DialectProfile,
    dialect_by_name,
)
from repro.engine.engine import Engine, ExecutionReport, reference_engine
from repro.engine.executor import (
    ExecutorBackend,
    RowExecutor,
    executor_from_name,
    register_executor,
    registered_executors,
)
from repro.engine.faults import ActiveFaults, BugSpec, FaultTrigger
from repro.engine.resultset import ResultSet

__all__ = [
    "ALL_DIALECTS",
    "ActiveFaults",
    "BugSpec",
    "DialectProfile",
    "Engine",
    "ExecutionReport",
    "ExecutorBackend",
    "FaultTrigger",
    "ResultSet",
    "RowExecutor",
    "SIM_MARIADB",
    "SIM_MYSQL",
    "SIM_TIDB",
    "SIM_XDB",
    "dialect_by_name",
    "executor_from_name",
    "reference_engine",
    "register_executor",
    "registered_executors",
]
