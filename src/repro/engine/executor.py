"""The executor seam: pluggable strategies for bug-free reference execution.

The row executor is the planner-driven interpreter the repo has always had:
per-row dicts walked by the physical operator tree.  The columnar executor
(:mod:`repro.engine.columnar`) evaluates the same logical plan over column
vectors instead, an order of magnitude less per-row Python overhead on the
differential hot path.  Both are registered here by name — mirroring the
backend registry (:mod:`repro.backends`) — so campaigns select the reference
execution strategy with a string (``--executor columnar``) and tests
differential-test the two implementations against each other.

The seam only covers *bug-free* execution: :meth:`repro.engine.engine.Engine.execute`
delegates to its executor exclusively when no hints are requested and the
engine's hooks are the exact bug-free :class:`~repro.plan.physical.ExecutionHooks`.
Dialect engines (seeded fault profiles) and hinted executions always take the
row path, whose fault seams are the whole point of the simulation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List

from repro.engine.resultset import ResultSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.engine import Engine
    from repro.plan.logical import QuerySpec


class ExecutorBackend:
    """One reference-execution strategy.

    Implementations must be *exact*: for any generated query, the returned
    :class:`~repro.engine.resultset.ResultSet` is bit-identical to the row
    executor's (same column names, same row tuples, same value types) — the
    property tests in ``tests/test_columnar.py`` pin that contract down.
    """

    name = "abstract"

    def execute(self, engine: "Engine", query: "QuerySpec") -> ResultSet:
        """Execute *query* against *engine*'s database, bug-free."""
        raise NotImplementedError


class RowExecutor(ExecutorBackend):
    """The classic planner-driven row-dict interpreter (the historical path)."""

    name = "row"

    def execute(self, engine: "Engine", query: "QuerySpec") -> ResultSet:
        return engine.execute_with_report(query).result


_EXECUTOR_FACTORIES: Dict[str, Callable[[], ExecutorBackend]] = {}


def register_executor(name: str,
                      factory: Callable[[], ExecutorBackend]) -> None:
    """Register an executor strategy under *name* (overwrites silently)."""
    _EXECUTOR_FACTORIES[name] = factory


def registered_executors() -> List[str]:
    """Sorted names of all registered executor strategies."""
    return sorted(_EXECUTOR_FACTORIES)


def executor_from_name(name: str) -> ExecutorBackend:
    """Instantiate an executor strategy by registry name."""
    try:
        factory = _EXECUTOR_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown executor {name!r}; available: {registered_executors()}"
        ) from None
    return factory()


def _columnar_factory() -> ExecutorBackend:
    # Deferred import: columnar.py imports plan/expr modules that themselves
    # import repro.engine, so the registry must not load it eagerly.
    from repro.engine.columnar import ColumnarExecutor

    return ColumnarExecutor()


register_executor("row", RowExecutor)
register_executor("columnar", _columnar_factory)
