"""Columnar reference execution: the logical plan over column vectors.

The row executor interprets one dict-shaped row at a time: every scan builds a
dict per row, every predicate allocates an :class:`~repro.expr.ast.EvalContext`
per row, and uncorrelated IN/EXISTS subqueries re-execute *per outer row*.
PR 6's phase telemetry showed that interpretation overhead dominating the
differential hot path (``execute.reference`` at ~40–65% of worker wall-clock).

:class:`ColumnarExecutor` evaluates the same logical plan over column vectors
(plain Python lists, gathered through numpy object arrays when available):
scans load each column once, expressions evaluate over whole columns with one
dispatch per *node* instead of one per node per row, joins build selection
vectors instead of merged dicts, and each uncorrelated subquery executes
exactly once per query.

Exactness contract: for any generated query the output is **bit-identical** to
the row executor — same column names, same row order, same value objects
(including ``Decimal`` exactness and float accumulation order in SUM/AVG).
Every helper below mirrors a specific piece of the row path
(:mod:`repro.plan.operators`, :mod:`repro.plan.joins`,
:mod:`repro.expr.ast`); comments name the mirrored semantics where they are
not obvious.  The join matcher replicates hash matching under the bug-free
:class:`~repro.plan.physical.ExecutionHooks`; on bug-free hooks all three row
match algorithms (hash / scan / merge) produce identical ascending match
lists, so the emitted rows are algorithm-independent.  ``tests/test_columnar.py``
pins the contract down property-style against randomized generated queries.
"""

from __future__ import annotations

import os
from decimal import Decimal
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.executor import ExecutorBackend
from repro.engine.resultset import ResultSet
from repro.errors import ExecutionError, ExpressionError
from repro.expr.ast import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    EvalContext,
    ExistsSubquery,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    ScalarSubquery,
)
from repro.plan.logical import (
    AggregateFunction,
    AnyQuerySpec,
    CompoundQuerySpec,
    JoinStep,
    JoinType,
    OrderItem,
    QuerySpec,
    SelectItem,
    combine_set_rows,
    unique_output_names,
)
from repro.plan.operators import _invert
from repro.sqlvalue.casts import (
    cast_for_domain,
    comparison_domain,
    to_decimal,
    to_double_lossy,
)
from repro.sqlvalue.comparison import (
    correct_hash_key,
    logical_and,
    logical_not,
    logical_or,
    null_safe_equal,
    sql_compare,
    sql_equal,
    truth_value,
)
from repro.sqlvalue.datatypes import TypeCategory
from repro.sqlvalue.values import NULL, is_null, normalize_row, value_sort_key

#: Below this many gathered rows the list-comprehension path beats building a
#: numpy object array; above it the vectorized take wins.
_NUMPY_MIN_ROWS = 64

#: Uncorrelated subquery -> its (already executed) result rows.
SubqueryRows = Callable[[QuerySpec], List[tuple]]

_EMPTY: Tuple[int, ...] = ()


class _Frame:
    """A batch of rows as named column vectors.

    ``names`` preserves the row executor's key-insertion order (scan columns in
    schema order, join output left-then-right), so row reconstruction and the
    "row keys" text of resolution errors are bit-identical to the dict path.
    """

    __slots__ = ("names", "columns", "nrows")

    def __init__(self, names: List[str], columns: Dict[str, List[Any]],
                 nrows: int) -> None:
        self.names = names
        self.columns = columns
        self.nrows = nrows


class ColumnarExecutor(ExecutorBackend):
    """Vectorized bug-free executor, selectable as ``executor="columnar"``."""

    name = "columnar"

    def __init__(self, use_numpy: Optional[bool] = None) -> None:
        # Resolved once at construction: ``REPRO_DISABLE_NUMPY=1`` forces the
        # pure-Python fallback (the CI optional-deps leg runs both modes).
        if use_numpy is None:
            use_numpy = os.environ.get("REPRO_DISABLE_NUMPY", "") != "1"
        self._np = None
        if use_numpy:
            try:
                import numpy
            except ImportError:  # pragma: no cover - numpy is a package dep
                numpy = None
            self._np = numpy

    # ----------------------------------------------------------- entry point

    def execute(self, engine: Any, query: AnyQuerySpec) -> ResultSet:
        if isinstance(query, CompoundQuerySpec):
            result = self._execute_compound(engine.database, query)
        else:
            result = self._execute_spec(engine.database, query, [])
        engine.queries_executed += 1
        return result

    def _execute_compound(self, database: Any,
                          query: CompoundQuerySpec) -> ResultSet:
        # Arms execute columnar (bit-identical to the row path per the
        # executor contract); the fold itself is the one shared
        # combine_set_rows implementation, so compound output is identical to
        # the row engine's by construction.  CTE wrappers are inlined: the
        # outer pass-through projection returns the body unchanged.
        query.validate()
        arm_results = [self._execute_spec(database, arm, []).rows
                       for arm in query.arms]
        rows = combine_set_rows(arm_results, query.operators)
        if query.limit is not None:
            rows = rows[: query.limit]
        return ResultSet(query.output_columns(), rows)

    def _execute_spec(self, database: Any, query: QuerySpec,
                      subquery_cache: List[Tuple[QuerySpec, List[tuple]]]
                      ) -> ResultSet:
        query.validate()
        if query.limit is not None and query.limit < 0:
            # The row planner raises at plan time, before any scan runs.
            raise ExecutionError("LIMIT must be non-negative")

        def subquery_rows(spec: QuerySpec) -> List[tuple]:
            # Uncorrelated by construction (the planner's subquery executor
            # ignores the outer row), so one execution per distinct subquery
            # node serves every outer row.  Identity keying: QuerySpec is
            # mutable and each IN/EXISTS node holds its own spec object.
            for cached_spec, cached_rows in subquery_cache:
                if cached_spec is spec:
                    return cached_rows
            result = self._execute_spec(database, spec, subquery_cache)
            rows = list(result.rows)
            subquery_cache.append((spec, rows))
            return rows

        schema = database.schema
        alias_to_table = {ref.alias: ref.table for ref in query.table_refs}
        frame = self._scan(database, query.base.table, query.base.alias)
        for step in query.joins:
            frame = self._join(database, schema, frame, step, alias_to_table,
                               subquery_rows)
        if query.where is not None:
            frame = self._filter(frame, query.where, subquery_rows)
        frame = self._project(frame, query.select, query.group_by,
                              query.distinct, subquery_rows)
        if query.order_by:
            frame = self._sort(frame, query.order_by, subquery_rows)
        rows = list(zip(*[frame.columns[name] for name in frame.names]))
        if query.limit is not None:
            rows = rows[: query.limit]
        return ResultSet(frame.names, rows)

    # ---------------------------------------------------------------- gather

    def _gather(self, column: List[Any], indices: Sequence[int]) -> List[Any]:
        """Select ``column[i]`` per index; ``-1`` yields the NULL join pad."""
        np = self._np
        if np is not None and len(indices) >= _NUMPY_MIN_ROWS:
            padded = np.empty(len(column) + 1, dtype=object)
            padded[: len(column)] = column
            padded[len(column)] = NULL
            taken = padded[np.asarray(indices, dtype=np.intp)]
            return taken.tolist()
        return [column[i] if i >= 0 else NULL for i in indices]

    def _take(self, frame: _Frame, indices: Sequence[int]) -> _Frame:
        columns = {name: self._gather(frame.columns[name], indices)
                   for name in frame.names}
        return _Frame(list(frame.names), columns, len(indices))

    def _merge(self, left: _Frame, right: _Frame, left_sel: Sequence[int],
               right_sel: Sequence[int]) -> _Frame:
        # Mirrors merge_rows key order: left columns first, then right.
        names = list(left.names) + list(right.names)
        columns = {name: self._gather(left.columns[name], left_sel)
                   for name in left.names}
        for name in right.names:
            columns[name] = self._gather(right.columns[name], right_sel)
        return _Frame(names, columns, len(left_sel))

    # ------------------------------------------------------------------ scan

    def _scan(self, database: Any, table: str, alias: str) -> _Frame:
        schema = database.table_schema(table)
        stored_rows = database.table(table).rows
        names = [f"{alias}.{name}" for name in schema.column_names]
        columns: Dict[str, List[Any]] = {}
        for name in schema.column_names:
            columns[f"{alias}.{name}"] = [stored[name] for stored in stored_rows]
        return _Frame(names, columns, len(stored_rows))

    # ------------------------------------------------------------------ join

    def _key_domain(self, schema: Any, step: JoinStep,
                    alias_to_table: Dict[str, str]) -> TypeCategory:
        assert step.left_key is not None and step.right_key is not None
        left_table = alias_to_table[step.left_key.table]
        right_table = alias_to_table[step.right_key.table]
        left_dtype = schema.table(left_table).column(step.left_key.column).dtype
        right_dtype = schema.table(right_table).column(step.right_key.column).dtype
        return comparison_domain(left_dtype, right_dtype)

    def _join(self, database: Any, schema: Any, left: _Frame, step: JoinStep,
              alias_to_table: Dict[str, str],
              subquery_rows: SubqueryRows) -> _Frame:
        right = self._scan(database, step.table.table, step.table.alias)
        join_type = step.join_type
        if join_type is JoinType.CROSS:
            left_sel = [i for i in range(left.nrows) for _ in range(right.nrows)]
            right_sel = list(range(right.nrows)) * left.nrows
            return self._merge(left, right, left_sel, right_sel)

        domain = self._key_domain(schema, step, alias_to_table)
        assert step.left_key is not None and step.right_key is not None
        left_key = f"{step.left_key.table}.{step.left_key.column}"
        right_key = f"{step.right_key.table}.{step.right_key.column}"
        matches = self._match(left.columns[left_key], right.columns[right_key],
                              domain)
        if step.extra_condition is not None:
            matches = self._filter_residual(left, right, matches,
                                            step.extra_condition, subquery_rows)

        if join_type is JoinType.SEMI:
            return self._take(left, [i for i, cand in enumerate(matches) if cand])
        if join_type is JoinType.ANTI:
            # NULL-key left rows have no candidates and therefore pass.
            return self._take(left,
                              [i for i, cand in enumerate(matches) if not cand])

        left_sel: List[int] = []
        right_sel: List[int] = []
        if join_type is JoinType.INNER:
            for i, cand in enumerate(matches):
                for j in cand:
                    left_sel.append(i)
                    right_sel.append(j)
        elif join_type is JoinType.LEFT_OUTER:
            for i, cand in enumerate(matches):
                if cand:
                    for j in cand:
                        left_sel.append(i)
                        right_sel.append(j)
                else:
                    left_sel.append(i)
                    right_sel.append(-1)
        elif join_type is JoinType.RIGHT_OUTER:
            matched_right = set()
            for i, cand in enumerate(matches):
                for j in cand:
                    matched_right.add(j)
                    left_sel.append(i)
                    right_sel.append(j)
            for j in range(right.nrows):
                if j not in matched_right:
                    left_sel.append(-1)
                    right_sel.append(j)
        elif join_type is JoinType.FULL_OUTER:
            matched_right = set()
            for i, cand in enumerate(matches):
                if cand:
                    for j in cand:
                        matched_right.add(j)
                        left_sel.append(i)
                        right_sel.append(j)
                else:
                    left_sel.append(i)
                    right_sel.append(-1)
            for j in range(right.nrows):
                if j not in matched_right:
                    left_sel.append(-1)
                    right_sel.append(j)
        else:  # pragma: no cover - JoinType is exhaustive above
            raise ExecutionError(f"unsupported join type {join_type!r}")
        return self._merge(left, right, left_sel, right_sel)

    def _match(self, left_col: List[Any], right_col: List[Any],
               domain: TypeCategory) -> List[Sequence[int]]:
        """Equi-join match lists, ascending by right index per left row.

        Hash matching under the bug-free hooks: the build/probe key is
        ``correct_hash_key(cast_for_domain(value, domain))``, NULL keys never
        match, and bucket order is right-scan order — exactly
        ``Join._matches_by_hash`` with default :class:`ExecutionHooks`.
        """
        table: Dict[Any, List[int]] = {}
        for index, value in enumerate(right_col):
            if is_null(value):
                continue
            table.setdefault(
                correct_hash_key(cast_for_domain(value, domain)), []
            ).append(index)
        matches: List[Sequence[int]] = []
        for value in left_col:
            if is_null(value):
                matches.append(_EMPTY)
                continue
            matches.append(
                table.get(correct_hash_key(cast_for_domain(value, domain)),
                          _EMPTY)
            )
        return matches

    def _filter_residual(self, left: _Frame, right: _Frame,
                         matches: List[Sequence[int]], condition: Expression,
                         subquery_rows: SubqueryRows) -> List[Sequence[int]]:
        pair_left = [i for i, cand in enumerate(matches) for _ in cand]
        if not pair_left:
            return matches
        pair_right = [j for cand in matches for j in cand]
        pair_frame = self._merge(left, right, pair_left, pair_right)
        verdicts = self._eval(condition, pair_frame, subquery_rows)
        filtered: List[Sequence[int]] = []
        cursor = 0
        for cand in matches:
            kept = []
            for j in cand:
                if truth_value(verdicts[cursor]) is True:
                    kept.append(j)
                cursor += 1
            filtered.append(kept)
        return filtered

    # ---------------------------------------------------------------- filter

    def _filter(self, frame: _Frame, predicate: Expression,
                subquery_rows: SubqueryRows) -> _Frame:
        verdicts = self._eval(predicate, frame, subquery_rows)
        keep = [i for i, value in enumerate(verdicts)
                if truth_value(value) is True]
        return self._take(frame, keep)

    # --------------------------------------------------------------- project

    def _project(self, frame: _Frame, items: Sequence[SelectItem],
                 group_by: Sequence[ColumnRef], distinct: bool,
                 subquery_rows: SubqueryRows) -> _Frame:
        if not items:
            raise ExecutionError("projection requires at least one select item")
        names = unique_output_names(items)
        if any(item.aggregate is not None for item in items):
            out_rows = self._aggregate_rows(frame, items, group_by,
                                            subquery_rows)
        else:
            value_lists = [self._eval(item.expression, frame, subquery_rows)
                           for item in items]
            out_rows = []
            if distinct:
                seen = set()
                for values in zip(*value_lists):
                    key = normalize_row(values)
                    if key in seen:
                        continue
                    seen.add(key)
                    out_rows.append(values)
            else:
                out_rows = list(zip(*value_lists))
        columns = {name: [row[position] for row in out_rows]
                   for position, name in enumerate(names)}
        return _Frame(names, columns, len(out_rows))

    def _aggregate_rows(self, frame: _Frame, items: Sequence[SelectItem],
                        group_by: Sequence[ColumnRef],
                        subquery_rows: SubqueryRows) -> List[tuple]:
        group_lists = [self._eval(col, frame, subquery_rows)
                       for col in group_by]
        groups: Dict[tuple, List[int]] = {}
        order: List[tuple] = []
        for position in range(frame.nrows):
            key = normalize_row(tuple(values[position]
                                      for values in group_lists))
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(position)
        if not groups and not group_by:
            groups[()] = []
            order.append(())
        item_lists = [self._eval(item.expression, frame, subquery_rows)
                      for item in items]
        return [
            tuple(self._evaluate_item(item, item_lists[index], groups[key])
                  for index, item in enumerate(items))
            for key in order
        ]

    @staticmethod
    def _evaluate_item(item: SelectItem, values_list: List[Any],
                       members: List[int]) -> Any:
        # Mirrors Project._evaluate_item: DISTINCT input values in first-seen
        # member order, NULL-skipping for aggregates only, and the same
        # numeric accumulation order for SUM/AVG bit-exactness.
        values = []
        seen = set()
        for position in members:
            value = values_list[position]
            if item.aggregate is not None and is_null(value):
                continue
            key = normalize_row((value,))
            if key in seen:
                continue
            seen.add(key)
            values.append(value)
        if item.aggregate is None:
            return values[0] if values else NULL
        if item.aggregate is AggregateFunction.COUNT:
            return len(values)
        if not values:
            return NULL
        if item.aggregate is AggregateFunction.MIN:
            return min(values, key=value_sort_key)
        if item.aggregate is AggregateFunction.MAX:
            return max(values, key=value_sort_key)
        numeric = [v for v in values if isinstance(v, (int, float, Decimal))]
        if not numeric:
            return NULL
        if item.aggregate is AggregateFunction.SUM:
            return sum(numeric)
        return sum(numeric) / len(numeric)

    # ------------------------------------------------------------------ sort

    def _sort(self, frame: _Frame, order_by: Sequence[OrderItem],
              subquery_rows: SubqueryRows) -> _Frame:
        key_lists = []
        for item in order_by:
            values = self._eval(item.expression, frame, subquery_rows)
            if item.descending:
                key_lists.append([
                    (-key[0], _invert(key[1]))
                    for key in (value_sort_key(value) for value in values)
                ])
            else:
                key_lists.append([value_sort_key(value) for value in values])
        # sorted() is stable over ascending positions, matching the row
        # path's stable list.sort over rows materialized in input order.
        permutation = sorted(
            range(frame.nrows),
            key=lambda position: tuple(keys[position] for keys in key_lists),
        )
        return self._take(frame, permutation)

    # ------------------------------------------------------------ expressions

    def _resolve(self, frame: _Frame, table: Optional[str],
                 column: str) -> List[Any]:
        # Mirrors EvalContext.lookup, including the error text.
        if table is not None:
            qualified = f"{table}.{column}"
            if qualified in frame.columns:
                return frame.columns[qualified]
        if column in frame.columns:
            return frame.columns[column]
        suffix = f".{column}"
        found = [name for name in frame.names if name.endswith(suffix)]
        if table is None and len(found) == 1:
            return frame.columns[found[0]]
        raise ExpressionError(
            f"cannot resolve column {table + '.' if table else ''}{column} "
            f"against row keys {sorted(frame.columns)}"
        )

    def _eval(self, expr: Expression, frame: _Frame,
              subquery_rows: SubqueryRows) -> List[Any]:
        """Evaluate *expr* over every row of *frame*, one node dispatch total.

        Returned lists may alias frame columns (ColumnRef) — callers must
        treat them as read-only.
        """
        nrows = frame.nrows
        if isinstance(expr, ColumnRef):
            return self._resolve(frame, expr.table, expr.column)
        if isinstance(expr, Literal):
            return [expr.value] * nrows
        if isinstance(expr, Comparison):
            return self._eval_comparison(expr, frame, subquery_rows)
        if isinstance(expr, IsNull):
            operand = self._eval(expr.operand, frame, subquery_rows)
            if expr.negated:
                return [not is_null(value) for value in operand]
            return [is_null(value) for value in operand]
        if isinstance(expr, Not):
            operand = self._eval(expr.operand, frame, subquery_rows)
            out = []
            for value in operand:
                result = logical_not(truth_value(value))
                out.append(NULL if result is None else result)
            return out
        if isinstance(expr, (And, Or)):
            # Full-evaluate then fold: operand evaluation is pure, and
            # logical_and/or absorb True/False exactly as the short-circuit
            # row path does, so the folded value is identical per row.
            fold = logical_and if isinstance(expr, And) else logical_or
            start = isinstance(expr, And)
            operand_lists = [self._eval(operand, frame, subquery_rows)
                             for operand in expr.operands]
            out = []
            for position in range(nrows):
                result: Optional[bool] = start
                for values in operand_lists:
                    result = fold(result, truth_value(values[position]))
                    if result is (not start):
                        break
                out.append(NULL if result is None else result)
            return out
        if isinstance(expr, Between):
            return self._eval_between(expr, frame, subquery_rows)
        if isinstance(expr, InList):
            return self._eval_in_list(expr, frame, subquery_rows)
        if isinstance(expr, InSubquery):
            return self._eval_in_subquery(expr, frame, subquery_rows)
        if isinstance(expr, ExistsSubquery):
            result = bool(subquery_rows(expr.subquery))
            value = (not result) if expr.negated else result
            return [value] * nrows
        if isinstance(expr, ScalarSubquery):
            # Uncorrelated: one execution, the scalar broadcast to every row
            # (the row path resolves the same cached rows per outer row).
            scalar = ScalarSubquery.resolve_rows(subquery_rows(expr.subquery))
            return [scalar] * nrows
        if isinstance(expr, Arithmetic):
            return self._eval_arithmetic(expr, frame, subquery_rows)
        if isinstance(expr, FunctionCall):
            return self._eval_function(expr, frame, subquery_rows)
        # Unknown node type: fall back to row-at-a-time evaluation through
        # the node's own eval(), so extensions stay correct if not fast.
        executor = (lambda spec, _ctx: subquery_rows(spec))
        out = []
        for position in range(nrows):
            row = {name: frame.columns[name][position]
                   for name in frame.names}
            out.append(expr.eval(EvalContext(row, executor)))
        return out

    def _eval_comparison(self, expr: Comparison, frame: _Frame,
                         subquery_rows: SubqueryRows) -> List[Any]:
        left = self._eval(expr.left, frame, subquery_rows)
        right = self._eval(expr.right, frame, subquery_rows)
        if expr.op == "<=>":
            return [null_safe_equal(lv, rv) for lv, rv in zip(left, right)]
        verdicts: Dict[str, Callable[[int], bool]] = {
            "=": lambda cmp: cmp == 0,
            "<>": lambda cmp: cmp != 0,
            "!=": lambda cmp: cmp != 0,
            "<": lambda cmp: cmp < 0,
            "<=": lambda cmp: cmp <= 0,
            ">": lambda cmp: cmp > 0,
            ">=": lambda cmp: cmp >= 0,
        }
        verdict = verdicts[expr.op]
        out = []
        for lv, rv in zip(left, right):
            cmp = sql_compare(lv, rv)
            out.append(NULL if cmp is None else verdict(cmp))
        return out

    def _eval_between(self, expr: Between, frame: _Frame,
                      subquery_rows: SubqueryRows) -> List[Any]:
        operand = self._eval(expr.operand, frame, subquery_rows)
        low = self._eval(expr.low, frame, subquery_rows)
        high = self._eval(expr.high, frame, subquery_rows)
        out = []
        for value, lo, hi in zip(operand, low, high):
            lower = sql_compare(value, lo)
            upper = sql_compare(value, hi)
            if lower is None or upper is None:
                out.append(NULL)
                continue
            result = lower >= 0 and upper <= 0
            out.append((not result) if expr.negated else result)
        return out

    def _eval_in_list(self, expr: InList, frame: _Frame,
                      subquery_rows: SubqueryRows) -> List[Any]:
        operand = self._eval(expr.operand, frame, subquery_rows)
        item_lists = [self._eval(item, frame, subquery_rows)
                      for item in expr.items]
        out = []
        for position, value in enumerate(operand):
            if is_null(value):
                out.append(NULL)
                continue
            out.append(self._membership(
                value, [values[position] for values in item_lists],
                expr.negated,
            ))
        return out

    def _eval_in_subquery(self, expr: InSubquery, frame: _Frame,
                          subquery_rows: SubqueryRows) -> List[Any]:
        operand = self._eval(expr.operand, frame, subquery_rows)
        rows = subquery_rows(expr.subquery)
        candidates = [row[0] if isinstance(row, (tuple, list)) else row
                      for row in rows]
        out = []
        for value in operand:
            if is_null(value):
                if not rows:
                    out.append(True if expr.negated else False)
                else:
                    out.append(NULL)
                continue
            out.append(self._membership(value, candidates, expr.negated))
        return out

    @staticmethod
    def _membership(value: Any, candidates: Sequence[Any],
                    negated: bool) -> Any:
        # The shared IN scan: first sql_equal=True wins, surviving UNKNOWNs
        # make the whole predicate UNKNOWN (ast.InList / ast.InSubquery).
        saw_unknown = False
        for candidate in candidates:
            eq = sql_equal(value, candidate)
            if eq is True:
                return False if negated else True
            if eq is None:
                saw_unknown = True
        if saw_unknown:
            return NULL
        return True if negated else False

    def _eval_arithmetic(self, expr: Arithmetic, frame: _Frame,
                         subquery_rows: SubqueryRows) -> List[Any]:
        left = self._eval(expr.left, frame, subquery_rows)
        right = self._eval(expr.right, frame, subquery_rows)
        op = expr.op
        out = []
        for lv, rv in zip(left, right):
            if is_null(lv) or is_null(rv):
                out.append(NULL)
                continue
            if isinstance(lv, str) or isinstance(rv, str):
                lv = to_double_lossy(lv)
                rv = to_double_lossy(rv)
            if op == "+":
                out.append(lv + rv)
            elif op == "-":
                out.append(lv - rv)
            elif op == "*":
                out.append(lv * rv)
            elif rv == 0:
                out.append(NULL)
            elif isinstance(lv, float) or isinstance(rv, float):
                out.append(lv / rv)
            else:
                out.append(to_decimal(lv) / to_decimal(rv))
        return out

    def _eval_function(self, expr: FunctionCall, frame: _Frame,
                       subquery_rows: SubqueryRows) -> List[Any]:
        name = expr.name.upper()
        arg_lists = [self._eval(arg, frame, subquery_rows)
                     for arg in expr.args]
        out = []
        if name in ("COALESCE", "IFNULL"):
            for position in range(frame.nrows):
                chosen: Any = NULL
                for values in arg_lists:
                    if not is_null(values[position]):
                        chosen = values[position]
                        break
                out.append(chosen)
            return out
        for position in range(frame.nrows):
            if not arg_lists or is_null(arg_lists[0][position]):
                out.append(NULL)
                continue
            value = arg_lists[0][position]
            if name == "ABS":
                out.append(abs(value)
                           if isinstance(value, (int, float, Decimal))
                           else value)
            elif name == "LENGTH":
                out.append(len(str(value)))
            elif name == "UPPER":
                out.append(str(value).upper())
            elif name == "LOWER":
                out.append(str(value).lower())
            else:  # pragma: no cover - FunctionCall validates names
                raise ExpressionError(f"unsupported function {expr.name!r}")
        return out
