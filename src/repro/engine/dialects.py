"""The four simulated DBMS dialects and their seeded bug profiles (Table 4).

Each :class:`DialectProfile` bundles the metadata the paper reports in Table 3
(popularity, LOC, first release) with the list of seeded :class:`BugSpec` objects
that stand in for the real optimizer bugs TQS found in that system.  The bug ids,
severities, statuses and descriptions follow Table 4 row by row; the trigger
conditions follow the bug listings quoted in §5.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.engine.faults import (
    ActiveFaults,
    BugSpec,
    FaultTrigger,
    HASH_BASED_ALGORITHMS,
    SCAN_BASED_ALGORITHMS,
)
from repro.plan.logical import JoinType
from repro.plan.physical import JoinAlgorithm
from repro.sqlvalue.datatypes import TypeCategory

OUTER_JOINS = frozenset(
    {JoinType.LEFT_OUTER, JoinType.RIGHT_OUTER, JoinType.FULL_OUTER}
)
NUMERIC_DOMAINS = frozenset(
    {TypeCategory.FLOAT, TypeCategory.DECIMAL, TypeCategory.INTEGER}
)


@dataclass(frozen=True)
class DialectProfile:
    """Static description of one simulated DBMS."""

    name: str
    version: str
    db_engines_rank: Optional[int]
    stack_overflow_rank: Optional[int]
    github_stars_thousands: Optional[float]
    loc_millions: float
    first_release: int
    bugs: Tuple[BugSpec, ...]

    def active_faults(self) -> ActiveFaults:
        """Build a fresh fault-injection hook set for this dialect."""
        return ActiveFaults(self.bugs)

    @property
    def bug_type_count(self) -> int:
        """Number of seeded bug types (Table 4 'types of bugs')."""
        return len(self.bugs)


# --------------------------------------------------------------------- SimMySQL

_MYSQL_BUGS = (
    BugSpec(
        bug_id=1,
        dbms="SimMySQL",
        seam="flag",
        behavior="semijoin_ignore_join_key",
        trigger=FaultTrigger(
            join_types=frozenset({JoinType.SEMI}),
            require_materialization=True,
            require_semijoin_transform=True,
        ),
        severity="S1 (Critical)",
        status="Fixed",
        description="Semi-join gives wrong results: the correlated equality is "
        "neither pushed down for materialization nor evaluated as part of the "
        "semi-join.",
    ),
    BugSpec(
        bug_id=2,
        dbms="SimMySQL",
        seam="join_key",
        behavior="distinguish_negative_zero",
        trigger=FaultTrigger(
            algorithms=HASH_BASED_ALGORITHMS,
            join_types=frozenset({JoinType.INNER, JoinType.SEMI}),
            key_domains=frozenset({TypeCategory.FLOAT, TypeCategory.DECIMAL}),
        ),
        severity="S2 (Serious)",
        status="Fixed",
        description="Incorrect inner hash join when using materialization "
        "strategy: the hash table asserts that 0 and -0 are not equal.",
    ),
    BugSpec(
        bug_id=3,
        dbms="SimMySQL",
        seam="join_key",
        behavior="cast_varchar_to_double",
        trigger=FaultTrigger(
            algorithms=HASH_BASED_ALGORITHMS,
            join_types=frozenset({JoinType.SEMI}),
            key_domains=frozenset({TypeCategory.DECIMAL}),
        ),
        severity="S2 (Serious)",
        status="Verified",
        description="Incorrect semi-join execution results in unknown data: "
        "varchar keys are converted to double, losing precision.",
    ),
    BugSpec(
        bug_id=4,
        dbms="SimMySQL",
        seam="flag",
        behavior="left_outer_emit_spurious_null_row",
        trigger=FaultTrigger(
            algorithms=frozenset({JoinAlgorithm.HASH, JoinAlgorithm.BLOCK_NESTED_LOOP_HASH}),
            join_types=frozenset({JoinType.LEFT_OUTER}),
        ),
        severity="S2 (Serious)",
        status="Verified",
        description="Incorrect left hash join with subquery in condition: an "
        "additional NULL row is returned.",
    ),
    BugSpec(
        bug_id=5,
        dbms="SimMySQL",
        seam="flag",
        behavior="antijoin_drop_null_key_rows",
        trigger=FaultTrigger(
            algorithms=SCAN_BASED_ALGORITHMS,
            join_types=frozenset({JoinType.ANTI}),
            require_materialization=True,
        ),
        severity="S2 (Serious)",
        status="Verified",
        description="Incorrect nested loop antijoin when using materialization "
        "strategy: NULL-key outer rows are dropped.",
    ),
    BugSpec(
        bug_id=6,
        dbms="SimMySQL",
        seam="join_key",
        behavior="round_decimal_constants",
        trigger=FaultTrigger(
            join_types=frozenset({JoinType.INNER}),
            key_domains=frozenset({TypeCategory.DECIMAL}),
        ),
        severity="S2 (Serious)",
        status="Fixed",
        description="Bad caching of converted constants in NULL-safe comparison: "
        "decimal join keys are rounded to integers in every plan (only the "
        "ground-truth oracle can reveal it).",
    ),
    BugSpec(
        bug_id=7,
        dbms="SimMySQL",
        seam="flag",
        behavior="hash_join_drop_duplicate_build_keys",
        trigger=FaultTrigger(
            algorithms=frozenset({JoinAlgorithm.HASH}),
            join_types=frozenset({JoinType.INNER}),
            key_domains=frozenset({TypeCategory.STRING}),
        ),
        severity="S2 (Serious)",
        status="Verified",
        description="Incorrect hash join with materialized subquery: duplicate "
        "build-side keys are collapsed and matching rows go missing.",
    ),
)


# -------------------------------------------------------------------- SimMariaDB

_MARIADB_BUGS = (
    BugSpec(
        bug_id=8,
        dbms="SimMariaDB",
        seam="flag",
        behavior="right_outer_join_as_inner",
        trigger=FaultTrigger(
            join_types=frozenset({JoinType.RIGHT_OUTER}),
            requires_disabled_switches=frozenset({"join_cache_bka"}),
        ),
        severity="Major",
        status="Verified",
        description="Incorrect join execution by not allowing BKA and BKAH join "
        "algorithms: unmatched rows of the preserved side disappear.",
    ),
    BugSpec(
        bug_id=9,
        dbms="SimMariaDB",
        seam="null_pad",
        behavior="empty_string",
        trigger=FaultTrigger(
            algorithms=frozenset({JoinAlgorithm.BLOCK_NESTED_LOOP_HASH}),
            join_types=OUTER_JOINS,
        ),
        severity="Major",
        status="Verified",
        description="Incorrect join execution by not allowing BNLH and BKAH join "
        "algorithms: NULL padding is mistakenly changed to an empty string.",
    ),
    BugSpec(
        bug_id=10,
        dbms="SimMariaDB",
        seam="flag",
        behavior="outer_join_drop_matched_rows",
        trigger=FaultTrigger(
            join_types=frozenset({JoinType.LEFT_OUTER, JoinType.RIGHT_OUTER}),
            requires_disabled_switches=frozenset({"outer_join_with_cache"}),
        ),
        severity="Major",
        status="Verified",
        description="Incorrect join execution when controlling outer join "
        "operations: matched rows are lost when the outer-join cache is disabled.",
    ),
    BugSpec(
        bug_id=11,
        dbms="SimMariaDB",
        seam="flag",
        behavior="hash_join_drop_duplicate_build_keys",
        trigger=FaultTrigger(
            join_types=frozenset({JoinType.INNER, JoinType.LEFT_OUTER}),
            max_join_cache_level=2,
        ),
        severity="Major",
        status="Verified",
        description="Incorrect join execution by limiting the usage of the join "
        "buffers: rows sharing a build key are deduplicated by mistake.",
    ),
    BugSpec(
        bug_id=12,
        dbms="SimMariaDB",
        seam="null_pad",
        behavior="empty_string",
        trigger=FaultTrigger(
            join_types=frozenset({JoinType.RIGHT_OUTER, JoinType.LEFT_OUTER}),
            requires_disabled_switches=frozenset({"join_cache_hashed"}),
        ),
        severity="Major",
        status="Verified",
        description="Incorrect join execution when controlling join cache: "
        "with join_cache_hashed=off the NULL padding becomes an empty string.",
    ),
)


# ----------------------------------------------------------------------- SimTiDB

_TIDB_BUGS = (
    BugSpec(
        bug_id=13,
        dbms="SimTiDB",
        seam="flag",
        behavior="merge_join_drop_last_duplicate",
        trigger=FaultTrigger(
            algorithms=frozenset({JoinAlgorithm.SORT_MERGE}),
            join_types=frozenset({JoinType.INNER}),
        ),
        severity="Critical",
        status="Fixed",
        description="Incorrect merge join execution when transforming hash join "
        "to merge join: the last duplicate of each key group is skipped.",
    ),
    BugSpec(
        bug_id=14,
        dbms="SimTiDB",
        seam="join_key",
        behavior="distinguish_negative_zero",
        trigger=FaultTrigger(
            algorithms=frozenset({JoinAlgorithm.SORT_MERGE}),
            key_domains=frozenset({TypeCategory.FLOAT, TypeCategory.DECIMAL}),
        ),
        severity="Critical",
        status="Fixed",
        description="Merge join executed incorrect result set which missed -0.",
    ),
    BugSpec(
        bug_id=15,
        dbms="SimTiDB",
        seam="flag",
        behavior="merge_join_empty_result",
        trigger=FaultTrigger(
            algorithms=frozenset({JoinAlgorithm.SORT_MERGE}),
            join_types=frozenset({JoinType.SEMI}),
        ),
        severity="Critical",
        status="Fixed",
        description="Merge join executed an incorrect result set which returned "
        "an empty result set.",
    ),
    BugSpec(
        bug_id=16,
        dbms="SimTiDB",
        seam="flag",
        behavior="outer_join_drop_matched_rows",
        trigger=FaultTrigger(
            algorithms=frozenset({JoinAlgorithm.SORT_MERGE}),
            join_types=frozenset({JoinType.RIGHT_OUTER}),
        ),
        severity="Critical",
        status="Fixed",
        description="Merge join executed an incorrect result set which returned "
        "NULL: the outer merge join cannot keep the prop of its inner child.",
    ),
    BugSpec(
        bug_id=17,
        dbms="SimTiDB",
        seam="flag",
        behavior="merge_join_drop_last_duplicate",
        trigger=FaultTrigger(
            algorithms=frozenset({JoinAlgorithm.SORT_MERGE}),
            join_types=frozenset({JoinType.LEFT_OUTER}),
        ),
        severity="Critical",
        status="Fixed",
        description="Merge join executed an incorrect result set which missed rows.",
    ),
)


# ------------------------------------------------------------------------ SimXDB

_XDB_BUGS = (
    BugSpec(
        bug_id=18,
        dbms="SimXDB",
        seam="flag",
        behavior="left_outer_join_as_inner",
        trigger=FaultTrigger(
            join_types=frozenset({JoinType.LEFT_OUTER}),
        ),
        severity="2 (High)",
        status="Fixed",
        description="Left join convert to inner join returns wrong result sets: "
        "the rewrite fires in every plan, so only the ground truth reveals it.",
    ),
    BugSpec(
        bug_id=19,
        dbms="SimXDB",
        seam="join_key",
        behavior="cast_varchar_to_double",
        trigger=FaultTrigger(
            algorithms=frozenset({JoinAlgorithm.HASH, JoinAlgorithm.BLOCK_NESTED_LOOP_HASH}),
            join_types=frozenset({JoinType.INNER, JoinType.RIGHT_OUTER}),
            key_domains=frozenset({TypeCategory.DECIMAL}),
        ),
        severity="2 (High)",
        status="Fixed",
        description="Hash join returns wrong result sets: join keys are compared "
        "in the double domain, losing precision.",
    ),
    BugSpec(
        bug_id=20,
        dbms="SimXDB",
        seam="flag",
        behavior="semijoin_ignore_join_key",
        trigger=FaultTrigger(
            join_types=frozenset({JoinType.SEMI}),
            require_materialization=False,
        ),
        severity="2 (High)",
        status="Verified",
        description="Incorrect semi-join with materialize execution: the inner "
        "semi hash join without materialization returns extra rows.",
    ),
)


# --------------------------------------------------------------------- profiles

SIM_MYSQL = DialectProfile(
    name="SimMySQL",
    version="8.0.28",
    db_engines_rank=2,
    stack_overflow_rank=1,
    github_stars_thousands=8.0,
    loc_millions=3.8,
    first_release=1995,
    bugs=_MYSQL_BUGS,
)

SIM_MARIADB = DialectProfile(
    name="SimMariaDB",
    version="10.8.2",
    db_engines_rank=12,
    stack_overflow_rank=7,
    github_stars_thousands=4.3,
    loc_millions=3.6,
    first_release=2009,
    bugs=_MARIADB_BUGS,
)

SIM_TIDB = DialectProfile(
    name="SimTiDB",
    version="5.4.0",
    db_engines_rank=96,
    stack_overflow_rank=None,
    github_stars_thousands=31.8,
    loc_millions=0.8,
    first_release=2017,
    bugs=_TIDB_BUGS,
)

SIM_XDB = DialectProfile(
    name="SimXDB",
    version="beta 8.0.18",
    db_engines_rank=None,
    stack_overflow_rank=None,
    github_stars_thousands=None,
    loc_millions=3.9,
    first_release=2019,
    bugs=_XDB_BUGS,
)

ALL_DIALECTS: Tuple[DialectProfile, ...] = (SIM_MYSQL, SIM_MARIADB, SIM_TIDB, SIM_XDB)


def dialect_by_name(name: str) -> DialectProfile:
    """Look up a dialect profile by (case-insensitive) name."""
    for profile in ALL_DIALECTS:
        if profile.name.lower() == name.lower():
            return profile
    raise KeyError(f"unknown dialect {name!r}; available: {[p.name for p in ALL_DIALECTS]}")
