"""A real-DBMS backend over the (optional) DuckDB Python driver.

Structurally a sibling of :class:`~repro.backends.sqlite_backend.SQLiteBackend`
— rendered DDL/DML deploys the DSG-generated database, rendered SELECTs run
through the differential oracle — but against an analytical engine with a
genuinely different executor (vectorized, its own join planner), which is what
makes cross-engine disagreement interesting.  The shared deploy/execute
machinery comes from :class:`~repro.backends.sqlbase.RenderedSQLBackend`; this
module adds only the DuckDB connection lifecycle and driver hooks.

The ``duckdb`` driver is **not** a dependency of this package.  The import is
gated so that everything else works without it: constructing a
:class:`DuckDBBackend` is always allowed (the parallel runner constructs
backends from plain-string names before workers ever connect), and only
:meth:`connect` raises a :class:`~repro.errors.BackendError` explaining the
missing driver.  Tests are skip-marked on the same condition, and a dedicated
CI leg installs the driver to keep the adapter honest.

Value conversion mirrors the SQLite adapter: the IR's value domain maps onto
DuckDB's BIGINT / DOUBLE / VARCHAR columns on load (NULL <-> None, bool -> 0/1,
integral decimals -> int, fractional -> float), and ``None`` becomes
:data:`~repro.sqlvalue.values.NULL` again on fetch so result sets compare
under the repo's three-valued semantics.  Integers beyond the signed 64-bit
range raise instead of rounding silently through a double.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.backends.sqlbase import RenderedSQLBackend
from repro.backends.sqlrender import DUCKDB_DIALECT, SQLRenderer
from repro.errors import BackendError

try:  # pragma: no cover - presence depends on the environment
    import duckdb
except ImportError:  # pragma: no cover - the gated path is the common one
    duckdb = None


def duckdb_available() -> bool:
    """True when the optional ``duckdb`` driver is importable."""
    return duckdb is not None


class DuckDBBackend(RenderedSQLBackend):
    """Backend adapter executing rendered SQL on a DuckDB connection."""

    name = "DuckDB"
    # The narrow taxonomy applies whenever the driver is importable;
    # (Exception,) only stands in when it is not (those methods are then
    # unreachable anyway, since connect() refuses without the driver).
    # OverflowError covers out-of-range integers at parameter binding.
    driver_errors = ((duckdb.Error, OverflowError) if duckdb is not None
                     else (Exception,))

    def __init__(self, path: str = ":memory:",
                 renderer: Optional[SQLRenderer] = None) -> None:
        super().__init__(renderer or SQLRenderer(DUCKDB_DIALECT))
        self.path = path
        self._connection: Optional[Any] = None

    # ------------------------------------------------------------ lifecycle

    @property
    def connection(self) -> Any:
        """The live connection (raises when not connected)."""
        if self._connection is None:
            raise BackendError("DuckDBBackend is not connected; call connect()")
        return self._connection

    def connect(self) -> None:
        if self._connection is not None:
            return
        if duckdb is None:
            raise BackendError(
                "the duckdb driver is not installed; "
                "`pip install duckdb` enables this backend"
            )
        try:
            self._connection = duckdb.connect(self.path)
        except Exception as error:  # pragma: no cover - env dependent
            raise BackendError(
                f"cannot open DuckDB database {self.path!r}: {error}"
            ) from error

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    # ---------------------------------------------------------- driver hooks

    def _run(self, sql: str) -> Any:
        return self.connection.execute(sql)

    def _run_many(self, sql: str, rows: List[tuple]) -> None:
        self.connection.executemany(sql, rows)

    @property
    def description(self) -> str:
        version = getattr(duckdb, "__version__", "unavailable")
        return f"DuckDB {version} ({self.path})"
