"""The backend adapter interface: one protocol for real and simulated engines.

A :class:`BackendAdapter` is the minimal surface the differential-testing loop
needs from a query executor: connect, deploy a DSG-generated database (schema
then data), execute logical queries, explain them, and close.  Real engines
(:class:`~repro.backends.sqlite_backend.SQLiteBackend`, future DuckDB / MySQL /
Postgres adapters) render the IR to SQL through a
:class:`~repro.backends.sqlrender.SQLRenderer`; the
:class:`~repro.backends.simulated.SimulatedBackend` wraps an in-process
:class:`~repro.engine.engine.Engine` so the seeded-fault dialects can be driven
through the exact same interface (which is also how the differential oracle's
own sensitivity is tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.catalog.schema import DatabaseSchema
from repro.engine.resultset import ResultSet
from repro.plan.logical import QuerySpec
from repro.storage.database import Database


@dataclass
class BackendExecution:
    """One query execution on a backend, with provenance for bug reports.

    ``fired_bug_ids`` is only populated by simulated backends (real engines do
    not announce their bugs); ``sql`` is empty for backends that execute the IR
    directly.
    """

    result: ResultSet
    sql: str = ""
    fired_bug_ids: Tuple[int, ...] = ()


class BackendAdapter:
    """Abstract base for query-execution backends.

    Subclasses implement :meth:`connect`, :meth:`load_schema`, :meth:`load_data`,
    :meth:`execute`, :meth:`explain` and :meth:`close`.  :meth:`deploy` and the
    context-manager protocol are provided on top of those.
    """

    name = "backend"

    # ------------------------------------------------------------ lifecycle

    def connect(self) -> None:
        """Open the connection / acquire the engine. Idempotent."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the connection. Idempotent."""
        raise NotImplementedError

    def __enter__(self) -> "BackendAdapter":
        self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------- loading

    def load_schema(self, schema: DatabaseSchema) -> None:
        """Create the tables (and indexes) of *schema* on the backend."""
        raise NotImplementedError

    def load_data(self, database: Database) -> None:
        """Bulk-load every table of *database* into the backend."""
        raise NotImplementedError

    def deploy(self, database: Database) -> None:
        """Connect, create the schema and load the data in one step."""
        self.connect()
        self.load_schema(database.schema)
        self.load_data(database)

    # ------------------------------------------------------------ execution

    def execute(self, query: QuerySpec) -> BackendExecution:
        """Execute one logical query and return its result set."""
        raise NotImplementedError

    def explain(self, query: QuerySpec) -> str:
        """Return the backend's plan description for *query*."""
        raise NotImplementedError

    # ------------------------------------------------------------- metadata

    @property
    def description(self) -> str:
        """Human-readable backend description (name by default)."""
        return self.name
