"""The backend adapter interface: one protocol for real and simulated engines.

A :class:`BackendAdapter` is the minimal surface the differential-testing loop
needs from a query executor: connect, deploy a DSG-generated database (schema
then data), execute logical queries, explain them, and close.  Real engines
(:class:`~repro.backends.sqlite_backend.SQLiteBackend`, future DuckDB / MySQL /
Postgres adapters) render the IR to SQL through a
:class:`~repro.backends.sqlrender.SQLRenderer`; the
:class:`~repro.backends.simulated.SimulatedBackend` wraps an in-process
:class:`~repro.engine.engine.Engine` so the seeded-fault dialects can be driven
through the exact same interface (which is also how the differential oracle's
own sensitivity is tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.catalog.schema import DatabaseSchema
from repro.engine.resultset import ResultSet
from repro.errors import BackendError
from repro.plan.logical import AnyQuerySpec
from repro.storage.database import Database


@dataclass
class BackendExecution:
    """One query execution on a backend, with provenance for bug reports.

    ``fired_bug_ids`` is only populated by simulated backends (real engines do
    not announce their bugs); ``sql`` is empty for backends that execute the IR
    directly.  Batched execution (:meth:`BackendAdapter.execute_many`) captures
    per-query failures in ``error`` instead of raising, so one unsupported
    construct cannot poison a whole batch; ``result`` is empty in that case.
    """

    result: ResultSet = field(default_factory=lambda: ResultSet([], []))
    sql: str = ""
    fired_bug_ids: Tuple[int, ...] = ()
    error: Optional[BackendError] = None

    @property
    def ok(self) -> bool:
        """True when the query executed and ``result`` is meaningful."""
        return self.error is None


class BackendAdapter:
    """Abstract base for query-execution backends.

    Subclasses implement :meth:`connect`, :meth:`load_schema`, :meth:`load_data`,
    :meth:`execute`, :meth:`explain` and :meth:`close`.  :meth:`deploy`,
    :meth:`execute_many` and the context-manager protocol are provided on top
    of those.

    Capability flags let the execution pipeline adapt without isinstance
    checks: ``supports_concurrent_cursors`` declares that several in-flight
    queries may safely execute on this adapter from different threads at once
    (stdlib sqlite3 shares one connection, so it must stay serial; a pure
    in-process engine has no shared cursor state).
    """

    name = "backend"
    supports_concurrent_cursors = False

    # ------------------------------------------------------------ lifecycle

    def connect(self) -> None:
        """Open the connection / acquire the engine. Idempotent."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the connection.

        Must be idempotent: campaign runners, pipeline error paths and
        context-manager exits may each close the same adapter, so a second
        (or third) call is a no-op, never an error.
        """
        raise NotImplementedError

    def __enter__(self) -> "BackendAdapter":
        self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------- loading

    def load_schema(self, schema: DatabaseSchema) -> None:
        """Create the tables (and indexes) of *schema* on the backend."""
        raise NotImplementedError

    def load_data(self, database: Database) -> None:
        """Bulk-load every table of *database* into the backend."""
        raise NotImplementedError

    def deploy(self, database: Database) -> None:
        """Connect, create the schema and load the data in one step."""
        self.connect()
        self.load_schema(database.schema)
        self.load_data(database)

    # ------------------------------------------------------------ execution

    def execute(self, query: AnyQuerySpec) -> BackendExecution:
        """Execute one logical query and return its result set."""
        raise NotImplementedError

    def execute_many(self, queries: Sequence[AnyQuerySpec]
                     ) -> List[BackendExecution]:
        """Execute a batch of queries, one :class:`BackendExecution` each.

        The default implementation is serial — one :meth:`execute` per query,
        in order — so every existing adapter gets the batched API for free.
        Adapters backed by engines with real batch endpoints (server-side
        pipelining, concurrent cursors) may override it for throughput; the
        contract either way is that the returned list has exactly one entry
        per input query, in input order, and that per-query failures come back
        as ``BackendExecution(error=...)`` instead of an exception, so one
        unsupported construct never discards its batch-mates' results.
        """
        executions: List[BackendExecution] = []
        for query in queries:
            try:
                executions.append(self.execute(query))
            except BackendError as error:
                executions.append(BackendExecution(error=error))
        return executions

    def explain(self, query: AnyQuerySpec) -> str:
        """Return the backend's plan description for *query*."""
        raise NotImplementedError

    # ------------------------------------------------------------- metadata

    @property
    def description(self) -> str:
        """Human-readable backend description (name by default)."""
        return self.name
