"""A real-DBMS backend over Python's stdlib :mod:`sqlite3`.

This is the first external engine the TQS pipeline can test for real: the
DSG-generated (noise-injected) database is deployed into a SQLite connection via
rendered DDL/DML, every generated query is rendered to SQLite SQL and executed,
and the differential oracle compares the results against the reference executor.

Value conversion happens at the boundary in both directions:

* on load, the IR's value domain (``int`` / ``float`` / ``Decimal`` / ``str`` /
  ``bool`` / :data:`~repro.sqlvalue.values.NULL`) is mapped onto SQLite storage
  classes — :data:`NULL` becomes ``None``, ``bool`` becomes ``0/1``, integral
  decimals become ``int`` and fractional ones ``float`` (SQLite has no exact
  decimal type; the float-tolerant result comparison absorbs the representation
  change);
* on fetch,``None`` becomes :data:`NULL` again so result sets compare under the
  repo's own three-valued semantics.

Integers outside the signed 64-bit range (e.g. the ``bigint unsigned`` boundary
``2**64 - 1``) cannot be stored losslessly; they raise
:class:`~repro.errors.BackendError` instead of being silently rounded through a
double, because a silent rounding would later surface as a fake logic bug.

The deploy/execute machinery shared with other rendered-SQL adapters lives in
:class:`~repro.backends.sqlbase.RenderedSQLBackend`; this module adds only the
sqlite3 connection lifecycle and driver hooks.
"""

from __future__ import annotations

import sqlite3
from decimal import Decimal
from typing import Any, List, Optional

from repro.backends.sqlbase import RenderedSQLBackend
from repro.backends.sqlrender import SQLITE_DIALECT, SQLRenderer
from repro.errors import BackendError
from repro.sqlvalue.values import is_null

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


def to_sqlite_value(value: Any, context: str = "") -> Any:
    """Convert one IR value into a value sqlite3 can bind."""
    if is_null(value):
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        if not _INT64_MIN <= value <= _INT64_MAX:
            raise BackendError(
                f"integer {value} exceeds the signed 64-bit range{context}"
            )
        return value
    if isinstance(value, Decimal):
        if value == value.to_integral_value():
            return to_sqlite_value(int(value), context)
        return float(value)
    if isinstance(value, (float, str)):
        return value
    raise BackendError(f"cannot bind value {value!r} of type {type(value).__name__}{context}")


class SQLiteBackend(RenderedSQLBackend):
    """Backend adapter executing rendered SQL on a real SQLite connection."""

    name = "SQLite"
    driver_errors = (sqlite3.Error, OverflowError)
    explain_prefix = "EXPLAIN QUERY PLAN"

    def __init__(self, path: str = ":memory:",
                 renderer: Optional[SQLRenderer] = None) -> None:
        super().__init__(renderer or SQLRenderer(SQLITE_DIALECT))
        self.path = path
        self._connection: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------ lifecycle

    @property
    def connection(self) -> sqlite3.Connection:
        """The live connection (raises when not connected)."""
        if self._connection is None:
            raise BackendError("SQLiteBackend is not connected; call connect()")
        return self._connection

    def connect(self) -> None:
        if self._connection is not None:
            return
        try:
            # check_same_thread=False: the execution pipeline deploys on the
            # campaign thread but executes batches on one dedicated target
            # thread.  Access is still strictly serial (one batch in flight,
            # supports_concurrent_cursors stays False); only the *identity* of
            # the accessing thread changes.
            self._connection = sqlite3.connect(self.path,
                                               check_same_thread=False)
        except sqlite3.Error as error:  # pragma: no cover - env dependent
            raise BackendError(f"cannot open SQLite database {self.path!r}: {error}")

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    # ---------------------------------------------------------- driver hooks

    def _run(self, sql: str) -> sqlite3.Cursor:
        return self.connection.execute(sql)

    def _run_many(self, sql: str, rows: List[tuple]) -> None:
        self.connection.executemany(sql, rows)

    def _commit(self) -> None:
        self.connection.commit()

    @property
    def description(self) -> str:
        return f"SQLite {sqlite3.sqlite_version} ({self.path})"
