"""A real-DBMS backend over Python's stdlib :mod:`sqlite3`.

This is the first external engine the TQS pipeline can test for real: the
DSG-generated (noise-injected) database is deployed into a SQLite connection via
rendered DDL/DML, every generated query is rendered to SQLite SQL and executed,
and the differential oracle compares the results against the reference executor.

Value conversion happens at the boundary in both directions:

* on load, the IR's value domain (``int`` / ``float`` / ``Decimal`` / ``str`` /
  ``bool`` / :data:`~repro.sqlvalue.values.NULL`) is mapped onto SQLite storage
  classes — :data:`NULL` becomes ``None``, ``bool`` becomes ``0/1``, integral
  decimals become ``int`` and fractional ones ``float`` (SQLite has no exact
  decimal type; the float-tolerant result comparison absorbs the representation
  change);
* on fetch,``None`` becomes :data:`NULL` again so result sets compare under the
  repo's own three-valued semantics.

Integers outside the signed 64-bit range (e.g. the ``bigint unsigned`` boundary
``2**64 - 1``) cannot be stored losslessly; they raise
:class:`~repro.errors.BackendError` instead of being silently rounded through a
double, because a silent rounding would later surface as a fake logic bug.
"""

from __future__ import annotations

import sqlite3
from decimal import Decimal
from typing import Any, List, Optional

from repro.backends.base import BackendAdapter, BackendExecution
from repro.backends.sqlrender import SQLITE_DIALECT, SQLRenderer
from repro.catalog.schema import DatabaseSchema
from repro.engine.resultset import ResultSet
from repro.errors import BackendError
from repro.plan.logical import QuerySpec
from repro.sqlvalue.values import is_null, null_if_none
from repro.storage.database import Database

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


def to_sqlite_value(value: Any, context: str = "") -> Any:
    """Convert one IR value into a value sqlite3 can bind."""
    if is_null(value):
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        if not _INT64_MIN <= value <= _INT64_MAX:
            raise BackendError(
                f"integer {value} exceeds SQLite's 64-bit range{context}"
            )
        return value
    if isinstance(value, Decimal):
        if value == value.to_integral_value():
            return to_sqlite_value(int(value), context)
        return float(value)
    if isinstance(value, (float, str)):
        return value
    raise BackendError(f"cannot bind value {value!r} of type {type(value).__name__}{context}")


class SQLiteBackend(BackendAdapter):
    """Backend adapter executing rendered SQL on a real SQLite connection."""

    name = "SQLite"

    def __init__(self, path: str = ":memory:",
                 renderer: Optional[SQLRenderer] = None) -> None:
        self.path = path
        self.renderer = renderer or SQLRenderer(SQLITE_DIALECT)
        self._connection: Optional[sqlite3.Connection] = None
        self.statements_executed = 0

    # ------------------------------------------------------------ lifecycle

    @property
    def connection(self) -> sqlite3.Connection:
        """The live connection (raises when not connected)."""
        if self._connection is None:
            raise BackendError("SQLiteBackend is not connected; call connect()")
        return self._connection

    def connect(self) -> None:
        if self._connection is not None:
            return
        try:
            self._connection = sqlite3.connect(self.path)
        except sqlite3.Error as error:  # pragma: no cover - env dependent
            raise BackendError(f"cannot open SQLite database {self.path!r}: {error}")

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    # ------------------------------------------------------------- loading

    def load_schema(self, schema: DatabaseSchema) -> None:
        cursor = self.connection.cursor()
        for table in schema.tables:
            try:
                cursor.execute(self.renderer.create_table(table))
                for statement in self.renderer.create_indexes(table):
                    cursor.execute(statement)
            except sqlite3.Error as error:
                raise BackendError(
                    f"cannot create table {table.name!r} on SQLite: {error}"
                ) from error
            self.statements_executed += 1
        self.connection.commit()

    def load_data(self, database: Database) -> None:
        cursor = self.connection.cursor()
        for name in database.table_names:
            table = database.table_schema(name)
            sql, columns = self.renderer.insert_statement(table)
            rows = [
                tuple(
                    to_sqlite_value(value, f" (table {name!r})")
                    for value in stored
                )
                for stored in database.table(name).rows_as_tuples(columns)
            ]
            if not rows:
                continue
            try:
                cursor.executemany(sql, rows)
            except (sqlite3.Error, OverflowError) as error:
                raise BackendError(
                    f"cannot load {len(rows)} rows into {name!r}: {error}"
                ) from error
            self.statements_executed += 1
        self.connection.commit()

    # ------------------------------------------------------------ execution

    def execute_sql(self, sql: str) -> ResultSet:
        """Run raw SQL text and wrap the cursor output as a :class:`ResultSet`."""
        try:
            cursor = self.connection.execute(sql)
        except sqlite3.Error as error:
            raise BackendError(f"SQLite rejected query: {error}\n{sql}") from error
        self.statements_executed += 1
        columns = [item[0] for item in cursor.description or ()]
        rows = [self._from_sqlite_row(row) for row in cursor.fetchall()]
        return ResultSet(columns, rows)

    def execute(self, query: QuerySpec) -> BackendExecution:
        sql = self.renderer.query(query)
        result = self.execute_sql(sql)
        # Use the IR's own output naming so result sets line up with the
        # reference executor even if the engine mangles duplicate names.
        names = query.output_columns()
        if len(names) == len(result.columns):
            result = ResultSet(names, result.rows)
        return BackendExecution(result=result, sql=sql)

    def explain(self, query: QuerySpec) -> str:
        sql = self.renderer.query(query)
        try:
            cursor = self.connection.execute(f"EXPLAIN QUERY PLAN {sql}")
        except sqlite3.Error as error:
            raise BackendError(f"SQLite rejected query: {error}\n{sql}") from error
        self.statements_executed += 1
        lines = [" | ".join(str(v) for v in row) for row in cursor.fetchall()]
        return "\n".join(lines)

    # ------------------------------------------------------------- helpers

    @staticmethod
    def _from_sqlite_row(row: Any) -> List[Any]:
        return [null_if_none(value) for value in row]

    @property
    def description(self) -> str:
        return f"SQLite {sqlite3.sqlite_version} ({self.path})"
