"""A :class:`BackendAdapter` facade over the in-process simulated engines.

Wrapping :class:`~repro.engine.engine.Engine` in the adapter interface keeps the
differential-testing loop engine-agnostic: the same
``run_differential_campaign`` drives a real SQLite connection and a simulated
MySQL with seeded faults.  The wrapper is also how the differential oracle's
sensitivity is validated — a campaign against a faulty simulated backend must
report mismatches, while the bug-free reference must not.
"""

from __future__ import annotations

import time
from typing import Optional

from repro import obs
from repro.backends.base import BackendAdapter, BackendExecution
from repro.catalog.schema import DatabaseSchema
from repro.engine.dialects import DialectProfile
from repro.engine.engine import Engine
from repro.errors import BackendError
from repro.optimizer.hints import HintSet
from repro.plan.logical import QuerySpec
from repro.storage.database import Database


class SimulatedBackend(BackendAdapter):
    """Adapter around a simulated :class:`Engine` (clean or seeded with faults)."""

    def __init__(self, dialect: Optional[DialectProfile] = None,
                 hints: Optional[HintSet] = None) -> None:
        self.dialect = dialect
        self.hints = hints
        self._engine: Optional[Engine] = None

    @property
    def name(self) -> str:  # type: ignore[override]
        if self._engine is not None:
            return self._engine.name
        if self.dialect is not None:
            return f"{self.dialect.name} {self.dialect.version}"
        return "ReferenceEngine"

    @property
    def engine(self) -> Engine:
        """The wrapped engine (raises before :meth:`load_data`)."""
        if self._engine is None:
            raise BackendError("SimulatedBackend has no engine; deploy a database first")
        return self._engine

    # ------------------------------------------------------------ lifecycle

    def connect(self) -> None:
        """No connection to open; the engine is built when data is loaded."""

    def close(self) -> None:
        self._engine = None

    # ------------------------------------------------------------- loading

    def load_schema(self, schema: DatabaseSchema) -> None:
        """Nothing to do: simulated engines read the schema from the database."""

    def load_data(self, database: Database) -> None:
        self._engine = Engine(database, self.dialect)

    # ------------------------------------------------------------ execution

    def execute(self, query: QuerySpec) -> BackendExecution:
        registry = obs.get_registry()
        start = time.perf_counter()
        report = self.engine.execute_with_report(query, self.hints)
        elapsed = time.perf_counter() - start
        registry.observe_phase("execute.target", elapsed)
        registry.histogram("execute.seconds", backend=self.name).observe(elapsed)
        # sql stays empty: the engine executes the IR directly, and incident
        # filing falls back to query.render() — rendering eagerly here would
        # waste a full tree walk on every matching query of a campaign.
        return BackendExecution(
            result=report.result,
            fired_bug_ids=report.fired_bug_ids,
        )

    def explain(self, query: QuerySpec) -> str:
        return self.engine.explain(query, self.hints)

    @property
    def description(self) -> str:
        return f"simulated {self.name}"
