"""Real-DBMS backend subsystem: SQL rendering plus engine adapters.

This package is the bridge between the TQS pipeline's internal IR and external
database engines.  :mod:`repro.backends.sqlrender` serializes query specs,
expression trees and DSG-generated databases into dialect-parameterized SQL;
:mod:`repro.backends.base` defines the adapter protocol every engine implements;
:mod:`repro.backends.sqlite_backend` is the first real adapter (stdlib sqlite3)
and :mod:`repro.backends.simulated` adapts the in-process engines to the same
interface.  The differential oracle driving these adapters lives in
:mod:`repro.core.differential`.
"""

from repro.backends.base import BackendAdapter, BackendExecution
from repro.backends.simulated import SimulatedBackend
from repro.backends.sqlite_backend import SQLiteBackend, to_sqlite_value
from repro.backends.sqlrender import (
    ANSI_DIALECT,
    MYSQL_DIALECT,
    SQLITE_DIALECT,
    SQLDialectSpec,
    SQLRenderer,
)

__all__ = [
    "ANSI_DIALECT",
    "BackendAdapter",
    "BackendExecution",
    "MYSQL_DIALECT",
    "SQLDialectSpec",
    "SQLITE_DIALECT",
    "SQLRenderer",
    "SQLiteBackend",
    "SimulatedBackend",
    "to_sqlite_value",
]
