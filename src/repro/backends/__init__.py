"""Real-DBMS backend subsystem: SQL rendering plus engine adapters.

This package is the bridge between the TQS pipeline's internal IR and external
database engines.  :mod:`repro.backends.sqlrender` serializes query specs,
expression trees and DSG-generated databases into dialect-parameterized SQL;
:mod:`repro.backends.base` defines the adapter protocol every engine implements;
:mod:`repro.backends.sqlite_backend` is the first real adapter (stdlib sqlite3)
and :mod:`repro.backends.simulated` adapts the in-process engines to the same
interface.  The differential oracle driving these adapters lives in
:mod:`repro.core.differential`.
"""

from repro.backends.base import BackendAdapter, BackendExecution
from repro.backends.simulated import SimulatedBackend
from repro.backends.sqlite_backend import SQLiteBackend, to_sqlite_value
from repro.backends.sqlrender import (
    ANSI_DIALECT,
    MYSQL_DIALECT,
    SQLITE_DIALECT,
    SQLDialectSpec,
    SQLRenderer,
)


def backend_from_name(name: str) -> BackendAdapter:
    """Construct a backend adapter from a plain-string name.

    Strings (unlike adapter instances) cross process boundaries, so this is
    what the multi-process parallel campaign runner and the CLI use to describe
    a differential shard's target: ``"sqlite"`` for the real SQLite adapter,
    ``"sim:<DialectName>"`` (e.g. ``"sim:SimMySQL"``) for a simulated engine
    with that dialect's seeded faults, and ``"sim"`` for the bug-free
    reference wrapped in the adapter interface.
    """
    from repro.engine.dialects import dialect_by_name

    if name == "sqlite":
        return SQLiteBackend()
    if name == "sim":
        return SimulatedBackend()
    if name.startswith("sim:"):
        return SimulatedBackend(dialect_by_name(name[len("sim:"):]))
    raise KeyError(
        f"unknown backend {name!r}; expected 'sqlite', 'sim' or 'sim:<Dialect>'"
    )


__all__ = [
    "ANSI_DIALECT",
    "BackendAdapter",
    "BackendExecution",
    "MYSQL_DIALECT",
    "SQLDialectSpec",
    "SQLITE_DIALECT",
    "SQLRenderer",
    "SQLiteBackend",
    "SimulatedBackend",
    "backend_from_name",
    "to_sqlite_value",
]
