"""Real-DBMS backend subsystem: SQL rendering plus engine adapters.

This package is the bridge between the TQS pipeline's internal IR and external
database engines.  :mod:`repro.backends.sqlrender` serializes query specs,
expression trees and DSG-generated databases into dialect-parameterized SQL;
:mod:`repro.backends.base` defines the adapter protocol every engine implements;
:mod:`repro.backends.sqlite_backend` is the first real adapter (stdlib sqlite3),
:mod:`repro.backends.duckdb_backend` the second (import-gated on the optional
``duckdb`` driver), and :mod:`repro.backends.simulated` adapts the in-process
engines to the same interface.  Adapters are looked up by plain-string name
through an open registry (:func:`register_backend` / :func:`backend_from_name`).
The differential oracle driving these adapters lives in
:mod:`repro.core.differential`.
"""

from typing import Callable, Dict, List

from repro.backends.base import BackendAdapter, BackendExecution
from repro.backends.duckdb_backend import DuckDBBackend, duckdb_available
from repro.backends.simulated import SimulatedBackend
from repro.backends.sqlbase import RenderedSQLBackend
from repro.backends.sqlite_backend import SQLiteBackend, to_sqlite_value
from repro.backends.sqlrender import (
    ANSI_DIALECT,
    DUCKDB_DIALECT,
    MYSQL_DIALECT,
    SQLITE_DIALECT,
    SQLDialectSpec,
    SQLRenderer,
)

# Exact-name factories plus prefix factories ("sim:" -> dialect-parameterized
# simulated engines); both are open for extension via register_backend, so
# third-party adapters plug in without editing this package.
_BACKEND_FACTORIES: Dict[str, Callable[[], BackendAdapter]] = {}
_BACKEND_PREFIX_FACTORIES: Dict[str, Callable[[str], BackendAdapter]] = {}


def register_backend(name: str, factory: Callable[..., BackendAdapter],
                     prefix: bool = False) -> None:
    """Register an adapter *factory* under a plain-string *name*.

    With ``prefix=True`` the name is treated as a prefix and the factory
    receives the remainder of the requested name as its single argument
    (``register_backend("sim:", ...)`` serves ``"sim:SimMySQL"``).  Factories
    must construct without connecting: the parallel runner materializes
    backends from names inside worker processes, and drivers that are missing
    in a given environment (e.g. DuckDB) must fail at ``connect()`` with a
    clear error, not at registration or lookup time.  Re-registering a name
    replaces the previous factory.
    """
    if prefix:
        _BACKEND_PREFIX_FACTORIES[name] = factory
    else:
        _BACKEND_FACTORIES[name] = factory


def registered_backends() -> List[str]:
    """The names :func:`backend_from_name` accepts (prefixes shown with ``*``)."""
    names = sorted(_BACKEND_FACTORIES)
    names.extend(f"{prefix}*" for prefix in sorted(_BACKEND_PREFIX_FACTORIES))
    return names


def backend_from_name(name: str) -> BackendAdapter:
    """Construct a backend adapter from a plain-string name.

    Strings (unlike adapter instances) cross process boundaries, so this is
    what the multi-process parallel campaign runner and the CLI use to describe
    a differential shard's target: ``"sqlite"`` for the real SQLite adapter,
    ``"duckdb"`` for the (import-gated) DuckDB adapter, ``"sim:<DialectName>"``
    (e.g. ``"sim:SimMySQL"``) for a simulated engine with that dialect's seeded
    faults, and ``"sim"`` for the bug-free reference wrapped in the adapter
    interface.  Third-party names come from :func:`register_backend`.
    """
    factory = _BACKEND_FACTORIES.get(name)
    if factory is not None:
        return factory()
    for prefix, prefix_factory in _BACKEND_PREFIX_FACTORIES.items():
        if name.startswith(prefix):
            return prefix_factory(name[len(prefix):])
    known = ", ".join(repr(known_name) for known_name in registered_backends())
    raise KeyError(f"unknown backend {name!r}; registered backends: {known}")


def _simulated_from_dialect(dialect_name: str) -> SimulatedBackend:
    from repro.engine.dialects import dialect_by_name

    return SimulatedBackend(dialect_by_name(dialect_name))


register_backend("sqlite", SQLiteBackend)
register_backend("duckdb", DuckDBBackend)
register_backend("sim", SimulatedBackend)
register_backend("sim:", _simulated_from_dialect, prefix=True)


__all__ = [
    "ANSI_DIALECT",
    "BackendAdapter",
    "BackendExecution",
    "DUCKDB_DIALECT",
    "DuckDBBackend",
    "MYSQL_DIALECT",
    "RenderedSQLBackend",
    "SQLDialectSpec",
    "SQLITE_DIALECT",
    "SQLRenderer",
    "SQLiteBackend",
    "SimulatedBackend",
    "backend_from_name",
    "duckdb_available",
    "register_backend",
    "registered_backends",
    "to_sqlite_value",
]
