"""Shared machinery for adapters that speak rendered SQL to a DB-API driver.

:class:`RenderedSQLBackend` owns everything that is identical across SQL
backends — deploying rendered DDL, bulk-loading converted rows, executing a
rendered query and re-labelling its output columns, wrapping driver errors as
:class:`~repro.errors.BackendError` — so a concrete adapter
(:class:`~repro.backends.sqlite_backend.SQLiteBackend`,
:class:`~repro.backends.duckdb_backend.DuckDBBackend`, a future MySQL /
Postgres adapter) only supplies connection lifecycle plus three small driver
hooks: :meth:`_run` (one statement), :meth:`_run_many` (one executemany bulk
load) and optionally :meth:`_commit`.  Fixes to value conversion or result
handling then land in one place instead of drifting per adapter.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Tuple

from repro import obs
from repro.backends.base import BackendAdapter, BackendExecution
from repro.backends.sqlrender import SQLRenderer
from repro.catalog.schema import DatabaseSchema
from repro.engine.resultset import ResultSet
from repro.errors import BackendError
from repro.plan.logical import AnyQuerySpec
from repro.storage.database import Database
from repro.sqlvalue.values import null_if_none


class RenderedSQLBackend(BackendAdapter):
    """Base adapter for engines driven through rendered SQL text.

    Subclasses set :attr:`driver_errors` (the driver's exception types, which
    the shared methods translate into :class:`BackendError` at the adapter
    boundary), :attr:`explain_prefix`, and implement :meth:`_run` /
    :meth:`_run_many` over their connection object; :meth:`_convert_value`
    may be overridden for engines whose binding domain differs from the
    shared int/float/str mapping.
    """

    # Exception types the driver raises; translated to BackendError by the
    # shared methods.  OverflowError covers drivers that reject out-of-range
    # integers at parameter-binding time.
    driver_errors: Tuple[type, ...] = (Exception,)
    explain_prefix = "EXPLAIN"

    def __init__(self, renderer: SQLRenderer) -> None:
        self.renderer = renderer
        self.statements_executed = 0
        # Optional content-addressed cache for rendered query text; attached
        # by campaign wiring (see repro.core.campaign) when caching is on.
        self.query_cache: Optional[Any] = None

    # -------------------------------------------------------- driver hooks

    def _run(self, sql: str) -> Any:
        """Execute one SQL statement; returns a DB-API cursor-like object
        (``description`` + ``fetchall()``)."""
        raise NotImplementedError

    def _run_many(self, sql: str, rows: List[tuple]) -> None:
        """Execute one parameterized statement for every row (bulk load)."""
        raise NotImplementedError

    def _commit(self) -> None:
        """Commit after a load phase; no-op for autocommitting drivers."""

    def _convert_value(self, value: Any, context: str) -> Any:
        """Convert one IR value into a driver-bindable value."""
        from repro.backends.sqlite_backend import to_sqlite_value

        return to_sqlite_value(value, context)

    # ------------------------------------------------------------- loading

    def load_schema(self, schema: DatabaseSchema) -> None:
        for table in schema.tables:
            try:
                self._run(self.renderer.create_table(table))
                for statement in self.renderer.create_indexes(table):
                    self._run(statement)
            except self.driver_errors as error:
                raise BackendError(
                    f"cannot create table {table.name!r} on {self.name}: "
                    f"{error}"
                ) from error
            self.statements_executed += 1
        self._commit()

    def load_data(self, database: Database) -> None:
        for name in database.table_names:
            table = database.table_schema(name)
            sql, columns = self.renderer.insert_statement(table)
            rows = [
                tuple(
                    self._convert_value(value, f" (table {name!r})")
                    for value in stored
                )
                for stored in database.table(name).rows_as_tuples(columns)
            ]
            if not rows:
                continue
            try:
                self._run_many(sql, rows)
            except self.driver_errors as error:
                raise BackendError(
                    f"cannot load {len(rows)} rows into {name!r}: {error}"
                ) from error
            self.statements_executed += 1
        self._commit()

    # ------------------------------------------------------------ execution

    def execute_sql(self, sql: str) -> ResultSet:
        """Run raw SQL text and wrap the cursor output as a :class:`ResultSet`."""
        try:
            cursor = self._run(sql)
        except self.driver_errors as error:
            raise BackendError(
                f"{self.name} rejected query: {error}\n{sql}"
            ) from error
        self.statements_executed += 1
        columns = [item[0] for item in cursor.description or ()]
        rows = [[null_if_none(value) for value in row]
                for row in cursor.fetchall()]
        return ResultSet(columns, rows)

    def _render_query(self, query: AnyQuerySpec) -> str:
        """Render *query*, via the render cache when one is attached.

        The key is content-addressed on (backend name, canonical SQL), so a
        hit returns byte-identical text to a fresh render.
        """
        if self.query_cache is None:
            return self.renderer.query(query)
        # Deferred import: repro.core packages import the backends package.
        from repro.core.qcache import render_cache_key

        key = render_cache_key(self.name, query.render())
        hit, cached = self.query_cache.get(key, "render")
        if hit:
            return str(cached)
        sql = self.renderer.query(query)
        self.query_cache.put(key, sql, "render")
        return sql

    def execute(self, query: AnyQuerySpec) -> BackendExecution:
        registry = obs.get_registry()
        with registry.span("render"):
            sql = self._render_query(query)
        start = time.perf_counter()
        result = self.execute_sql(sql)
        elapsed = time.perf_counter() - start
        registry.observe_phase("execute.target", elapsed)
        registry.histogram("execute.seconds", backend=self.name).observe(elapsed)
        # Use the IR's own output naming so result sets line up with the
        # reference executor even if the engine mangles duplicate names.
        names = query.output_columns()
        if len(names) == len(result.columns):
            result = ResultSet(names, result.rows)
        return BackendExecution(result=result, sql=sql)

    def explain(self, query: AnyQuerySpec) -> str:
        sql = self.renderer.query(query)
        try:
            cursor = self._run(f"{self.explain_prefix} {sql}")
        except self.driver_errors as error:
            raise BackendError(
                f"{self.name} rejected query: {error}\n{sql}"
            ) from error
        self.statements_executed += 1
        lines = [" | ".join(str(value) for value in row)
                 for row in cursor.fetchall()]
        return "\n".join(lines)
