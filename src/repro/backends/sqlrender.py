"""Dialect-parameterized SQL rendering of the internal IR.

The simulated engines execute :class:`~repro.plan.logical.QuerySpec` objects
directly, so the seed repo never needed real SQL text beyond the logging-oriented
``QuerySpec.render()``.  Connecting the TQS pipeline to an external DBMS does:
this module serializes the whole IR — query specs, :mod:`repro.expr.ast`
expression trees, :mod:`repro.sqlvalue` literals and the DSG-generated
:class:`~repro.catalog.schema.DatabaseSchema` — into SQL text that a real engine
will parse, plus the CREATE TABLE / INSERT statements needed to deploy a
:class:`~repro.storage.database.Database` into it.

Two rendering decisions are semantic, not cosmetic, and both exist to make the
rendered query mean the same thing on a real engine that the spec means to the
reference executor:

* SEMI and ANTI join steps are rendered as correlated ``EXISTS`` / ``NOT
  EXISTS`` subqueries rather than the ``IN`` / ``NOT IN`` form used by the
  logging renderer.  ``lhs NOT IN (SELECT rhs ...)`` returns UNKNOWN as soon as
  either side contains a NULL, silently dropping rows that the engines' anti
  join operators *do* emit; ``NOT EXISTS (... WHERE rhs = lhs)`` matches the
  operator semantics exactly (NULL keys never match, unmatched rows survive).
* Aggregates are rendered with an explicit ``DISTINCT`` argument
  (``COUNT(DISTINCT x)``), because the reference ``Project`` operator evaluates
  every aggregate over deduplicated inputs (see ``plan/operators.py``).
"""

from __future__ import annotations

import math
import sqlite3
from dataclasses import dataclass, field
from decimal import Decimal
from typing import Any, Iterator, List, Mapping, Optional, Tuple

from repro.catalog.schema import DatabaseSchema
from repro.catalog.table import TableSchema
from repro.errors import RenderError
from repro.expr.ast import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    ExistsSubquery,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    ScalarSubquery,
)
from repro.plan.logical import (
    AnyQuerySpec,
    CompoundQuerySpec,
    JoinStep,
    JoinType,
    QuerySpec,
    SelectItem,
    TableRef,
    unique_output_names,
)
from repro.sqlvalue.datatypes import DataType, TypeName
from repro.sqlvalue.values import render_literal
from repro.storage.database import Database

_JOIN_KEYWORDS = {
    JoinType.INNER: "INNER JOIN",
    JoinType.LEFT_OUTER: "LEFT OUTER JOIN",
    JoinType.RIGHT_OUTER: "RIGHT OUTER JOIN",
    JoinType.FULL_OUTER: "FULL OUTER JOIN",
    JoinType.CROSS: "CROSS JOIN",
}


@dataclass(frozen=True)
class SQLDialectSpec:
    """Everything dialect-specific about rendering SQL text.

    Attributes
    ----------
    name:
        Display name (``"sqlite"``, ``"ansi"``, ``"mysql"``).
    identifier_quote:
        Quote character wrapped around every identifier.
    paramstyle:
        Placeholder used by :meth:`SQLRenderer.render_insert` (``?`` or ``%s``).
    null_safe_equal:
        Infix operator implementing MySQL's ``<=>`` (SQLite spells it ``IS``).
    supports_right_join, supports_full_outer_join:
        Whether the engine parses RIGHT / FULL OUTER JOIN at all; rendering an
        unsupported join raises :class:`~repro.errors.RenderError` so callers
        can skip the query instead of filing a parse error as a logic bug.
    supports_hint_comments:
        Whether ``/*+ ... */`` hint comments are meaningful; when False they are
        omitted entirely rather than shipped as noise.
    supports_nulls_ordering:
        Whether ``NULLS FIRST`` / ``NULLS LAST`` parses in ORDER BY.  The
        reference executor sorts NULLs first ascending and last descending,
        so the renderer always spells the placement out where supported;
        dialects without the syntax (MySQL, SQLite < 3.30) happen to default
        to exactly the reference placement, so omission stays sound there.
    supports_ctes:
        Whether ``WITH name AS (...)`` common table expressions parse;
        rendering a CTE on a dialect without them raises
        :class:`~repro.errors.RenderError` so the oracle skips the query.
    real_division:
        Render ``a / b`` with the operands cast to REAL.  The reference
        executor divides in the decimal domain (``7 / 2 = 3.5``); engines with
        C-style integer division (SQLite) would otherwise diverge on every
        integer quotient.
    enforce_not_null:
        Emit NOT NULL column constraints.  Off by default because DSG's noise
        injector deliberately corrupts key cells with NULLs *after*
        normalization; the corrupted database must still be loadable.
    type_overrides:
        Per-:class:`TypeName` DDL spellings; unmapped types fall back to the
        IR's own MySQL-flavoured rendering.
    """

    name: str
    identifier_quote: str = '"'
    paramstyle: str = "?"
    null_safe_equal: str = "IS NOT DISTINCT FROM"
    supports_right_join: bool = True
    supports_full_outer_join: bool = True
    supports_hint_comments: bool = False
    supports_nulls_ordering: bool = True
    supports_ctes: bool = True
    real_division: bool = False
    enforce_not_null: bool = False
    type_overrides: Mapping[str, str] = field(default_factory=dict)

    def type_ddl(self, dtype: DataType) -> str:
        """Render *dtype* for this dialect's CREATE TABLE."""
        override = self.type_overrides.get(dtype.name.value)
        if override is not None:
            if "{length}" in override:
                return override.format(length=dtype.length or 255)
            if "{precision}" in override:
                return override.format(
                    precision=dtype.precision or 10, scale=dtype.scale or 0
                )
            return override
        base = dtype.render()
        if not self.enforce_not_null:
            base = base.replace(" NOT NULL", "")
        return base


ANSI_DIALECT = SQLDialectSpec(name="ansi")
"""Plain quoted-identifier SQL; the default for rendered bug reports."""

SQLITE_DIALECT = SQLDialectSpec(
    name="sqlite",
    null_safe_equal="IS",
    real_division=True,
    # RIGHT and FULL OUTER JOIN landed in SQLite 3.39.0 (2022-06); older
    # runtimes (common on Python 3.9 distros) reject them at parse time, so
    # the renderer must refuse up front and let the oracle skip the query.
    supports_right_join=sqlite3.sqlite_version_info >= (3, 39, 0),
    supports_full_outer_join=sqlite3.sqlite_version_info >= (3, 39, 0),
    # NULLS FIRST/LAST landed in SQLite 3.30.0; older runtimes default to
    # the reference placement anyway (NULLs first ASC, last DESC).
    supports_nulls_ordering=sqlite3.sqlite_version_info >= (3, 30, 0),
    # Map every IR type onto the SQLite affinity that matches the reference
    # executor's comparison domain: integers stay exact (INTEGER), decimals ride
    # NUMERIC, floats ride REAL, and strings/temporals ride TEXT so that
    # column-vs-literal comparisons coerce in the same direction MySQL would.
    type_overrides={
        TypeName.TINYINT.value: "INTEGER",
        TypeName.SMALLINT.value: "INTEGER",
        TypeName.MEDIUMINT.value: "INTEGER",
        TypeName.INT.value: "INTEGER",
        TypeName.BIGINT.value: "INTEGER",
        TypeName.DECIMAL.value: "NUMERIC({precision},{scale})",
        TypeName.FLOAT.value: "REAL",
        TypeName.DOUBLE.value: "REAL",
        TypeName.CHAR.value: "VARCHAR({length})",
        TypeName.VARCHAR.value: "VARCHAR({length})",
        TypeName.TEXT.value: "TEXT",
        TypeName.BLOB.value: "TEXT",
        TypeName.DATE.value: "TEXT",
        TypeName.DATETIME.value: "TEXT",
        TypeName.BOOLEAN.value: "INTEGER",
    },
)
"""Rendering profile for stdlib :mod:`sqlite3`."""

MYSQL_DIALECT = SQLDialectSpec(
    name="mysql",
    identifier_quote="`",
    paramstyle="%s",
    null_safe_equal="<=>",
    supports_full_outer_join=False,
    supports_hint_comments=True,
    # MySQL has no NULLS FIRST/LAST syntax; its default placement (NULLs
    # first ascending, last descending) already matches the reference.
    supports_nulls_ordering=False,
)
"""Rendering profile for a future MySQL/MariaDB adapter."""

DUCKDB_DIALECT = SQLDialectSpec(
    name="duckdb",
    null_safe_equal="IS NOT DISTINCT FROM",
    # DuckDB's `/` is float division already (`//` is the integer quotient),
    # so no CAST-to-REAL workaround: DuckDB's REAL is float32 and casting
    # through it would shed precision the comparison tolerance does not cover.
    real_division=False,
    # DuckDB is strongly typed, unlike SQLite's affinities, so every IR type
    # maps onto the native type whose comparison semantics match the
    # reference executor: integers stay 64-bit exact, decimals ride DOUBLE
    # (the float-tolerant comparison absorbs representation drift, and DOUBLE
    # sidesteps DECIMAL width errors on noise-corrupted values), and
    # strings/temporals ride VARCHAR so column-vs-literal comparisons coerce
    # the way the reference's string domain does.
    type_overrides={
        TypeName.TINYINT.value: "BIGINT",
        TypeName.SMALLINT.value: "BIGINT",
        TypeName.MEDIUMINT.value: "BIGINT",
        TypeName.INT.value: "BIGINT",
        TypeName.BIGINT.value: "BIGINT",
        TypeName.DECIMAL.value: "DOUBLE",
        TypeName.FLOAT.value: "DOUBLE",
        TypeName.DOUBLE.value: "DOUBLE",
        TypeName.CHAR.value: "VARCHAR",
        TypeName.VARCHAR.value: "VARCHAR",
        TypeName.TEXT.value: "VARCHAR",
        TypeName.BLOB.value: "VARCHAR",
        TypeName.DATE.value: "VARCHAR",
        TypeName.DATETIME.value: "VARCHAR",
        TypeName.BOOLEAN.value: "BIGINT",
    },
)
"""Rendering profile for the DuckDB adapter (import-gated driver)."""


class SQLRenderer:
    """Serializes the internal IR into SQL text for one dialect."""

    def __init__(self, dialect: SQLDialectSpec = ANSI_DIALECT) -> None:
        self.dialect = dialect

    # ------------------------------------------------------------- identifiers

    def ident(self, name: str) -> str:
        """Quote one identifier."""
        quote = self.dialect.identifier_quote
        if quote in name:
            raise RenderError(
                f"identifier {name!r} contains the quote character {quote!r}"
            )
        return f"{quote}{name}{quote}"

    def qualified(self, table: Optional[str], column: str) -> str:
        """Quote a possibly table-qualified column reference."""
        if table is None:
            return self.ident(column)
        return f"{self.ident(table)}.{self.ident(column)}"

    def table_ref(self, ref: TableRef) -> str:
        """Render a FROM-clause table reference with its alias."""
        if ref.table == ref.alias:
            return self.ident(ref.table)
        return f"{self.ident(ref.table)} AS {self.ident(ref.alias)}"

    # ---------------------------------------------------------------- literals

    def literal(self, value: Any) -> str:
        """Render a Python value as a SQL literal for this dialect.

        Delegates to the IR's own :func:`~repro.sqlvalue.values.render_literal`
        after rejecting values no SQL dialect can spell (NaN/Inf floats and
        decimals), which the logging-oriented helper happily emits.
        """
        if isinstance(value, float) and not math.isfinite(value):
            raise RenderError(f"cannot render non-finite float {value!r} as SQL")
        if isinstance(value, Decimal) and not value.is_finite():
            raise RenderError(f"cannot render non-finite decimal {value!r} as SQL")
        return render_literal(value)

    # ------------------------------------------------------------- expressions

    def expression(self, expr: Expression) -> str:
        """Render one expression tree."""
        if isinstance(expr, ColumnRef):
            return self.qualified(expr.table, expr.column)
        if isinstance(expr, Literal):
            return self.literal(expr.value)
        if isinstance(expr, Comparison):
            op = self.dialect.null_safe_equal if expr.op == "<=>" else expr.op
            return f"({self.expression(expr.left)} {op} {self.expression(expr.right)})"
        if isinstance(expr, IsNull):
            suffix = "IS NOT NULL" if expr.negated else "IS NULL"
            return f"({self.expression(expr.operand)} {suffix})"
        if isinstance(expr, Not):
            return f"(NOT {self.expression(expr.operand)})"
        if isinstance(expr, And):
            return "(" + " AND ".join(self.expression(op) for op in expr.operands) + ")"
        if isinstance(expr, Or):
            return "(" + " OR ".join(self.expression(op) for op in expr.operands) + ")"
        if isinstance(expr, Between):
            keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
            return (
                f"({self.expression(expr.operand)} {keyword} "
                f"{self.expression(expr.low)} AND {self.expression(expr.high)})"
            )
        if isinstance(expr, InList):
            keyword = "NOT IN" if expr.negated else "IN"
            items = ", ".join(self.expression(item) for item in expr.items)
            return f"({self.expression(expr.operand)} {keyword} ({items}))"
        if isinstance(expr, InSubquery):
            keyword = "NOT IN" if expr.negated else "IN"
            subquery = self.query(expr.subquery)
            return f"({self.expression(expr.operand)} {keyword} ({subquery}))"
        if isinstance(expr, ExistsSubquery):
            keyword = "NOT EXISTS" if expr.negated else "EXISTS"
            return f"({keyword} ({self.query(expr.subquery)}))"
        if isinstance(expr, ScalarSubquery):
            return f"({self.query(expr.subquery)})"
        if isinstance(expr, Arithmetic):
            left = self.expression(expr.left)
            right = self.expression(expr.right)
            if expr.op == "/" and self.dialect.real_division:
                left = f"CAST({left} AS REAL)"
            return f"({left} {expr.op} {right})"
        if isinstance(expr, FunctionCall):
            args = ", ".join(self.expression(arg) for arg in expr.args)
            return f"{expr.name.upper()}({args})"
        raise RenderError(f"cannot render expression node {type(expr).__name__}")

    # ------------------------------------------------------------------ SELECT

    def _select_item(self, item: SelectItem, output_name: str) -> str:
        inner = self.expression(item.expression)
        if item.aggregate is not None:
            inner = f"{item.aggregate.value}(DISTINCT {inner})"
        return f"{inner} AS {self.ident(output_name)}"

    def _semi_anti_filter(self, step: JoinStep) -> str:
        condition = (
            f"{self.expression(step.right_key)} = {self.expression(step.left_key)}"
        )
        if step.extra_condition is not None:
            condition += f" AND {self.expression(step.extra_condition)}"
        keyword = "EXISTS" if step.join_type is JoinType.SEMI else "NOT EXISTS"
        return (
            f"{keyword} (SELECT 1 FROM {self.table_ref(step.table)} "
            f"WHERE {condition})"
        )

    def _join_clause(self, step: JoinStep) -> str:
        if step.join_type is JoinType.RIGHT_OUTER and not self.dialect.supports_right_join:
            raise RenderError(f"{self.dialect.name} does not support RIGHT OUTER JOIN")
        if (step.join_type is JoinType.FULL_OUTER
                and not self.dialect.supports_full_outer_join):
            raise RenderError(f"{self.dialect.name} does not support FULL OUTER JOIN")
        if step.join_type is JoinType.CROSS:
            return f"CROSS JOIN {self.table_ref(step.table)}"
        condition = (
            f"{self.expression(step.left_key)} = {self.expression(step.right_key)}"
        )
        if step.extra_condition is not None:
            condition += f" AND {self.expression(step.extra_condition)}"
        return f"{_JOIN_KEYWORDS[step.join_type]} {self.table_ref(step.table)} ON {condition}"

    def query(self, spec: AnyQuerySpec, hint_comment: str = "") -> str:
        """Render a full statement (without the trailing semicolon).

        Dispatches on the spec type: plain SELECTs render directly, compound
        specs (set operations, optionally CTE-wrapped) through
        :meth:`compound_query`.
        """
        if isinstance(spec, CompoundQuerySpec):
            return self.compound_query(spec, hint_comment)
        return self.select_query(spec, hint_comment)

    def compound_query(self, spec: CompoundQuerySpec,
                       hint_comment: str = "") -> str:
        """Render a set-operation query, wrapped in a CTE when named.

        The CTE form is ``WITH name AS (<body>) SELECT <columns> FROM name``:
        a pass-through outer projection over the named body, which keeps the
        result identical to the body (so the reference executor can inline it)
        while the engine exercises its CTE machinery.
        """
        spec.validate()
        parts = [self.select_query(spec.arms[0], hint_comment)]
        for op, arm in zip(spec.operators, spec.arms[1:]):
            parts.append(op.render())
            parts.append(self.select_query(arm))
        body = "\n".join(parts)
        if spec.cte_name is None:
            return body
        if not self.dialect.supports_ctes:
            raise RenderError(f"{self.dialect.name} does not support WITH clauses")
        columns = ", ".join(self.ident(name) for name in spec.output_columns())
        cte = self.ident(spec.cte_name)
        return f"WITH {cte} AS (\n{body}\n)\nSELECT {columns} FROM {cte}"

    def select_query(self, spec: QuerySpec, hint_comment: str = "") -> str:
        """Render one plain SELECT statement (without the trailing semicolon)."""
        output_names = unique_output_names(spec.select)
        select_items = ", ".join(
            self._select_item(item, name)
            for item, name in zip(spec.select, output_names)
        )
        if not select_items:
            raise RenderError("query has no select items")
        distinct = "DISTINCT " if spec.distinct and not spec.has_aggregates() else ""
        hint = ""
        if hint_comment and self.dialect.supports_hint_comments:
            hint = f"/*+ {hint_comment} */ "
        parts = [f"SELECT {hint}{distinct}{select_items}"]
        from_clause = self.table_ref(spec.base)
        semi_anti: List[str] = []
        for step in spec.joins:
            if step.join_type in (JoinType.SEMI, JoinType.ANTI):
                semi_anti.append(self._semi_anti_filter(step))
            else:
                from_clause += f" {self._join_clause(step)}"
        parts.append(f"FROM {from_clause}")
        where: List[str] = []
        if spec.where is not None:
            where.append(self.expression(spec.where))
        where.extend(semi_anti)
        if where:
            parts.append("WHERE " + " AND ".join(where))
        if spec.group_by:
            parts.append(
                "GROUP BY " + ", ".join(self.expression(col) for col in spec.group_by)
            )
        if spec.order_by:
            rendered = []
            for item in spec.order_by:
                text = (self.expression(item.expression)
                        + (" DESC" if item.descending else ""))
                if self.dialect.supports_nulls_ordering:
                    # Matches the reference executor's value_sort_key order;
                    # dialects without the syntax default to this placement.
                    text += f" {item.nulls_placement()}"
                rendered.append(text)
            parts.append("ORDER BY " + ", ".join(rendered))
        if spec.limit is not None:
            parts.append(f"LIMIT {int(spec.limit)}")
        return "\n".join(parts)

    # --------------------------------------------------------------- DDL / DML

    def create_table(self, table: TableSchema) -> str:
        """Render a CREATE TABLE statement for one table."""
        parts = []
        for column in table.columns:
            ddl = f"{self.ident(column.name)} {self.dialect.type_ddl(column.dtype)}"
            if self.dialect.enforce_not_null and not column.dtype.nullable:
                if "NOT NULL" not in ddl:
                    ddl += " NOT NULL"
            parts.append(ddl)
        if table.primary_key:
            keys = ", ".join(self.ident(c) for c in table.primary_key)
            parts.append(f"PRIMARY KEY ({keys})")
        body = ",\n  ".join(parts)
        return f"CREATE TABLE {self.ident(table.name)} (\n  {body}\n)"

    def create_indexes(self, table: TableSchema) -> List[str]:
        """Render CREATE INDEX statements for the table's secondary keys.

        Indexes are deliberately non-unique: DSG's noise injection may corrupt
        key columns into duplicates, and the point of loading the database is to
        test join planning over these indexes, not to enforce integrity.
        """
        statements = []
        for index_number, key in enumerate(table.keys):
            name = key.name or "_".join(key.columns)
            index_name = self.ident(f"idx_{table.name}_{index_number}_{name}")
            columns = ", ".join(self.ident(c) for c in key.columns)
            statements.append(
                f"CREATE INDEX {index_name} ON {self.ident(table.name)} ({columns})"
            )
        implicit = tuple(table.implicit_key)
        if implicit and implicit != table.primary_key:
            columns = ", ".join(self.ident(c) for c in implicit)
            index_name = self.ident(f"idx_{table.name}_implicit_key")
            statements.append(
                f"CREATE INDEX {index_name} ON {self.ident(table.name)} ({columns})"
            )
        return statements

    def insert_statement(self, table: TableSchema) -> Tuple[str, Tuple[str, ...]]:
        """Render a parameterized INSERT and the column order its parameters use."""
        columns = table.column_names
        placeholders = ", ".join(self.dialect.paramstyle for _ in columns)
        column_list = ", ".join(self.ident(c) for c in columns)
        sql = (
            f"INSERT INTO {self.ident(table.name)} ({column_list}) "
            f"VALUES ({placeholders})"
        )
        return sql, columns

    def insert_values(self, table: TableSchema, row: Mapping[str, Any]) -> str:
        """Render one row as a literal INSERT (for exported repro scripts)."""
        columns = table.column_names
        column_list = ", ".join(self.ident(c) for c in columns)
        values = ", ".join(self.literal(row.get(c)) for c in columns)
        return f"INSERT INTO {self.ident(table.name)} ({column_list}) VALUES ({values})"

    def export_database(self, database: Database) -> Iterator[str]:
        """Yield the full DDL+DML script deploying *database* on this dialect.

        This is what turns a detected mismatch into a self-contained bug report:
        the yielded statements recreate the exact (noise-injected) DSG database
        on the target engine.
        """
        schema: DatabaseSchema = database.schema
        for table in schema.tables:
            yield self.create_table(table)
        for table in schema.tables:
            yield from self.create_indexes(table)
        for table in schema.tables:
            for row in database.table(table.name):
                yield self.insert_values(table, row)
