"""Value representation used throughout the engines.

Values are stored as plain Python objects (``int``, ``float``, ``decimal.Decimal``,
``str`` and :data:`NULL`).  Keeping values unboxed keeps query execution fast; type
information lives on the column definitions and the cast helpers in
:mod:`repro.sqlvalue.casts` consult it when a conversion is required.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Any, Iterable, Optional, Tuple


class _Null:
    """Singleton marker for the SQL ``NULL`` value.

    A dedicated sentinel (instead of Python's ``None``) makes it impossible to
    confuse "value absent from a dict" with "SQL NULL stored in a row", and it
    sorts after nothing because all comparisons against it produce UNKNOWN.
    """

    _instance: Optional["_Null"] = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __copy__(self) -> "_Null":
        return self

    def __deepcopy__(self, memo: dict) -> "_Null":
        return self

    def __reduce__(self):
        return (_Null, ())


NULL = _Null()
"""The SQL NULL singleton."""


def is_null(value: Any) -> bool:
    """Return True when *value* is the SQL NULL marker (or Python ``None``)."""
    return value is NULL or value is None


def null_if_none(value: Any) -> Any:
    """Map Python ``None`` to :data:`NULL`, leaving everything else untouched."""
    return NULL if value is None else value


def is_numeric_value(value: Any) -> bool:
    """True when *value* is a non-NULL numeric Python value."""
    return isinstance(value, (int, float, Decimal)) and not isinstance(value, bool) or (
        isinstance(value, bool)
    )


def is_string_value(value: Any) -> bool:
    """True when *value* is a non-NULL string."""
    return isinstance(value, str)


def canonical_numeric(value: Any) -> Any:
    """Return a canonical numeric form used for hashing and grouping.

    ``-0.0`` is normalized to ``0.0``, ``Decimal`` values with an integral value
    are collapsed onto ``int`` and floats that are exactly integral are collapsed
    too, so that ``1``, ``1.0`` and ``Decimal('1.0')`` all land in the same hash
    bucket.  The seeded "-0 mismatch" faults bypass this normalization, which is
    exactly the bug class of Figure 1(a) / Table 4 id 14.
    """
    if is_null(value):
        return NULL
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, Decimal):
        if value == value.to_integral_value():
            return int(value)
        return float(value)
    if isinstance(value, float):
        if value == 0.0:
            return 0.0
        if value.is_integer():
            return int(value)
        return value
    return value


def value_sort_key(value: Any) -> Tuple[int, Any]:
    """Total-order key used when sorting heterogeneous result rows.

    NULLs sort first (as in MySQL's ``ORDER BY``), then numerics, then strings.
    """
    if is_null(value):
        return (0, 0)
    if isinstance(value, bool):
        return (1, float(int(value)))
    if isinstance(value, (int, float, Decimal)):
        return (1, float(value))
    return (2, str(value))


def row_sort_key(row: Iterable[Any]) -> Tuple[Tuple[int, Any], ...]:
    """Sort key for an entire row (tuple of values)."""
    return tuple(value_sort_key(v) for v in row)


def normalize_row(row: Iterable[Any]) -> Tuple[Any, ...]:
    """Normalize a row for set-based result comparison.

    Numeric values are canonicalized (so ``1`` vs ``1.0`` never causes a spurious
    mismatch between the wide-table oracle and an engine) and NULL is kept as the
    singleton marker.
    """
    return tuple(canonical_numeric(v) if not is_null(v) else NULL for v in row)


def render_literal(value: Any) -> str:
    """Render a Python value as a SQL literal."""
    if is_null(value):
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float, Decimal)):
        return repr(value) if not isinstance(value, Decimal) else format(value, "f")
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
