"""SQL data types used by the simulated engines and the DSG generator.

The type system intentionally mirrors the types that show up in the paper's bug
listings (``decimal zerofill``, ``tinyint unsigned zerofill``, ``varchar(511)``,
``float``, ``double``, ``bigint(64)``, ``text``): those are exactly the types whose
implicit conversions trigger the seeded logic bugs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import TypeSystemError


class TypeCategory(enum.Enum):
    """Coarse grouping used by the implicit-cast lattice."""

    INTEGER = "integer"
    DECIMAL = "decimal"
    FLOAT = "float"
    STRING = "string"
    TEMPORAL = "temporal"
    BOOLEAN = "boolean"


class TypeName(enum.Enum):
    """Concrete SQL type names supported by the engines."""

    TINYINT = "tinyint"
    SMALLINT = "smallint"
    MEDIUMINT = "mediumint"
    INT = "int"
    BIGINT = "bigint"
    DECIMAL = "decimal"
    FLOAT = "float"
    DOUBLE = "double"
    CHAR = "char"
    VARCHAR = "varchar"
    TEXT = "text"
    BLOB = "blob"
    DATE = "date"
    DATETIME = "datetime"
    BOOLEAN = "boolean"


_CATEGORY_OF = {
    TypeName.TINYINT: TypeCategory.INTEGER,
    TypeName.SMALLINT: TypeCategory.INTEGER,
    TypeName.MEDIUMINT: TypeCategory.INTEGER,
    TypeName.INT: TypeCategory.INTEGER,
    TypeName.BIGINT: TypeCategory.INTEGER,
    TypeName.DECIMAL: TypeCategory.DECIMAL,
    TypeName.FLOAT: TypeCategory.FLOAT,
    TypeName.DOUBLE: TypeCategory.FLOAT,
    TypeName.CHAR: TypeCategory.STRING,
    TypeName.VARCHAR: TypeCategory.STRING,
    TypeName.TEXT: TypeCategory.STRING,
    TypeName.BLOB: TypeCategory.STRING,
    TypeName.DATE: TypeCategory.TEMPORAL,
    TypeName.DATETIME: TypeCategory.TEMPORAL,
    TypeName.BOOLEAN: TypeCategory.BOOLEAN,
}

_INTEGER_RANGES = {
    TypeName.TINYINT: (-128, 127, 0, 255),
    TypeName.SMALLINT: (-32768, 32767, 0, 65535),
    TypeName.MEDIUMINT: (-8388608, 8388607, 0, 16777215),
    TypeName.INT: (-2147483648, 2147483647, 0, 4294967295),
    TypeName.BIGINT: (-(2 ** 63), 2 ** 63 - 1, 0, 2 ** 64 - 1),
}


@dataclass(frozen=True)
class DataType:
    """A concrete SQL data type, with its display attributes.

    Attributes
    ----------
    name:
        The concrete :class:`TypeName`.
    length:
        Display width for integers, maximum length for strings.
    precision, scale:
        Only meaningful for :data:`TypeName.DECIMAL`.
    unsigned:
        Whether the integer type rejects negative values.
    zerofill:
        Whether integer/decimal values are rendered left-padded with zeros
        (the MySQL ``ZEROFILL`` attribute that shows up in Listing 1).
    nullable:
        Whether ``NULL`` is an acceptable value for the column.
    """

    name: TypeName
    length: Optional[int] = None
    precision: Optional[int] = None
    scale: Optional[int] = None
    unsigned: bool = False
    zerofill: bool = False
    nullable: bool = True

    def __post_init__(self) -> None:
        if self.name is TypeName.DECIMAL:
            precision = self.precision if self.precision is not None else 10
            scale = self.scale if self.scale is not None else 0
            if scale > precision:
                raise TypeSystemError(
                    f"decimal scale {scale} cannot exceed precision {precision}"
                )
        if self.unsigned and self.category not in (
            TypeCategory.INTEGER,
            TypeCategory.DECIMAL,
            TypeCategory.FLOAT,
        ):
            raise TypeSystemError(f"{self.name.value} cannot be unsigned")

    @property
    def category(self) -> TypeCategory:
        """Return the coarse category of this type."""
        return _CATEGORY_OF[self.name]

    @property
    def is_numeric(self) -> bool:
        """True for integer, decimal and floating point types."""
        return self.category in (
            TypeCategory.INTEGER,
            TypeCategory.DECIMAL,
            TypeCategory.FLOAT,
            TypeCategory.BOOLEAN,
        )

    @property
    def is_string(self) -> bool:
        """True for character and blob types."""
        return self.category is TypeCategory.STRING

    @property
    def is_temporal(self) -> bool:
        """True for date/datetime types."""
        return self.category is TypeCategory.TEMPORAL

    def integer_range(self) -> Tuple[int, int]:
        """Return the (min, max) storable values for an integer type."""
        if self.category is not TypeCategory.INTEGER:
            raise TypeSystemError(f"{self.name.value} is not an integer type")
        lo_s, hi_s, lo_u, hi_u = _INTEGER_RANGES[self.name]
        if self.unsigned:
            return lo_u, hi_u
        return lo_s, hi_s

    def boundary_values(self) -> Tuple[object, ...]:
        """Values near the edge of the domain, used by the noise injector."""
        if self.category is TypeCategory.INTEGER:
            lo, hi = self.integer_range()
            return (hi, lo, 0, 65535 if hi >= 65535 else hi)
        if self.category is TypeCategory.FLOAT:
            return (0.0, -0.0, 1e308, -1e308, 1e-307)
        if self.category is TypeCategory.DECIMAL:
            return (0, -0, 10 ** ((self.precision or 10) - (self.scale or 0)) - 1)
        if self.category is TypeCategory.STRING:
            width = self.length or 10
            return ("", "Z" * min(width, 64), " leading", "trailing ")
        if self.category is TypeCategory.TEMPORAL:
            return ("1000-01-01", "9999-12-31")
        return (0, 1)

    def render(self) -> str:
        """Render the type as SQL DDL text."""
        base = self.name.value
        if self.name is TypeName.DECIMAL and self.precision is not None:
            base += f"({self.precision},{self.scale or 0})"
        elif self.length is not None and self.name not in (TypeName.TEXT, TypeName.BLOB):
            base += f"({self.length})"
        if self.unsigned:
            base += " unsigned"
        if self.zerofill:
            base += " zerofill"
        if not self.nullable:
            base += " NOT NULL"
        return base

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def tinyint(length: int = 4, unsigned: bool = False, zerofill: bool = False,
            nullable: bool = True) -> DataType:
    """Shortcut constructor for ``TINYINT``."""
    return DataType(TypeName.TINYINT, length=length, unsigned=unsigned,
                    zerofill=zerofill, nullable=nullable)


def integer(length: int = 11, unsigned: bool = False, nullable: bool = True) -> DataType:
    """Shortcut constructor for ``INT``."""
    return DataType(TypeName.INT, length=length, unsigned=unsigned, nullable=nullable)


def bigint(length: int = 20, unsigned: bool = False, nullable: bool = True) -> DataType:
    """Shortcut constructor for ``BIGINT``."""
    return DataType(TypeName.BIGINT, length=length, unsigned=unsigned, nullable=nullable)


def decimal(precision: int = 10, scale: int = 0, zerofill: bool = False,
            nullable: bool = True) -> DataType:
    """Shortcut constructor for ``DECIMAL``."""
    return DataType(TypeName.DECIMAL, precision=precision, scale=scale,
                    zerofill=zerofill, nullable=nullable)


def float_type(nullable: bool = True) -> DataType:
    """Shortcut constructor for ``FLOAT``."""
    return DataType(TypeName.FLOAT, nullable=nullable)


def double(nullable: bool = True) -> DataType:
    """Shortcut constructor for ``DOUBLE``."""
    return DataType(TypeName.DOUBLE, nullable=nullable)


def varchar(length: int = 100, nullable: bool = True) -> DataType:
    """Shortcut constructor for ``VARCHAR``."""
    return DataType(TypeName.VARCHAR, length=length, nullable=nullable)


def char(length: int = 10, nullable: bool = True) -> DataType:
    """Shortcut constructor for ``CHAR``."""
    return DataType(TypeName.CHAR, length=length, nullable=nullable)


def text(nullable: bool = True) -> DataType:
    """Shortcut constructor for ``TEXT``."""
    return DataType(TypeName.TEXT, nullable=nullable)


def date(nullable: bool = True) -> DataType:
    """Shortcut constructor for ``DATE``."""
    return DataType(TypeName.DATE, nullable=nullable)


def boolean(nullable: bool = True) -> DataType:
    """Shortcut constructor for ``BOOLEAN``."""
    return DataType(TypeName.BOOLEAN, nullable=nullable)
