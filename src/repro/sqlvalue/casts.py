"""Implicit cast rules used during mixed-type comparisons and joins.

The paper's MySQL semi-join bug (Figure 1(b)) is caused by ``varchar`` being cast to
``double`` instead of ``bigint`` when a hash semi-join is chosen, losing precision.
This module implements the *correct* conversion rules; the buggy conversions live in
:mod:`repro.engine.faults` and deliberately reuse the lossy routines defined here.
"""

from __future__ import annotations

import re
from decimal import Decimal, InvalidOperation
from typing import Any

from repro.sqlvalue.datatypes import DataType, TypeCategory
from repro.sqlvalue.values import NULL, is_null

_LEADING_NUMBER_RE = re.compile(r"^\s*[+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?")


def string_to_double(value: str) -> float:
    """Convert a string to DOUBLE using MySQL's leading-prefix rule.

    Non-numeric strings convert to ``0.0`` and trailing garbage is ignored, which
    is exactly how MySQL performs implicit string→number conversion.
    """
    match = _LEADING_NUMBER_RE.match(value)
    if not match:
        return 0.0
    try:
        return float(match.group(0))
    except ValueError:  # pragma: no cover - defensive
        return 0.0


def string_to_bigint(value: str) -> int:
    """Convert a string to BIGINT, truncating any fractional part."""
    return int(string_to_double(value))


def string_to_decimal(value: str) -> Decimal:
    """Convert a string to an exact DECIMAL using the leading-prefix rule."""
    match = _LEADING_NUMBER_RE.match(value)
    if not match:
        return Decimal(0)
    try:
        return Decimal(match.group(0).strip())
    except InvalidOperation:  # pragma: no cover - defensive
        return Decimal(0)


def to_double_lossy(value: Any) -> Any:
    """Cast *value* to DOUBLE, with the float32-style precision loss of FLOAT columns.

    This is the conversion path the buggy hash semi-join takes: large integers and
    long decimal strings lose their low-order digits.
    """
    if is_null(value):
        return NULL
    if isinstance(value, bool):
        return float(int(value))
    if isinstance(value, (int, float, Decimal)):
        return float(value)
    return string_to_double(str(value))


def to_bigint(value: Any) -> Any:
    """Cast *value* to BIGINT (the correct conversion for integer-like strings)."""
    if is_null(value):
        return NULL
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, (float, Decimal)):
        return int(value)
    return string_to_bigint(str(value))


def to_decimal(value: Any) -> Any:
    """Cast *value* to an exact DECIMAL."""
    if is_null(value):
        return NULL
    if isinstance(value, bool):
        return Decimal(int(value))
    if isinstance(value, int):
        return Decimal(value)
    if isinstance(value, Decimal):
        return value
    if isinstance(value, float):
        return Decimal(str(value))
    return string_to_decimal(str(value))


def to_string(value: Any) -> Any:
    """Cast *value* to its string form."""
    if is_null(value):
        return NULL
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def cast_to(value: Any, dtype: DataType) -> Any:
    """Cast *value* into the domain of *dtype* using the correct (bug-free) rules."""
    if is_null(value):
        return NULL
    category = dtype.category
    if category is TypeCategory.INTEGER:
        result = to_bigint(value)
        lo, hi = dtype.integer_range()
        return max(lo, min(hi, result))
    if category is TypeCategory.DECIMAL:
        result = to_decimal(value)
        scale = dtype.scale or 0
        quantum = Decimal(1).scaleb(-scale)
        return result.quantize(quantum)
    if category is TypeCategory.FLOAT:
        return to_double_lossy(value)
    if category is TypeCategory.STRING:
        rendered = to_string(value)
        if dtype.length is not None:
            return rendered[: dtype.length]
        return rendered
    if category is TypeCategory.BOOLEAN:
        return bool(to_bigint(value))
    return to_string(value)


def comparison_domain(left: DataType, right: DataType) -> TypeCategory:
    """Pick the domain in which a correct engine compares two columns.

    MySQL's documented rules, simplified: if both sides are strings compare as
    strings; if both are exact numerics compare as DECIMAL; any temporal paired
    with a string compares as strings; otherwise compare as DOUBLE -- *except*
    that an integer/decimal column compared with a string constant should use the
    exact DECIMAL domain (the correct behaviour the semi-join bug violates).
    """
    lc, rc = left.category, right.category
    if lc is TypeCategory.STRING and rc is TypeCategory.STRING:
        return TypeCategory.STRING
    if lc is TypeCategory.TEMPORAL or rc is TypeCategory.TEMPORAL:
        return TypeCategory.STRING
    exact = (TypeCategory.INTEGER, TypeCategory.DECIMAL, TypeCategory.BOOLEAN)
    if lc in exact and rc in exact:
        return TypeCategory.DECIMAL
    if (lc in exact and rc is TypeCategory.STRING) or (
        rc in exact and lc is TypeCategory.STRING
    ):
        return TypeCategory.DECIMAL
    return TypeCategory.FLOAT


def cast_for_domain(value: Any, domain: TypeCategory) -> Any:
    """Cast *value* into the shared comparison *domain*."""
    if is_null(value):
        return NULL
    if domain is TypeCategory.STRING:
        return to_string(value)
    if domain is TypeCategory.DECIMAL:
        return to_decimal(value)
    if domain in (TypeCategory.FLOAT, TypeCategory.INTEGER, TypeCategory.BOOLEAN):
        return to_double_lossy(value)
    return to_string(value)
