"""Three-valued-logic comparisons shared by filters, join conditions and the oracle."""

from __future__ import annotations

import math
from decimal import Decimal
from typing import Any, Optional

from repro.sqlvalue.casts import to_decimal, to_double_lossy, to_string
from repro.sqlvalue.values import NULL, canonical_numeric, is_null

UNKNOWN = None
"""The UNKNOWN truth value of SQL three-valued logic (represented as ``None``)."""


def _coerce_pair(left: Any, right: Any) -> tuple:
    """Coerce two non-NULL values into a common comparable domain."""
    left_is_str = isinstance(left, str)
    right_is_str = isinstance(right, str)
    if left_is_str and right_is_str:
        return left, right
    if left_is_str != right_is_str:
        # Mixed string/number comparison: numbers win, use the exact domain so
        # '123' == 123 holds without floating point surprises.
        return to_decimal(left), to_decimal(right)
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    if isinstance(left, Decimal) or isinstance(right, Decimal):
        return to_decimal(left), to_decimal(right)
    return left, right


def sql_compare(left: Any, right: Any) -> Optional[int]:
    """Compare two values, returning -1/0/1 or UNKNOWN when either is NULL."""
    if is_null(left) or is_null(right):
        return UNKNOWN
    a, b = _coerce_pair(left, right)
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def sql_equal(left: Any, right: Any) -> Optional[bool]:
    """SQL ``=`` with three-valued logic."""
    cmp = sql_compare(left, right)
    if cmp is UNKNOWN:
        return UNKNOWN
    return cmp == 0


def sql_not_equal(left: Any, right: Any) -> Optional[bool]:
    """SQL ``<>`` with three-valued logic."""
    eq = sql_equal(left, right)
    if eq is UNKNOWN:
        return UNKNOWN
    return not eq


def sql_less(left: Any, right: Any) -> Optional[bool]:
    """SQL ``<``."""
    cmp = sql_compare(left, right)
    return UNKNOWN if cmp is UNKNOWN else cmp < 0


def sql_less_equal(left: Any, right: Any) -> Optional[bool]:
    """SQL ``<=``."""
    cmp = sql_compare(left, right)
    return UNKNOWN if cmp is UNKNOWN else cmp <= 0


def sql_greater(left: Any, right: Any) -> Optional[bool]:
    """SQL ``>``."""
    cmp = sql_compare(left, right)
    return UNKNOWN if cmp is UNKNOWN else cmp > 0


def sql_greater_equal(left: Any, right: Any) -> Optional[bool]:
    """SQL ``>=``."""
    cmp = sql_compare(left, right)
    return UNKNOWN if cmp is UNKNOWN else cmp >= 0


def null_safe_equal(left: Any, right: Any) -> bool:
    """SQL ``<=>``: like ``=`` but NULL <=> NULL is True and never UNKNOWN."""
    left_null = is_null(left)
    right_null = is_null(right)
    if left_null or right_null:
        return left_null and right_null
    return sql_compare(left, right) == 0


def logical_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Three-valued AND."""
    if left is False or right is False:
        return False
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    return True


def logical_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Three-valued OR."""
    if left is True or right is True:
        return True
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    return False


def logical_not(value: Optional[bool]) -> Optional[bool]:
    """Three-valued NOT."""
    if value is UNKNOWN:
        return UNKNOWN
    return not value


def truth_value(value: Any) -> Optional[bool]:
    """Interpret an arbitrary SQL value as a truth value (MySQL semantics).

    NULL is UNKNOWN; numbers are truthy when non-zero; strings are converted with
    the leading-prefix rule, so ``'abc'`` is falsy and ``'1x'`` is truthy.
    """
    if is_null(value):
        return UNKNOWN
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float, Decimal)):
        return value != 0
    return to_double_lossy(value) != 0.0


def values_close(left: Any, right: Any, rel_tol: float = 1e-9,
                 abs_tol: float = 1e-12) -> bool:
    """Equality with float tolerance, used by the cross-engine result comparison.

    Exact SQL equality (via :func:`sql_compare`) short-circuits; otherwise two
    floating-point representations of the same logical value (e.g. a ``Decimal``
    computed by the reference executor vs the ``REAL`` a real engine stores) are
    accepted when they agree within the given relative/absolute tolerance.
    NULL only matches NULL.
    """
    left_null = is_null(left)
    right_null = is_null(right)
    if left_null or right_null:
        return left_null and right_null
    if sql_compare(left, right) == 0:
        return True
    involves_float = isinstance(left, (float, Decimal)) or isinstance(
        right, (float, Decimal)
    )
    if not involves_float:
        return False
    try:
        a = float(left)
        b = float(right)
    except (TypeError, ValueError):
        return False
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def correct_hash_key(value: Any) -> Any:
    """The *correct* hash-join key normalization.

    ``0`` and ``-0`` hash identically, numerics across int/float/decimal collapse
    onto a canonical form, strings are compared case-sensitively as stored.
    The faulty engines override this with :func:`buggy` variants from
    :mod:`repro.engine.faults`.
    """
    if is_null(value):
        return NULL
    return canonical_numeric(value)


def string_hash_key(value: Any) -> Any:
    """Hash key used when the comparison domain is STRING."""
    if is_null(value):
        return NULL
    return to_string(value)
