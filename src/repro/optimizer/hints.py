"""Optimizer hints and switches.

All four simulated DBMSs expose the same hint surface the paper relies on
(`MySQL optimizer hints`, `MariaDB optimizer_switch`, `TiDB hints`): forcing a join
algorithm, fixing the join order, and toggling optimizer switches such as
``materialization``, ``semijoin`` and the join-cache levels.  A
:class:`HintSet` captures one combination; the DSG hint generator emits several
hint sets per query so the engine executes several different physical plans for
the same logical query (the ``trans_q`` of Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HintError
from repro.plan.physical import JoinAlgorithm

#: optimizer switches understood by the planner, with their default values.
DEFAULT_SWITCHES: Dict[str, bool] = {
    "materialization": True,
    "semijoin": True,
    "join_cache_hashed": True,
    "join_cache_bka": True,
    "join_cache_incremental": True,
    "outer_join_with_cache": True,
    "derived_to_subquery": True,
}

#: join-buffer level, MariaDB style (1 = plain BNL only ... 8 = all algorithms).
DEFAULT_JOIN_CACHE_LEVEL = 8


@dataclass(frozen=True)
class HintSet:
    """One combination of optimizer hints.

    Attributes
    ----------
    name:
        Short label used in logs and rendered as the hint comment.
    join_algorithm:
        Force every join step to use this algorithm (``None`` = cost based).
    per_step_algorithms:
        Force specific steps (0-based index into ``QuerySpec.joins``).
    join_order:
        Desired FROM-clause order of table aliases (``JOIN_ORDER`` hint).
    switches:
        Overrides of :data:`DEFAULT_SWITCHES`.
    join_cache_level:
        MariaDB ``join_cache_level`` (1..8).
    """

    name: str = "default"
    join_algorithm: Optional[JoinAlgorithm] = None
    per_step_algorithms: Tuple[Tuple[int, JoinAlgorithm], ...] = ()
    join_order: Tuple[str, ...] = ()
    switches: Tuple[Tuple[str, bool], ...] = ()
    join_cache_level: int = DEFAULT_JOIN_CACHE_LEVEL

    def __post_init__(self) -> None:
        for key, _ in self.switches:
            if key not in DEFAULT_SWITCHES:
                raise HintError(f"unknown optimizer switch {key!r}")
        if not 1 <= self.join_cache_level <= 8:
            raise HintError("join_cache_level must be between 1 and 8")

    # -------------------------------------------------------------- accessors

    def switch(self, name: str) -> bool:
        """Effective value of an optimizer switch."""
        if name not in DEFAULT_SWITCHES:
            raise HintError(f"unknown optimizer switch {name!r}")
        for key, value in self.switches:
            if key == name:
                return value
        return DEFAULT_SWITCHES[name]

    def algorithm_for_step(self, step_index: int) -> Optional[JoinAlgorithm]:
        """Algorithm forced for a specific join step, if any."""
        for index, algorithm in self.per_step_algorithms:
            if index == step_index:
                return algorithm
        return self.join_algorithm

    # -------------------------------------------------------------- rendering

    def render_comment(self) -> str:
        """Render the hint set as the SQL hint comment used in bug reports."""
        parts: List[str] = []
        if self.join_algorithm is not None:
            parts.append(f"{self.join_algorithm.value}_join()")
        for index, algorithm in self.per_step_algorithms:
            parts.append(f"{algorithm.value}_join(step{index})")
        if self.join_order:
            parts.append(f"JOIN_ORDER({', '.join(self.join_order)})")
        for key, value in self.switches:
            parts.append(f"set_var(optimizer_switch='{key}={'on' if value else 'off'}')")
        if self.join_cache_level != DEFAULT_JOIN_CACHE_LEVEL:
            parts.append(f"set_var(join_cache_level={self.join_cache_level})")
        return " ".join(parts) if parts else "default_plan()"

    def with_switch(self, name: str, value: bool) -> "HintSet":
        """Return a copy with one switch overridden."""
        if name not in DEFAULT_SWITCHES:
            raise HintError(f"unknown optimizer switch {name!r}")
        remaining = tuple((k, v) for k, v in self.switches if k != name)
        return replace(self, switches=remaining + ((name, value),))

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"HintSet({self.name}: {self.render_comment()})"


# ------------------------------------------------------------------ factories

def default_hints() -> HintSet:
    """The cost-based default plan (no hints)."""
    return HintSet(name="default")


def force_algorithm(algorithm: JoinAlgorithm, name: Optional[str] = None) -> HintSet:
    """Force all joins to use *algorithm*."""
    return HintSet(name=name or f"force_{algorithm.value}", join_algorithm=algorithm)


def hash_join_hints() -> HintSet:
    """``/*+ hash_join() */``."""
    return force_algorithm(JoinAlgorithm.HASH, "hash_join")


def merge_join_hints() -> HintSet:
    """``/*+ merge_join() */`` (TiDB style)."""
    return force_algorithm(JoinAlgorithm.SORT_MERGE, "merge_join")


def block_nested_loop_hints() -> HintSet:
    """``/*+ bnl_join() */``."""
    return force_algorithm(JoinAlgorithm.BLOCK_NESTED_LOOP, "bnl_join")


def nested_loop_hints() -> HintSet:
    """``/*+ no_bnl() no_hash_join() */`` — plain nested loop."""
    return force_algorithm(JoinAlgorithm.NESTED_LOOP, "nested_loop_join")


def bka_join_hints() -> HintSet:
    """``/*+ bka_join() */`` — batched key access."""
    return force_algorithm(JoinAlgorithm.BATCHED_KEY_ACCESS, "bka_join")


def bnlh_join_hints() -> HintSet:
    """Block nested loop hash join (MariaDB BNLH)."""
    return force_algorithm(JoinAlgorithm.BLOCK_NESTED_LOOP_HASH, "bnlh_join")


def index_join_hints() -> HintSet:
    """Index nested loop join."""
    return force_algorithm(JoinAlgorithm.INDEX_NESTED_LOOP, "index_nl_join")


def no_materialization_hints(base: Optional[HintSet] = None) -> HintSet:
    """``SET optimizer_switch='materialization=off'``."""
    hints = base or default_hints()
    return replace(hints.with_switch("materialization", False),
                   name=f"{hints.name}+no_materialization")


def no_semijoin_hints(base: Optional[HintSet] = None) -> HintSet:
    """``/*+ no_semijoin() */``."""
    hints = base or default_hints()
    return replace(hints.with_switch("semijoin", False),
                   name=f"{hints.name}+no_semijoin")


def join_cache_off_hints(kind: str = "join_cache_hashed") -> HintSet:
    """``SET optimizer_switch='join_cache_hashed=off'`` style hint sets."""
    return replace(default_hints().with_switch(kind, False), name=f"{kind}_off")


def join_order_hints(order: Sequence[str]) -> HintSet:
    """``/*+ JOIN_ORDER(t3, t1, t2) */``."""
    return HintSet(name="join_order", join_order=tuple(order))


def join_buffer_minimal_hints(level: int = 1) -> HintSet:
    """``SET join_cache_level=<level>`` — restrict the join buffer usage."""
    return HintSet(name=f"join_cache_level_{level}", join_cache_level=level)


def standard_hint_sets() -> List[HintSet]:
    """The hint sets TQS cycles through by default (the hint set ``H`` of Alg. 1)."""
    return [
        default_hints(),
        hash_join_hints(),
        merge_join_hints(),
        block_nested_loop_hints(),
        nested_loop_hints(),
        bka_join_hints(),
        bnlh_join_hints(),
        index_join_hints(),
        no_materialization_hints(),
        no_semijoin_hints(),
        no_materialization_hints(hash_join_hints()),
        join_cache_off_hints("join_cache_hashed"),
        join_cache_off_hints("join_cache_bka"),
        join_cache_off_hints("outer_join_with_cache"),
        join_buffer_minimal_hints(1),
    ]
