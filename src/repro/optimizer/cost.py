"""A deliberately small cost model used when no hint forces a join algorithm.

The real systems pick among nested loop, hash and index joins based on
cardinalities and available indexes; the simulated engines mimic that with a
coarse heuristic so that the *default* plan of a query is deterministic and
distinct from most hinted plans (which is what makes differential testing
meaningful for the TQS!GT ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan.logical import JoinType
from repro.plan.physical import JoinAlgorithm


@dataclass(frozen=True)
class JoinCostInput:
    """Facts the cost model looks at for one join step."""

    left_cardinality: int
    right_cardinality: int
    join_type: JoinType
    right_key_is_indexed: bool
    key_is_numeric: bool


#: below this inner-side cardinality a nested loop is considered cheapest.
SMALL_INNER_THRESHOLD = 24

#: above this product of cardinalities hashing always wins over nested loops.
HASH_PRODUCT_THRESHOLD = 2_000


def estimate_cost(algorithm: JoinAlgorithm, facts: JoinCostInput) -> float:
    """Rough cost estimate (rows touched) for running *algorithm* on *facts*."""
    left = max(1, facts.left_cardinality)
    right = max(1, facts.right_cardinality)
    if algorithm in (JoinAlgorithm.NESTED_LOOP, JoinAlgorithm.BLOCK_NESTED_LOOP):
        block_factor = 4 if algorithm is JoinAlgorithm.BLOCK_NESTED_LOOP else 1
        return left * right / block_factor
    if algorithm in (JoinAlgorithm.INDEX_NESTED_LOOP, JoinAlgorithm.BATCHED_KEY_ACCESS):
        probe = 2.0 if facts.right_key_is_indexed else right
        return left * probe + right
    if algorithm in (JoinAlgorithm.HASH, JoinAlgorithm.BLOCK_NESTED_LOOP_HASH):
        return left + 2 * right
    if algorithm is JoinAlgorithm.SORT_MERGE:
        import math

        return left * math.log2(left + 1) + right * math.log2(right + 1)
    return float(left * right)


def choose_algorithm(facts: JoinCostInput) -> JoinAlgorithm:
    """Pick the default join algorithm for one step.

    Mirrors the real engines' behaviour at a high level: index joins when the
    inner key is indexed and the outer side is small, nested loops for tiny
    inputs, hash joins for everything else.
    """
    if facts.join_type is JoinType.CROSS:
        return JoinAlgorithm.NESTED_LOOP
    if facts.right_cardinality <= SMALL_INNER_THRESHOLD and (
        facts.left_cardinality * facts.right_cardinality < HASH_PRODUCT_THRESHOLD
    ):
        return JoinAlgorithm.BLOCK_NESTED_LOOP
    if facts.right_key_is_indexed and facts.left_cardinality <= facts.right_cardinality:
        return JoinAlgorithm.INDEX_NESTED_LOOP
    candidates = [
        JoinAlgorithm.HASH,
        JoinAlgorithm.BLOCK_NESTED_LOOP,
        JoinAlgorithm.SORT_MERGE,
        JoinAlgorithm.INDEX_NESTED_LOOP,
    ]
    return min(candidates, key=lambda algorithm: estimate_cost(algorithm, facts))
