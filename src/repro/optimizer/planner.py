"""The planner: logical :class:`QuerySpec` + :class:`HintSet` -> physical plan."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.catalog.schema import DatabaseSchema
from repro.expr.ast import EvalContext
from repro.optimizer.cost import JoinCostInput, choose_algorithm
from repro.optimizer.hints import HintSet, default_hints
from repro.plan.joins import Join, JoinKeySpec
from repro.plan.logical import JoinStep, JoinType, QuerySpec
from repro.plan.operators import (
    Filter,
    Limit,
    Materialize,
    Project,
    Sort,
    TableScan,
)
from repro.plan.physical import (
    ExecutionHooks,
    PhysicalOperator,
    TriggerContext,
)
from repro.sqlvalue.casts import comparison_domain
from repro.sqlvalue.datatypes import TypeCategory
from repro.storage.database import Database


class Planner:
    """Builds executable physical plans for one database instance."""

    def __init__(self, database: Database, hooks: Optional[ExecutionHooks] = None) -> None:
        self.database = database
        self.schema: DatabaseSchema = database.schema
        self.hooks = hooks or ExecutionHooks()

    # ------------------------------------------------------------------ public

    def plan(self, query: QuerySpec, hints: Optional[HintSet] = None) -> PhysicalOperator:
        """Build the physical plan for *query* under *hints*."""
        hints = hints or default_hints()
        query.validate()
        steps = self._ordered_steps(query, hints)
        alias_to_table = {ref.alias: ref.table for ref in query.table_refs}
        operator: PhysicalOperator = TableScan(
            self.database, query.base.table, query.base.alias
        )
        left_cardinality = self.database.row_count(query.base.table)
        # Mirror real optimizers: a WHERE clause over the driving table lowers
        # the estimated outer cardinality, which can flip the cost-based join
        # algorithm choice (this is what gives TLP's partition queries plans
        # that differ from the unpartitioned query).
        if query.where is not None:
            referenced_aliases = {t for t, _ in query.where.references() if t}
            if query.base.alias in referenced_aliases:
                left_cardinality = max(1, int(left_cardinality * 0.4))
        for index, step in enumerate(steps):
            operator, left_cardinality = self._plan_join(
                operator, left_cardinality, step, index, hints, alias_to_table
            )
        if query.where is not None:
            operator = Filter(operator, query.where, self._subquery_executor(hints))
        operator = Project(
            operator,
            query.select,
            group_by=query.group_by,
            distinct=query.distinct,
            subquery_executor=self._subquery_executor(hints),
        )
        if query.order_by:
            operator = Sort(operator, query.order_by, self._subquery_executor(hints))
        if query.limit is not None:
            operator = Limit(operator, query.limit)
        return operator

    # ------------------------------------------------------------------ helpers

    def _ordered_steps(self, query: QuerySpec, hints: HintSet) -> List[JoinStep]:
        """Apply the JOIN_ORDER hint when it yields a valid left-deep chain."""
        steps = list(query.joins)
        if not hints.join_order or len(steps) < 2:
            return steps
        desired = [alias for alias in hints.join_order if alias in query.aliases]
        if not desired or desired[0] != query.base.alias:
            return steps
        remaining = {step.table.alias: step for step in steps}
        available = {query.base.alias}
        ordered: List[JoinStep] = []
        for alias in desired[1:]:
            step = remaining.get(alias)
            if step is None:
                continue
            left_alias = None if step.left_key is None else step.left_key.table
            if left_alias is not None and left_alias not in available:
                return steps
            ordered.append(step)
            available.add(alias)
            del remaining[alias]
        # Append any steps the hint did not mention, keeping original order.
        for step in steps:
            if step.table.alias in remaining:
                left_alias = None if step.left_key is None else step.left_key.table
                if left_alias is not None and left_alias not in available:
                    return steps
                ordered.append(step)
                available.add(step.table.alias)
        return ordered

    def _key_spec(
        self, step: JoinStep, alias_to_table: Dict[str, str]
    ) -> Optional[JoinKeySpec]:
        if step.join_type is JoinType.CROSS or step.left_key is None:
            return None
        left_table = alias_to_table[step.left_key.table]
        right_table = alias_to_table[step.right_key.table]
        left_dtype = self.schema.table(left_table).column(step.left_key.column).dtype
        right_dtype = self.schema.table(right_table).column(step.right_key.column).dtype
        domain = comparison_domain(left_dtype, right_dtype)
        return JoinKeySpec(
            left_column=f"{step.left_key.table}.{step.left_key.column}",
            right_column=f"{step.right_key.table}.{step.right_key.column}",
            domain=domain,
        )

    def _right_key_indexed(self, step: JoinStep, alias_to_table: Dict[str, str]) -> bool:
        if step.right_key is None:
            return False
        table = self.schema.table(alias_to_table[step.right_key.table])
        key_columns = set(table.primary_key) | set(table.implicit_key)
        for key in table.keys:
            key_columns.update(key.columns)
        return step.right_key.column in key_columns

    def _plan_join(
        self,
        left: PhysicalOperator,
        left_cardinality: int,
        step: JoinStep,
        step_index: int,
        hints: HintSet,
        alias_to_table: Dict[str, str],
    ) -> Tuple[PhysicalOperator, int]:
        right_table = step.table.table
        right_cardinality = self.database.row_count(right_table)
        right: PhysicalOperator = TableScan(self.database, right_table, step.table.alias)
        key_spec = self._key_spec(step, alias_to_table)
        numeric_key = key_spec is not None and key_spec.domain in (
            TypeCategory.DECIMAL,
            TypeCategory.FLOAT,
            TypeCategory.INTEGER,
        )
        algorithm = hints.algorithm_for_step(step_index)
        if algorithm is None:
            algorithm = choose_algorithm(
                JoinCostInput(
                    left_cardinality=left_cardinality,
                    right_cardinality=right_cardinality,
                    join_type=step.join_type,
                    right_key_is_indexed=self._right_key_indexed(step, alias_to_table),
                    key_is_numeric=numeric_key,
                )
            )
        materialization = hints.switch("materialization") and step.join_type in (
            JoinType.SEMI,
            JoinType.ANTI,
        )
        if materialization:
            right = Materialize(right)
        disabled = frozenset(
            name for name, _default in hints.switches if not hints.switch(name)
        )
        trigger = TriggerContext(
            algorithm=algorithm,
            join_type=step.join_type,
            key_domain=None if key_spec is None else key_spec.domain,
            materialization=materialization,
            semijoin_transform=hints.switch("semijoin"),
            join_cache_level=hints.join_cache_level,
            derived_from_subquery=step.join_type in (JoinType.SEMI, JoinType.ANTI),
            converted_from=None,
            disabled_switches=disabled,
        )
        join = Join(
            left=left,
            right=right,
            join_type=step.join_type,
            algorithm=algorithm,
            key=key_spec,
            hooks=self.hooks,
            extra_condition=step.extra_condition,
            trigger=trigger,
            subquery_executor=self._subquery_executor(hints),
        )
        if step.join_type is JoinType.CROSS:
            estimate = left_cardinality * max(1, right_cardinality)
        elif step.join_type in (JoinType.SEMI, JoinType.ANTI):
            estimate = left_cardinality
        else:
            estimate = max(left_cardinality, right_cardinality)
        return join, max(1, estimate)

    def _subquery_executor(self, hints: HintSet) -> Callable:
        """Executor for uncorrelated IN/EXISTS subqueries in WHERE clauses."""

        def run(subquery: QuerySpec, _outer_ctx: EvalContext) -> List[tuple]:
            operator = self.plan(subquery, hints)
            names = operator.output_columns()
            return [tuple(row[name] for name in names) for row in operator.rows()]

        return run
