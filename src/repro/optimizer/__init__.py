"""Hint model, cost model and planner."""

from repro.optimizer.cost import JoinCostInput, choose_algorithm, estimate_cost
from repro.optimizer.hints import (
    DEFAULT_SWITCHES,
    HintSet,
    bka_join_hints,
    block_nested_loop_hints,
    bnlh_join_hints,
    default_hints,
    force_algorithm,
    hash_join_hints,
    index_join_hints,
    join_cache_off_hints,
    join_order_hints,
    merge_join_hints,
    nested_loop_hints,
    no_materialization_hints,
    no_semijoin_hints,
    standard_hint_sets,
)
from repro.optimizer.planner import Planner

__all__ = [
    "DEFAULT_SWITCHES",
    "HintSet",
    "JoinCostInput",
    "Planner",
    "bka_join_hints",
    "block_nested_loop_hints",
    "bnlh_join_hints",
    "choose_algorithm",
    "default_hints",
    "estimate_cost",
    "force_algorithm",
    "hash_join_hints",
    "index_join_hints",
    "join_cache_off_hints",
    "join_order_hints",
    "merge_join_hints",
    "nested_loop_hints",
    "no_materialization_hints",
    "no_semijoin_hints",
    "standard_hint_sets",
]
