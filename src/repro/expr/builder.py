"""Helpers for building random (but type-correct) filter predicates.

The DSG query generator delegates predicate construction here: given a column and
a pool of values observed in the data, produce a comparison that will actually be
selective (RAGS / SQLSmith style), rather than a random constant that matches
nothing.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence

from repro.catalog.column import Column
from repro.expr.ast import (
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
)
from repro.sqlvalue.datatypes import TypeCategory
from repro.sqlvalue.values import is_null

_RANGE_OPS = ("<", "<=", ">", ">=")
_EQUALITY_OPS = ("=", "<>")


class PredicateBuilder:
    """Builds random single-column predicates from observed column values."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        # Default seed is fixed: an unseeded Random here would break the
        # bit-identical-replay contract for any caller that omits `rng`.
        self._rng = rng or random.Random(29)

    def build(
        self,
        table_alias: str,
        column: Column,
        observed_values: Sequence[Any],
    ) -> Expression:
        """Build a predicate on ``table_alias.column``.

        The predicate kind is chosen among equality, inequality, range, BETWEEN,
        IN-list and IS [NOT] NULL, weighted towards equality because equality
        filters compose best with the bitmap ground-truth oracle.
        """
        ref = ColumnRef(table_alias, column.name)
        values = [v for v in observed_values if not is_null(v)]
        if not values:
            return IsNull(ref, negated=self._rng.random() < 0.5)
        choice = self._rng.random()
        if choice < 0.40:
            return Comparison(
                self._rng.choice(_EQUALITY_OPS), ref, Literal(self._rng.choice(values))
            )
        if choice < 0.65 and column.dtype.category in (
            TypeCategory.INTEGER,
            TypeCategory.DECIMAL,
            TypeCategory.FLOAT,
        ):
            return Comparison(
                self._rng.choice(_RANGE_OPS), ref, Literal(self._rng.choice(values))
            )
        if choice < 0.80:
            low, high = self._pick_range(values)
            return Between(ref, Literal(low), Literal(high))
        if choice < 0.92:
            count = min(len(values), self._rng.randint(1, 4))
            picked = self._rng.sample(values, count)
            return InList(ref, tuple(Literal(v) for v in picked),
                          negated=self._rng.random() < 0.25)
        return IsNull(ref, negated=self._rng.random() < 0.5)

    def _pick_range(self, values: Sequence[Any]) -> tuple:
        """Pick a (low, high) pair, ordered when the values are orderable."""
        first = self._rng.choice(values)
        second = self._rng.choice(values)
        try:
            low, high = (first, second) if first <= second else (second, first)
        except TypeError:
            low, high = first, second
        return low, high


def comparable_constant(values: Sequence[Any], rng: random.Random) -> Any:
    """Pick a constant from observed values, falling back to 0 when empty."""
    usable = [v for v in values if not is_null(v)]
    if not usable:
        return 0
    return rng.choice(usable)
