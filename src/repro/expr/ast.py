"""Expression AST shared by filters, join conditions, projections and subqueries.

Every node can evaluate itself against an :class:`EvalContext`, render itself back
to SQL text, and report the columns it references.  Boolean-valued nodes return
``True`` / ``False`` / :data:`~repro.sqlvalue.values.NULL` (UNKNOWN) following SQL
three-valued logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from decimal import Decimal
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ExpressionError
from repro.sqlvalue.comparison import (
    logical_and,
    logical_not,
    logical_or,
    null_safe_equal,
    sql_compare,
    sql_equal,
    truth_value,
)
from repro.sqlvalue.values import NULL, is_null, render_literal

ColumnKey = Tuple[Optional[str], str]
"""A (table-or-alias, column) pair; the table part may be None for unqualified refs."""


class EvalContext:
    """Everything an expression needs at evaluation time.

    Attributes
    ----------
    row:
        Mapping from qualified column name (``"t1.col"``) and/or bare column name
        to the current value.
    subquery_executor:
        Callback invoked for IN/EXISTS subqueries; receives the subquery object
        and the current context and returns a list of result rows (tuples).
    """

    __slots__ = ("row", "subquery_executor")

    def __init__(
        self,
        row: Dict[str, Any],
        subquery_executor: Optional[Callable[[Any, "EvalContext"], List[tuple]]] = None,
    ) -> None:
        self.row = row
        self.subquery_executor = subquery_executor

    def lookup(self, table: Optional[str], column: str) -> Any:
        """Resolve a column reference against the current row."""
        if table is not None:
            qualified = f"{table}.{column}"
            if qualified in self.row:
                return self.row[qualified]
        if column in self.row:
            return self.row[column]
        # Fall back to a suffix match for unqualified references against
        # qualified row keys (single-owner columns only).
        matches = [key for key in self.row if key.endswith(f".{column}")]
        if table is None and len(matches) == 1:
            return self.row[matches[0]]
        raise ExpressionError(
            f"cannot resolve column {table + '.' if table else ''}{column} "
            f"against row keys {sorted(self.row)}"
        )


class Expression:
    """Base class for all expression nodes."""

    def eval(self, ctx: EvalContext) -> Any:
        """Evaluate the node against *ctx*."""
        raise NotImplementedError

    def render(self) -> str:
        """Render the node back to SQL text."""
        raise NotImplementedError

    def children(self) -> Sequence["Expression"]:
        """Direct child expressions."""
        return ()

    def references(self) -> Set[ColumnKey]:
        """All column references in the subtree."""
        refs: Set[ColumnKey] = set()
        stack: List[Expression] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, ColumnRef):
                refs.add((node.table, node.column))
            stack.extend(node.children())
        return refs

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"{type(self).__name__}({self.render()})"


@dataclass(frozen=True, repr=False)
class ColumnRef(Expression):
    """A reference to ``table.column`` (table may be an alias or None)."""

    table: Optional[str]
    column: str

    def eval(self, ctx: EvalContext) -> Any:
        return ctx.lookup(self.table, self.column)

    def render(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column

    @property
    def key(self) -> ColumnKey:
        """The (table, column) pair."""
        return (self.table, self.column)


@dataclass(frozen=True, repr=False)
class Literal(Expression):
    """A constant value."""

    value: Any

    def eval(self, ctx: EvalContext) -> Any:
        return self.value

    def render(self) -> str:
        return render_literal(self.value)


_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">=", "<=>"}


@dataclass(frozen=True, repr=False)
class Comparison(Expression):
    """A binary comparison with three-valued logic."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise ExpressionError(f"unsupported comparison operator {self.op!r}")

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def eval(self, ctx: EvalContext) -> Any:
        left = self.left.eval(ctx)
        right = self.right.eval(ctx)
        if self.op == "<=>":
            return null_safe_equal(left, right)
        cmp = sql_compare(left, right)
        if cmp is None:
            return NULL
        if self.op == "=":
            return cmp == 0
        if self.op in ("<>", "!="):
            return cmp != 0
        if self.op == "<":
            return cmp < 0
        if self.op == "<=":
            return cmp <= 0
        if self.op == ">":
            return cmp > 0
        return cmp >= 0

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


@dataclass(frozen=True, repr=False)
class IsNull(Expression):
    """``expr IS [NOT] NULL`` (never UNKNOWN)."""

    operand: Expression
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def eval(self, ctx: EvalContext) -> Any:
        result = is_null(self.operand.eval(ctx))
        return (not result) if self.negated else result

    def render(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.render()} {suffix})"


@dataclass(frozen=True, repr=False)
class Not(Expression):
    """Logical NOT with three-valued logic."""

    operand: Expression

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def eval(self, ctx: EvalContext) -> Any:
        value = truth_value(self.operand.eval(ctx))
        result = logical_not(value)
        return NULL if result is None else result

    def render(self) -> str:
        return f"(NOT {self.operand.render()})"


@dataclass(frozen=True, repr=False)
class And(Expression):
    """N-ary logical AND."""

    operands: Tuple[Expression, ...]

    def __init__(self, *operands: Expression) -> None:
        flattened: List[Expression] = []
        for operand in operands:
            if isinstance(operand, And):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        if not flattened:
            raise ExpressionError("AND requires at least one operand")
        object.__setattr__(self, "operands", tuple(flattened))

    def children(self) -> Sequence[Expression]:
        return self.operands

    def eval(self, ctx: EvalContext) -> Any:
        result: Optional[bool] = True
        for operand in self.operands:
            value = truth_value(operand.eval(ctx))
            result = logical_and(result, value)
            if result is False:
                return False
        return NULL if result is None else result

    def render(self) -> str:
        return "(" + " AND ".join(op.render() for op in self.operands) + ")"


@dataclass(frozen=True, repr=False)
class Or(Expression):
    """N-ary logical OR."""

    operands: Tuple[Expression, ...]

    def __init__(self, *operands: Expression) -> None:
        flattened: List[Expression] = []
        for operand in operands:
            if isinstance(operand, Or):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        if not flattened:
            raise ExpressionError("OR requires at least one operand")
        object.__setattr__(self, "operands", tuple(flattened))

    def children(self) -> Sequence[Expression]:
        return self.operands

    def eval(self, ctx: EvalContext) -> Any:
        result: Optional[bool] = False
        for operand in self.operands:
            value = truth_value(operand.eval(ctx))
            result = logical_or(result, value)
            if result is True:
                return True
        return NULL if result is None else result

    def render(self) -> str:
        return "(" + " OR ".join(op.render() for op in self.operands) + ")"


@dataclass(frozen=True, repr=False)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.operand, self.low, self.high)

    def eval(self, ctx: EvalContext) -> Any:
        value = self.operand.eval(ctx)
        low = self.low.eval(ctx)
        high = self.high.eval(ctx)
        lower = sql_compare(value, low)
        upper = sql_compare(value, high)
        if lower is None or upper is None:
            return NULL
        result = lower >= 0 and upper <= 0
        return (not result) if self.negated else result

    def render(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.render()} {keyword} "
            f"{self.low.render()} AND {self.high.render()})"
        )


@dataclass(frozen=True, repr=False)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)`` with correct NULL semantics."""

    operand: Expression
    items: Tuple[Expression, ...]
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.operand,) + self.items

    def eval(self, ctx: EvalContext) -> Any:
        value = self.operand.eval(ctx)
        if is_null(value):
            return NULL
        saw_unknown = False
        for item in self.items:
            candidate = item.eval(ctx)
            eq = sql_equal(value, candidate)
            if eq is True:
                return False if self.negated else True
            if eq is None:
                saw_unknown = True
        if saw_unknown:
            return NULL
        return True if self.negated else False

    def render(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        items = ", ".join(item.render() for item in self.items)
        return f"({self.operand.render()} {keyword} ({items}))"


@dataclass(frozen=True, repr=False)
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)``; the subquery is a logical QuerySpec."""

    operand: Expression
    subquery: Any
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def eval(self, ctx: EvalContext) -> Any:
        if ctx.subquery_executor is None:
            raise ExpressionError("IN subquery evaluated without a subquery executor")
        value = self.operand.eval(ctx)
        rows = ctx.subquery_executor(self.subquery, ctx)
        if is_null(value):
            if not rows:
                return True if self.negated else False
            return NULL
        saw_unknown = False
        for row in rows:
            candidate = row[0] if isinstance(row, (tuple, list)) else row
            eq = sql_equal(value, candidate)
            if eq is True:
                return False if self.negated else True
            if eq is None:
                saw_unknown = True
        if saw_unknown:
            return NULL
        return True if self.negated else False

    def render(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.render()} {keyword} ({self.subquery.render()}))"


@dataclass(frozen=True, repr=False)
class ExistsSubquery(Expression):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: Any
    negated: bool = False

    def eval(self, ctx: EvalContext) -> Any:
        if ctx.subquery_executor is None:
            raise ExpressionError("EXISTS subquery evaluated without a subquery executor")
        rows = ctx.subquery_executor(self.subquery, ctx)
        result = bool(rows)
        return (not result) if self.negated else result

    def render(self) -> str:
        keyword = "NOT EXISTS" if self.negated else "EXISTS"
        return f"({keyword} ({self.subquery.render()}))"


@dataclass(frozen=True, repr=False)
class ScalarSubquery(Expression):
    """``(SELECT ...)`` used as a scalar value; the subquery is a QuerySpec.

    Uncorrelated only (the planner's subquery executor ignores the outer
    row).  SQL semantics: an empty subquery result is NULL, a single row
    yields its first column.  More than one row is an *error* in most engines
    but silently takes the first row in SQLite — a divergence no differential
    oracle can adjudicate — so the generator only builds single-row-guaranteed
    subqueries (an aggregate select with no GROUP BY) and evaluation refuses
    multi-row results outright instead of picking an engine to mimic.
    """

    subquery: Any

    @staticmethod
    def resolve_rows(rows: Sequence[Any]) -> Any:
        """Collapse an executed subquery result to its scalar value."""
        if not rows:
            return NULL
        if len(rows) > 1:
            raise ExpressionError(
                f"scalar subquery returned {len(rows)} rows"
            )
        row = rows[0]
        return row[0] if isinstance(row, (tuple, list)) else row

    def eval(self, ctx: EvalContext) -> Any:
        if ctx.subquery_executor is None:
            raise ExpressionError(
                "scalar subquery evaluated without a subquery executor"
            )
        return self.resolve_rows(ctx.subquery_executor(self.subquery, ctx))

    def render(self) -> str:
        return f"({self.subquery.render()})"


_ARITHMETIC_OPS = {"+", "-", "*", "/"}


@dataclass(frozen=True, repr=False)
class Arithmetic(Expression):
    """Binary arithmetic; division by zero yields NULL (MySQL semantics)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC_OPS:
            raise ExpressionError(f"unsupported arithmetic operator {self.op!r}")

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def eval(self, ctx: EvalContext) -> Any:
        left = self.left.eval(ctx)
        right = self.right.eval(ctx)
        if is_null(left) or is_null(right):
            return NULL
        from repro.sqlvalue.casts import to_decimal, to_double_lossy

        if isinstance(left, str) or isinstance(right, str):
            left = to_double_lossy(left)
            right = to_double_lossy(right)
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            return left * right
        if right == 0:
            return NULL
        return to_decimal(left) / to_decimal(right) if not isinstance(left, float) and not isinstance(right, float) else left / right

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


@dataclass(frozen=True, repr=False)
class FunctionCall(Expression):
    """A small set of scalar functions needed by the generated workloads."""

    name: str
    args: Tuple[Expression, ...]

    _SUPPORTED = ("ABS", "LENGTH", "COALESCE", "UPPER", "LOWER", "IFNULL")

    def __post_init__(self) -> None:
        if self.name.upper() not in self._SUPPORTED:
            raise ExpressionError(f"unsupported function {self.name!r}")

    def children(self) -> Sequence[Expression]:
        return self.args

    def eval(self, ctx: EvalContext) -> Any:
        name = self.name.upper()
        values = [arg.eval(ctx) for arg in self.args]
        if name in ("COALESCE", "IFNULL"):
            for value in values:
                if not is_null(value):
                    return value
            return NULL
        if not values or is_null(values[0]):
            return NULL
        value = values[0]
        if name == "ABS":
            return abs(value) if isinstance(value, (int, float, Decimal)) else value
        if name == "LENGTH":
            return len(str(value))
        if name == "UPPER":
            return str(value).upper()
        if name == "LOWER":
            return str(value).lower()
        raise ExpressionError(f"unsupported function {self.name!r}")  # pragma: no cover

    def render(self) -> str:
        args = ", ".join(arg.render() for arg in self.args)
        return f"{self.name.upper()}({args})"


def conjoin(expressions: Iterable[Expression]) -> Optional[Expression]:
    """AND together a sequence of expressions, returning None when empty."""
    items = [expr for expr in expressions if expr is not None]
    if not items:
        return None
    if len(items) == 1:
        return items[0]
    return And(*items)


def column(table: Optional[str], name: str) -> ColumnRef:
    """Shortcut for :class:`ColumnRef`."""
    return ColumnRef(table, name)


def lit(value: Any) -> Literal:
    """Shortcut for :class:`Literal`."""
    return Literal(value)


def eq(left: Expression, right: Expression) -> Comparison:
    """Shortcut for an equality comparison."""
    return Comparison("=", left, right)
