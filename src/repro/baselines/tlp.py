"""TLP baseline: Ternary Logic Partitioning adapted to multi-table joins.

TLP (Rigger & Su, OOPSLA'20) rewrites a query ``Q`` into the three partitions
``Q WHERE p``, ``Q WHERE NOT p`` and ``Q WHERE p IS NULL`` and checks that their
union equals ``Q``.  Any predicate-insensitive logic bug corrupts all four
queries identically and stays invisible, which is the structural reason TLP
detects far fewer join-optimization bugs than TQS in Figure 8.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.baselines.base import BaselineTester
from repro.errors import GenerationError
from repro.expr.ast import And, Expression, IsNull, Not
from repro.plan.logical import JoinType, QuerySpec


class TLPTester(BaselineTester):
    """Ternary Logic Partitioning over multi-table join queries."""

    name = "TLP"

    def _partitions(self, query: QuerySpec, predicate: Expression) -> List[QuerySpec]:
        partitions = []
        for clause in (predicate, Not(predicate), IsNull(predicate)):
            where = clause if query.where is None else And(query.where, clause)
            partitions.append(
                QuerySpec(
                    base=query.base,
                    joins=list(query.joins),
                    select=list(query.select),
                    where=where,
                    group_by=list(query.group_by),
                    distinct=query.distinct,
                )
            )
        return partitions

    def run_iteration(self) -> None:
        assert self.dsg is not None and self.engine is not None
        try:
            query = self.random_join_query(
                max_joins=3,
                join_types=(JoinType.INNER, JoinType.LEFT_OUTER),
                project_all_aliases=True,
            )
        except GenerationError:
            return
        predicate = self.random_predicate(query)
        if predicate is None:
            return
        label = self.record_query(query)
        full_report = self.engine.execute_with_report(query)
        self.queries_executed += 1
        union: Set[Tuple] = set()
        partition_reports = []
        for partition in self._partitions(query, predicate):
            report = self.engine.execute_with_report(partition)
            self.queries_executed += 1
            partition_reports.append(report)
            union |= report.result.normalized()
        if union != full_report.result.normalized():
            # Attribute the incident to whichever execution fired seeded faults.
            blamed = max(
                partition_reports + [full_report],
                key=lambda report: len(report.fired_bug_ids),
            )
            self.record_incident(query, label, blamed,
                                 expected_rows=len(full_report.result),
                                 mode="tlp_partition")
