"""SQLancer-style baselines adapted to multi-table join testing (paper §5.2)."""

from repro.baselines.base import BaselineTester
from repro.baselines.norec import NoRecTester
from repro.baselines.pqs import PQSTester
from repro.baselines.tlp import TLPTester

BASELINES = {
    "PQS": PQSTester,
    "TLP": TLPTester,
    "NoRec": NoRecTester,
}
"""Registry of baseline testers by name."""


def make_baseline(name: str) -> BaselineTester:
    """Instantiate a baseline tester by name."""
    try:
        return BASELINES[name]()
    except KeyError:
        raise KeyError(f"unknown baseline {name!r}; available: {sorted(BASELINES)}") from None


__all__ = [
    "BASELINES",
    "BaselineTester",
    "NoRecTester",
    "PQSTester",
    "TLPTester",
    "make_baseline",
]
