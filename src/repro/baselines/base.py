"""Shared scaffolding for the SQLancer-style baselines (PQS, TLP, NoRec).

The paper tailors SQLancer's three oracles to multi-table queries "by artificially
generating queries and tuples across more than one table ... all queries and
tuples are randomly generated".  The baselines here share a random join-query
generator that walks the schema's foreign keys but, unlike DSG+KQE, has no
ground-truth oracle, no noise awareness and no exploration guidance -- each
subclass only supplies its own test oracle.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Sequence

from repro.core.bug_report import BugIncident, BugLog
from repro.dsg.pipeline import DSG
from repro.engine.engine import Engine, ExecutionReport
from repro.errors import GenerationError
from repro.expr.ast import ColumnRef, Comparison, Literal
from repro.kqe.isomorphism import IsomorphicSetCounter
from repro.kqe.query_graph import QueryGraphBuilder
from repro.plan.logical import JoinStep, JoinType, QuerySpec, SelectItem, TableRef


class BaselineTester:
    """Base class: random multi-table query generation plus per-tool oracles."""

    name = "baseline"

    def __init__(self) -> None:
        self.dsg: Optional[DSG] = None
        self.engine: Optional[Engine] = None
        self.rng = random.Random(0)
        self.bug_log = BugLog()
        self.queries_generated = 0
        self.queries_executed = 0
        self._diversity = IsomorphicSetCounter()
        self._graph_builder: Optional[QueryGraphBuilder] = None

    # ----------------------------------------------------------------- binding

    def bind(self, dsg: DSG, engine: Engine, seed: int = 0) -> None:
        """Attach the baseline to a generated database and a target engine."""
        self.dsg = dsg
        self.engine = engine
        # Derive the per-tool seed offset from a stable digest: hash(str) is
        # salted per process, which would give every worker a different RNG.
        name_digest = hashlib.sha256(self.name.encode("utf-8")).digest()
        offset = int.from_bytes(name_digest[:4], "big") % 1000
        self.rng = random.Random(seed + offset)
        self._graph_builder = QueryGraphBuilder(dsg.ndb.schema)

    @property
    def explored_isomorphic_sets(self) -> int:
        """Distinct query structures generated so far."""
        return self._diversity.distinct_sets

    @property
    def diversity(self) -> IsomorphicSetCounter:
        """The structure-diversity counter (same surface as TQS testers)."""
        return self._diversity

    # -------------------------------------------------------------- generation

    def random_join_query(self, max_joins: int = 3,
                          join_types: Sequence[JoinType] = (JoinType.INNER,
                                                            JoinType.LEFT_OUTER),
                          project_all_aliases: bool = False) -> QuerySpec:
        """A random FK join query without DSG's soundness-aware guidance."""
        assert self.dsg is not None
        graph = self.dsg.schema_graph
        tables = graph.table_names
        base_table = self.rng.choice(tables)
        used = {base_table}
        steps: List[JoinStep] = []
        for _ in range(self.rng.randint(1, max_joins)):
            frontier = [
                (anchor, edge) for anchor, edge in graph.edges_from_set(used)
            ]
            if not frontier:
                break
            anchor, edge = self.rng.choice(frontier)
            new_table = edge.other(anchor)
            join_type = self.rng.choice(list(join_types))
            steps.append(
                JoinStep(
                    TableRef(new_table, new_table),
                    join_type,
                    left_key=ColumnRef(anchor, edge.column),
                    right_key=ColumnRef(new_table, edge.column),
                )
            )
            used.add(new_table)
        if not steps:
            raise GenerationError(f"no joinable neighbour for table {base_table!r}")
        aliases = [base_table] + [step.table.alias for step in steps]
        select: List[SelectItem] = []
        pool = aliases if project_all_aliases else [self.rng.choice(aliases)]
        for alias in pool:
            columns = list(self.dsg.ndb.data_columns(alias))
            self.rng.shuffle(columns)
            for column in columns[:2]:
                select.append(SelectItem(ColumnRef(alias, column)))
        query = QuerySpec(
            base=TableRef(base_table, base_table),
            joins=steps,
            select=select or [SelectItem(ColumnRef(base_table,
                                                   self.dsg.ndb.data_columns(base_table)[0]))],
        )
        query.validate()
        return query

    def random_predicate(self, query: QuerySpec):
        """A random equality/range predicate over one projected column."""
        assert self.dsg is not None
        item = self.rng.choice(query.select)
        ref = item.expression
        if not isinstance(ref, ColumnRef) or ref.table is None:
            return None
        values = self.dsg.ndb.database.table(ref.table).distinct_values(ref.column)
        if not values:
            return None
        op = self.rng.choice(["=", "<>", "<", ">="])
        return Comparison(op, ref, Literal(self.rng.choice(values)))

    # -------------------------------------------------------------- accounting

    def record_query(self, query: QuerySpec) -> str:
        """Register a generated query for the diversity metric."""
        assert self._graph_builder is not None
        self.queries_generated += 1
        graph = self._graph_builder.build(query)
        label = graph.canonical_label()
        self._diversity.add_label(label)
        return label

    def record_incident(self, query: QuerySpec, label: str, report: ExecutionReport,
                        expected_rows: int, mode: str) -> None:
        """Record one oracle violation."""
        assert self.engine is not None
        self.bug_log.record(
            BugIncident(
                dbms=self.engine.name,
                query_sql=query.render(report.hints.render_comment()),
                hint_name=report.hints.name,
                detection_mode=mode,
                query_canonical_label=label,
                fired_bug_ids=report.fired_bug_ids,
                expected_rows=expected_rows,
                observed_rows=len(report.result),
            )
        )

    # ------------------------------------------------------------------ oracle

    def run_iteration(self) -> None:
        """Generate one test and check this tool's oracle (subclass hook)."""
        raise NotImplementedError
