"""NoRec baseline: Non-optimizing Reference Engine Construction for joins.

NoRec (Rigger & Su, ESEC/FSE'20) runs each query twice: once so the DBMS can
optimize it freely and once rewritten so no optimization applies, then compares
the two results.  For join queries the natural non-optimizing reference is the
plain nested-loop execution with every optimizer switch disabled; bugs that
corrupt both executions identically remain invisible, which is exactly the
weakness the ground-truth oracle of TQS removes.
"""

from __future__ import annotations

from repro.baselines.base import BaselineTester
from repro.errors import GenerationError
from repro.optimizer.hints import nested_loop_hints, no_materialization_hints, no_semijoin_hints
from repro.plan.logical import JoinType


def _reference_hints():
    """The non-optimizing reference plan: plain nested loops, all rewrites off."""
    hints = nested_loop_hints()
    hints = no_materialization_hints(hints)
    hints = no_semijoin_hints(hints)
    return hints


class NoRecTester(BaselineTester):
    """Non-optimizing reference comparison over multi-table join queries."""

    name = "NoRec"

    def run_iteration(self) -> None:
        assert self.dsg is not None and self.engine is not None
        try:
            query = self.random_join_query(
                max_joins=3,
                join_types=(JoinType.INNER, JoinType.LEFT_OUTER, JoinType.RIGHT_OUTER),
                project_all_aliases=True,
            )
        except GenerationError:
            return
        predicate = self.random_predicate(query)
        if predicate is not None and self.rng.random() < 0.5:
            query.where = predicate
        label = self.record_query(query)
        optimized = self.engine.execute_with_report(query)
        reference = self.engine.execute_with_report(query, _reference_hints())
        self.queries_executed += 2
        if optimized.result.normalized() != reference.result.normalized():
            blamed = optimized if optimized.fired_bug_ids else reference
            self.record_incident(query, label, blamed,
                                 expected_rows=len(reference.result),
                                 mode="norec_reference")
