"""PQS baseline: Pivoted Query Synthesis adapted to multi-table joins.

PQS picks a pivot row, synthesizes a query whose predicates are satisfied by that
pivot, and flags a bug when the pivot row is missing from the result (Rigger &
Su, OSDI'20).  The multi-table adaptation picks the pivot from the base table of
a random FK join chain and requires the pivot's projected values to appear in the
join result.  Like the original, it only exercises the default physical plan and
only notices missing-row symptoms, which is why it finds far fewer join
optimization bugs than TQS (Figure 8).
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.base import BaselineTester
from repro.errors import GenerationError
from repro.expr.ast import ColumnRef, Comparison, IsNull, Literal, conjoin
from repro.plan.logical import JoinType, QuerySpec, SelectItem
from repro.sqlvalue.values import is_null, normalize_row


class PQSTester(BaselineTester):
    """Pivoted Query Synthesis over multi-table join queries."""

    name = "PQS"

    def _pivot_predicates(self, query: QuerySpec, pivot_row: dict) -> List:
        predicates = []
        base_alias = query.base.alias
        assert self.dsg is not None
        for column in self.dsg.ndb.data_columns(query.base.table):
            value = pivot_row[column]
            ref = ColumnRef(base_alias, column)
            if is_null(value):
                predicates.append(IsNull(ref))
            else:
                predicates.append(Comparison("=", ref, Literal(value)))
            if len(predicates) >= 2:
                break
        return predicates

    def run_iteration(self) -> None:
        assert self.dsg is not None and self.engine is not None
        try:
            query = self.random_join_query(
                max_joins=2, join_types=(JoinType.INNER, JoinType.LEFT_OUTER)
            )
        except GenerationError:
            return
        base_table = query.base.table
        storage = self.dsg.ndb.database.table(base_table)
        if len(storage) == 0:
            return
        pivot_row = self.rng.choice(storage.rows)
        # Project base-table columns so the pivot is recognizable in the output,
        # and pin the pivot with equality predicates on the base table.
        select = [
            SelectItem(ColumnRef(query.base.alias, column))
            for column in list(self.dsg.ndb.data_columns(base_table))[:3]
        ]
        query.select = select
        query.where = conjoin(self._pivot_predicates(query, pivot_row))
        # PQS only verifies containment when the pivot is guaranteed to survive
        # the join: left outer joins always preserve it; for inner joins we
        # require the pivot's join keys to have matches.
        label = self.record_query(query)
        report = self.engine.execute_with_report(query)
        self.queries_executed += 1
        expected = normalize_row(
            tuple(pivot_row[item.expression.column] for item in select)
        )
        preserved = all(
            self._pivot_preserved(query, step, pivot_row) for step in query.joins
        )
        if not preserved:
            return
        if expected not in report.result.normalized():
            self.record_incident(query, label, report,
                                 expected_rows=1, mode="pivot_containment")

    def _pivot_preserved(self, query: QuerySpec, step, pivot_row: dict) -> Optional[bool]:
        """Whether the pivot row must survive *step* (None-ish steps count as kept)."""
        assert self.dsg is not None
        if step.join_type is not JoinType.INNER:
            # Left outer joins preserve every accumulated row, pivot included.
            return True
        if step.left_key is None:
            return True
        if step.left_key.table != query.base.alias:
            # The anchor is not the pivot's table: PQS cannot reason about the
            # match, so it conservatively skips verification of this query.
            return False
        value = pivot_row.get(step.left_key.column)
        if is_null(value):
            return False
        matches = self.dsg.ndb.database.table(step.table.table).find_rows(
            step.right_key.column, value
        )
        return bool(matches)
