"""Prometheus text exposition for :class:`~repro.obs.registry.MetricsSnapshot`.

Renders the 0.0.4 text format from a snapshot (plus optional host-level extra
gauges, e.g. the index server's frame-rejection counter) and serves it over a
minimal stdlib HTTP endpoint for ``--metrics-addr``.  Metric names are
sanitized ``.`` -> ``_`` and prefixed ``tqs_``; histograms render cumulative
``_bucket{le=...}`` series the way Prometheus expects.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, List, Mapping, Optional, Tuple

from repro.obs.registry import HistogramState, MetricsSnapshot, parse_key

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_PREFIX = "tqs_"


def _prom_name(name: str) -> str:
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name.replace(".", "_")
    )
    return _PREFIX + cleaned


def _prom_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{key}="{labels[key]}"' for key in sorted(labels)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(
    snapshot: Optional[MetricsSnapshot],
    extra_gauges: Optional[Mapping[str, float]] = None,
) -> str:
    """Render a snapshot (and optional scalar extras) as Prometheus text.

    *extra_gauges* maps raw metric names (dots allowed, no labels) to values —
    the hook for server-level series like ``server.frames_rejected`` that live
    outside any worker registry.
    """
    lines: List[str] = []

    counters: List[Tuple[str, Mapping[str, str], int]] = []
    gauges: List[Tuple[str, Mapping[str, str], float]] = []
    if snapshot is not None:
        for key, value in snapshot.counters.items():
            name, labels = parse_key(key)
            counters.append((name, labels, value))
        for key, value in snapshot.gauges.items():
            name, labels = parse_key(key)
            gauges.append((name, labels, value))

    for family in sorted({name for name, _, _ in counters}):
        prom = _prom_name(family) + "_total"
        lines.append(f"# TYPE {prom} counter")
        for name, labels, value in sorted(
            (entry for entry in counters if entry[0] == family),
            key=lambda entry: sorted(entry[1].items()),
        ):
            lines.append(f"{prom}{_prom_labels(labels)} {value}")

    for family in sorted({name for name, _, _ in gauges}):
        prom = _prom_name(family)
        lines.append(f"# TYPE {prom} gauge")
        for name, labels, value in sorted(
            (entry for entry in gauges if entry[0] == family),
            key=lambda entry: sorted(entry[1].items()),
        ):
            lines.append(f"{prom}{_prom_labels(labels)} {_format_value(value)}")

    if snapshot is not None:
        histograms: List[Tuple[str, Mapping[str, str], HistogramState]] = []
        for key, state in snapshot.histograms.items():
            name, labels = parse_key(key)
            histograms.append((name, labels, state))
        for family in sorted({name for name, _, _ in histograms}):
            prom = _prom_name(family)
            lines.append(f"# TYPE {prom} histogram")
            for name, labels, state in sorted(
                (entry for entry in histograms if entry[0] == family),
                key=lambda entry: sorted(entry[1].items()),
            ):
                cumulative = 0
                for bound, count in zip(state.bounds, state.counts):
                    cumulative += count
                    le = _prom_labels(labels, extra=f'le="{_format_value(bound)}"')
                    lines.append(f"{prom}_bucket{le} {cumulative}")
                le = _prom_labels(labels, extra='le="+Inf"')
                lines.append(f"{prom}_bucket{le} {state.count}")
                lines.append(
                    f"{prom}_sum{_prom_labels(labels)} {repr(state.sum)}"
                )
                lines.append(f"{prom}_count{_prom_labels(labels)} {state.count}")

    if extra_gauges:
        for name in sorted(extra_gauges):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_format_value(float(extra_gauges[name]))}")

    return "\n".join(lines) + "\n"


class MetricsHTTPServer:
    """A daemon-threaded HTTP endpoint serving Prometheus text on every GET.

    *provider* is called per request and must return the full exposition
    string; it typically closes over a live stats source (e.g. the index
    server's :meth:`stats_payload`).
    """

    def __init__(self, host: str, port: int, provider: Callable[[], str]) -> None:
        self._provider = provider

        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                try:
                    body = outer._provider().encode("utf-8")
                    status = 200
                except Exception as exc:  # surface provider bugs to the scraper
                    body = f"# metrics provider failed: {exc}\n".encode("utf-8")
                    status = 500
                self.send_response(status)
                self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: object) -> None:
                pass  # scrapes should not spam the campaign's stderr

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound (host, port) — resolves port 0 requests."""
        address = self._server.server_address
        return str(address[0]), int(address[1])

    def start(self) -> "MetricsHTTPServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="obs-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
