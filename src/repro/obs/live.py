"""Human-facing telemetry rendering: phase breakdowns and live progress lines.

Everything here reads a :class:`~repro.obs.registry.MetricsSnapshot` (local or
merged across shards) and produces plain text for the CLIs' ``--live-stats``
output and the benchmarks' phase reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.registry import MetricsSnapshot, parse_key

#: Preferred display order; unknown phases sort after these, alphabetically.
_PHASE_ORDER = (
    "setup",
    "generate",
    "render",
    "execute.target",
    "execute.reference",
    "judge",
    "sync",
)


def phase_breakdown(
    snapshot: MetricsSnapshot,
) -> List[Tuple[str, float, int]]:
    """``[(phase, total_seconds, span_count)]`` in canonical phase order."""
    phases = snapshot.phase_seconds()

    def order(name: str) -> Tuple[int, str]:
        try:
            return (_PHASE_ORDER.index(name), name)
        except ValueError:
            return (len(_PHASE_ORDER), name)

    return [
        (name, phases[name][0], phases[name][1])
        for name in sorted(phases, key=order)
    ]


def phase_total_seconds(snapshot: MetricsSnapshot) -> float:
    """Sum of all span time in the snapshot (across shards when merged)."""
    return sum(total for _, total, _ in phase_breakdown(snapshot))


def worker_run_seconds(snapshot: MetricsSnapshot) -> float:
    """Total worker wall-clock (sum of per-shard ``worker.run.seconds``)."""
    state = snapshot.histograms.get("worker.run.seconds")
    return state.sum if state is not None else 0.0


def render_phase_breakdown(
    snapshot: Optional[MetricsSnapshot],
    wall_seconds: Optional[float] = None,
) -> str:
    """A fixed-width phase table; percentages are of total span time.

    When *wall_seconds* is given (or ``worker.run.seconds`` was recorded) a
    trailing line reports how much of the wall-clock the spans cover — the
    acceptance gauge for "phase spans sum to >= 90% of wall-clock".
    """
    if snapshot is None:
        return "telemetry: no snapshot recorded"
    rows = phase_breakdown(snapshot)
    if not rows:
        return "telemetry: no phase spans recorded"
    total = sum(seconds for _, seconds, _ in rows)
    width = max(len(name) for name, _, _ in rows)
    lines = [f"{'phase'.ljust(width)}  {'seconds':>10}  {'spans':>8}  {'%':>6}"]
    for name, seconds, count in rows:
        share = 100.0 * seconds / total if total > 0 else 0.0
        lines.append(
            f"{name.ljust(width)}  {seconds:>10.3f}  {count:>8d}  {share:>5.1f}%"
        )
    lines.append(f"{'total'.ljust(width)}  {total:>10.3f}")
    wall = wall_seconds if wall_seconds is not None else worker_run_seconds(snapshot)
    if wall > 0:
        coverage = 100.0 * total / wall
        lines.append(f"span coverage: {coverage:.1f}% of {wall:.3f}s wall-clock")
    return "\n".join(lines)


def _phase_percentages(snapshot: MetricsSnapshot) -> str:
    rows = phase_breakdown(snapshot)
    total = sum(seconds for _, seconds, _ in rows)
    if total <= 0:
        return "n/a"
    parts: List[str] = []
    for name, seconds, _ in rows:
        share = 100.0 * seconds / total
        if share >= 0.5:
            parts.append(f"{name} {share:.0f}%")
    return " ".join(parts) if parts else "n/a"


def render_live_line(
    snapshot: MetricsSnapshot,
    elapsed_seconds: float,
    hour: Optional[int] = None,
    prefix: str = "",
) -> str:
    """One ``--live-stats`` status line from campaign counters + spans.

    Reports simulated-hours done, cumulative queries and queries/s (real
    seconds), novel-label count and rate per executed query, bug count, and
    the phase percentage mix.
    """
    generated = snapshot.counter_value("campaign.queries_generated")
    executed = snapshot.counter_value("campaign.queries_executed")
    labels = snapshot.counter_value("campaign.novel_labels")
    bugs = snapshot.counter_value("campaign.bugs")
    hours = snapshot.counter_value("campaign.hours")
    rate = executed / elapsed_seconds if elapsed_seconds > 0 else 0.0
    novelty = 100.0 * labels / executed if executed > 0 else 0.0
    head = f"{prefix} " if prefix else ""
    hour_text = f"hour {hour}" if hour is not None else f"hours {hours}"
    return (
        f"{head}[{hour_text}] {generated} generated / {executed} executed "
        f"({rate:.1f} q/s) | {labels} novel labels ({novelty:.1f}%) | "
        f"{bugs} bugs | phases: {_phase_percentages(snapshot)}"
    )


def error_counts(snapshot: MetricsSnapshot) -> Dict[str, int]:
    """Per-``{backend,kind}`` execute-error counters, keyed by series name."""
    return snapshot.counters_by_name("execute.errors")


def error_breakdown(snapshot: MetricsSnapshot) -> List[Dict[str, object]]:
    """``execute.errors`` series as records for the campaign JSON."""
    records: List[Dict[str, object]] = []
    for key in sorted(error_counts(snapshot)):
        _, series_labels = parse_key(key)
        records.append(
            {
                "backend": series_labels.get("backend", ""),
                "kind": series_labels.get("kind", ""),
                "count": snapshot.counters[key],
            }
        )
    return records
