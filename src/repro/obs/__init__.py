"""Telemetry subsystem: metrics registry, phase spans, exposition, live stats.

Dependency-free (stdlib only).  Typical hot-path usage::

    from repro import obs

    with obs.span("generate"):
        query = generator.generate()
    obs.get_registry().counter("execute.errors", backend="sqlite", kind="BackendError").inc()

Workers ship ``obs.snapshot_dict()`` through the sync transports; coordinators
fold the per-shard snapshots with :meth:`MetricsSnapshot.merge` and the CLIs
render them via :func:`render_phase_breakdown` / :func:`render_live_line`.
"""

from repro.obs.exposition import (
    MetricsHTTPServer,
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from repro.obs.live import (
    error_breakdown,
    error_counts,
    phase_breakdown,
    phase_total_seconds,
    render_live_line,
    render_phase_breakdown,
    worker_run_seconds,
)
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramState,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    PHASE_HISTOGRAM,
    format_key,
    get_registry,
    parse_key,
    reset_registry,
    set_enabled,
    snapshot_dict,
    span,
    telemetry_enabled,
)

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "HistogramState",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "PHASE_HISTOGRAM",
    "PROMETHEUS_CONTENT_TYPE",
    "error_breakdown",
    "error_counts",
    "format_key",
    "get_registry",
    "parse_key",
    "phase_breakdown",
    "phase_total_seconds",
    "render_live_line",
    "render_phase_breakdown",
    "render_prometheus",
    "reset_registry",
    "set_enabled",
    "snapshot_dict",
    "span",
    "telemetry_enabled",
    "worker_run_seconds",
]
