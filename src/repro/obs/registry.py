"""Process-local metrics registry: counters, gauges, histograms, phase spans.

The telemetry layer is deliberately dependency-free (stdlib only) and cheap on
the hot path: every instrument is a tiny object guarded by one registry-wide
lock, handles are memoized per ``name{labels}`` key, and a campaign iteration
costs a handful of dict lookups plus two ``perf_counter`` calls per span.

Three design constraints shape the API:

* **Determinism** — telemetry must never influence campaign results, so no
  instrument feeds back into any seeded decision, and the whole subsystem can
  be swapped for :class:`NullRegistry` no-ops via :func:`set_enabled` (the
  telemetry-on vs. telemetry-off regression test relies on this).
* **Mergeability** — workers snapshot their registry and ship it over the
  sync transports; the coordinator folds per-shard snapshots together.  The
  merge is associative and commutative (counters and histograms sum, gauges
  take the max), so arrival order cannot change the aggregate.
* **Serializability** — :meth:`MetricsSnapshot.to_dict` is plain
  JSON-compatible data with deterministically ordered keys, round-tripped by
  the strict codecs in :mod:`repro.distributed.wire`.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from types import TracebackType
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Type, Union

from repro.errors import TelemetryError

#: Lock discipline, enforced by `python -m repro.lint` (CONC001): instrument
#: maps are shared across every campaign thread and may only be touched
#: inside ``with self._lock:``.
GUARDED_BY = {
    "MetricsRegistry": ("_lock", ("_counters", "_gauges", "_histograms")),
}

#: Histogram family that every :func:`MetricsRegistry.span` records into,
#: labeled with ``phase=<name>``.
PHASE_HISTOGRAM = "phase.seconds"

#: Default latency buckets (seconds) — sub-millisecond through one minute,
#: roughly log-spaced like Prometheus' defaults.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def format_key(name: str, labels: Mapping[str, object]) -> str:
    """Canonical instrument key: ``name`` or ``name{k=v,...}`` (sorted keys)."""
    if not name or "{" in name or "}" in name:
        raise TelemetryError(f"invalid metric name {name!r}")
    if not labels:
        return name
    parts: List[str] = []
    for key in sorted(labels):
        value = str(labels[key])
        if any(ch in key for ch in "{},=") or any(ch in value for ch in "{},="):
            raise TelemetryError(f"invalid label {key!r}={value!r} for {name!r}")
        parts.append(f"{key}={value}")
    return name + "{" + ",".join(parts) + "}"


def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`format_key`: split a key into ``(name, labels)``."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if part:
            label, _, value = part.partition("=")
            labels[label] = value
    return name, labels


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise TelemetryError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time float; merges take the max across processes."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def max(self, value: float) -> None:
        with self._lock:
            if value > self.value:
                self.value = float(value)


class Histogram:
    """Fixed upper-bound buckets plus a running sum and count.

    ``bounds`` are the finite inclusive upper edges (``le`` semantics, as in
    Prometheus); ``counts`` has one extra trailing slot for the +Inf overflow
    bucket.  Counts are per-bucket (non-cumulative) so merging is element-wise
    addition; exposition cumulates on render.
    """

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock, bounds: Tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(bounds) or len(set(bounds)) != len(
            bounds
        ):
            raise TelemetryError(f"histogram bounds must be ascending: {bounds!r}")
        self._lock = lock
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1


@dataclass(frozen=True)
class HistogramState:
    """Immutable snapshot of one histogram."""

    bounds: Tuple[float, ...]
    counts: Tuple[int, ...]
    sum: float
    count: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, value: Mapping[str, object]) -> "HistogramState":
        bounds = tuple(float(b) for b in value["bounds"])  # type: ignore[index]
        counts = tuple(int(c) for c in value["counts"])  # type: ignore[index]
        if len(counts) != len(bounds) + 1:
            raise TelemetryError(
                f"histogram counts/bounds mismatch: {len(counts)} vs {len(bounds)}"
            )
        return cls(bounds, counts, float(value["sum"]), int(value["count"]))

    def merge(self, other: "HistogramState") -> "HistogramState":
        if self.bounds != other.bounds:
            raise TelemetryError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds!r} vs {other.bounds!r}"
            )
        return HistogramState(
            self.bounds,
            tuple(a + b for a, b in zip(self.counts, other.counts)),
            self.sum + other.sum,
            self.count + other.count,
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """A point-in-time copy of a registry, mergeable and wire-serializable."""

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramState] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-compatible dict with deterministically sorted keys."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
        }

    @classmethod
    def from_dict(
        cls, value: Optional[Mapping[str, object]]
    ) -> "MetricsSnapshot":
        if value is None:
            return cls()
        return cls(
            counters={str(k): int(v) for k, v in value.get("counters", {}).items()},  # type: ignore[union-attr]
            gauges={str(k): float(v) for k, v in value.get("gauges", {}).items()},  # type: ignore[union-attr]
            histograms={
                str(k): HistogramState.from_dict(v)
                for k, v in value.get("histograms", {}).items()  # type: ignore[union-attr]
            },
        )

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Associative + commutative fold; the empty snapshot is the identity."""
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        gauges = dict(self.gauges)
        for key, value in other.gauges.items():
            gauges[key] = max(gauges.get(key, value), value)
        histograms = dict(self.histograms)
        for key, state in other.histograms.items():
            existing = histograms.get(key)
            histograms[key] = state if existing is None else existing.merge(state)
        return MetricsSnapshot(counters, gauges, histograms)

    @classmethod
    def merge_all(cls, snapshots: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        merged = cls()
        for snapshot in snapshots:
            merged = merged.merge(snapshot)
        return merged

    # ------------------------------------------------------------- accessors

    def counter_value(self, name: str, **labels: object) -> int:
        return self.counters.get(format_key(name, labels), 0)

    def phase_seconds(self) -> Dict[str, Tuple[float, int]]:
        """``{phase: (total_seconds, span_count)}`` from the span histograms."""
        phases: Dict[str, Tuple[float, int]] = {}
        for key, state in self.histograms.items():
            name, labels = parse_key(key)
            if name == PHASE_HISTOGRAM and "phase" in labels:
                phases[labels["phase"]] = (state.sum, state.count)
        return phases

    def counters_by_name(self, name: str) -> Dict[str, int]:
        """All series of one counter family, keyed by full ``name{labels}``."""
        out: Dict[str, int] = {}
        for key, value in self.counters.items():
            if parse_key(key)[0] == name:
                out[key] = value
        return out


class _Span:
    """Context manager timing one phase into ``phase.seconds{phase=...}``."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._registry.observe_phase(
            self._name, time.perf_counter() - self._start
        )


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        pass


class MetricsRegistry:
    """Named, labeled instruments behind one lock; snapshot at any time."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ----------------------------------------------------------- instruments

    def counter(self, name: str, **labels: object) -> Counter:
        key = format_key(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter(self._lock)
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = format_key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge(self._lock)
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: object,
    ) -> Histogram:
        key = format_key(name, labels)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_TIME_BUCKETS
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(self._lock, bounds)
            elif buckets is not None and instrument.bounds != bounds:
                raise TelemetryError(
                    f"histogram {key!r} already registered with different "
                    f"buckets: {instrument.bounds!r} vs {bounds!r}"
                )
        return instrument

    # ----------------------------------------------------------------- spans

    def span(self, name: str) -> Union[_Span, _NullSpan]:
        """Time a phase; the elapsed seconds land in ``phase.seconds{phase=}``."""
        return _Span(self, name)

    def observe_phase(self, name: str, seconds: float) -> None:
        self.histogram(PHASE_HISTOGRAM, phase=name).observe(seconds)

    # -------------------------------------------------------------- snapshot

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            counters = {k: c.value for k, c in self._counters.items()}
            gauges = {k: g.value for k, g in self._gauges.items()}
            histograms = {
                k: HistogramState(h.bounds, tuple(h.counts), h.sum, h.count)
                for k, h in self._histograms.items()
            }
        return MetricsSnapshot(counters, gauges, histograms)


class _NullInstrument:
    """Absorbs every instrument method as a no-op."""

    __slots__ = ()
    value = 0
    sum = 0.0
    count = 0
    bounds: Tuple[float, ...] = ()
    counts: List[int] = []

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """A registry whose instruments and spans do nothing.

    Swapped in by :func:`set_enabled` so disabling telemetry removes even the
    per-call lock traffic, and instrumented code needs no ``if enabled:``
    branches.
    """

    _NULL = _NullInstrument()
    _NULL_SPAN = _NullSpan()

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: object) -> "_NullInstrument":  # type: ignore[override]
        return self._NULL

    def gauge(self, name: str, **labels: object) -> "_NullInstrument":  # type: ignore[override]
        return self._NULL

    def histogram(  # type: ignore[override]
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: object,
    ) -> "_NullInstrument":
        return self._NULL

    def span(self, name: str) -> "_NullSpan":
        return self._NULL_SPAN

    def observe_phase(self, name: str, seconds: float) -> None:
        pass


# ------------------------------------------------------- module-level registry

_NULL_REGISTRY = NullRegistry()
_registry = MetricsRegistry()
_enabled = True


def get_registry() -> MetricsRegistry:
    """The process-global registry (a shared no-op registry when disabled)."""
    return _registry if _enabled else _NULL_REGISTRY


def reset_registry() -> MetricsRegistry:
    """Replace the global registry with a fresh one (worker-process startup).

    Fork-start workers inherit the parent's registry state; resetting at the
    top of the worker body keeps each shard's snapshot self-contained.
    """
    global _registry
    _registry = MetricsRegistry()
    return _registry


def set_enabled(enabled: bool) -> bool:
    """Enable/disable telemetry globally; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def telemetry_enabled() -> bool:
    return _enabled


def span(name: str) -> Union[_Span, _NullSpan]:
    """Shorthand for ``get_registry().span(name)``."""
    return get_registry().span(name)


def snapshot_dict() -> Optional[Dict[str, object]]:
    """The global registry's snapshot as a plain dict, or None when empty/off.

    This is what workers attach to sync rounds and ``WorkerReport``s: None
    compresses the common disabled case to nothing on the wire.
    """
    if not _enabled:
        return None
    snapshot = _registry.snapshot()
    if not snapshot.counters and not snapshot.gauges and not snapshot.histograms:
        return None
    return snapshot.to_dict()
