"""``python -m repro.distributed`` — run distributed campaigns over TCP.

Four subcommands:

``serve``
    Host the central KQE index server for one campaign: builds the same shard
    assignments the in-process pool would, waits for N clients to register,
    coordinates the bulk-synchronous rounds with novelty pruning, merges the
    reports, prints the summary and optionally writes the campaign JSON.

``client``
    Connect to a server, receive a shard assignment, run it, upload the
    report.  Start one per machine (or per CI step).

``verify-local``
    Re-run the campaign recorded in a serve-produced JSON file through the
    in-process pool and assert the merged results are identical — the
    distributed determinism contract, checkable post hoc from the artifact.

``fuzz``
    Throw N deterministic malformed frames (garbage, hostile lengths,
    truncations, flipped MAC bits, wrong keys) at a live server and verify it
    keeps serving — the protocol-robustness contract, checkable in CI.

``stats``
    Query a live server's STATS verb over an authenticated connection and
    print its health payload (registration/round progress, frame rejections,
    per-shard last-heard ages) plus the merged telemetry phase breakdown.

``serve`` and ``client`` default to protocol v2 (``--protocol json``:
HMAC-authenticated JSON frames over a shared ``--auth-key-file``); pass
``--protocol pickle`` only for legacy deployments on trusted hosts.
``serve`` additionally takes ``--live-stats`` (periodic one-line progress on
stderr), ``--metrics-addr HOST:PORT`` (a Prometheus text endpoint) and
``--telemetry-output`` (dump the final merged telemetry snapshot as JSON).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro import CampaignConfig, ParallelCampaignConfig, obs, run_parallel_shards
from repro.core import (
    budget_policy_from_name,
    build_shard_specs,
    finalize_parallel_result,
    sync_schedule,
)
from repro.distributed.protocol import load_auth_key


def _add_protocol_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--protocol",
        choices=("json", "pickle"),
        default="json",
        help="wire encoding: 'json' is protocol v2 (versioned, "
        "HMAC-authenticated JSON frames; the default), 'pickle' the legacy "
        "v1 framing for trusted hosts only",
    )
    parser.add_argument(
        "--auth-key-file",
        default="",
        help="file holding the shared secret that authenticates protocol v2 "
        "frames; both serve and clients must use the same key (json "
        "protocol only)",
    )


def _auth_key(args: argparse.Namespace) -> Optional[bytes]:
    return load_auth_key(args.auth_key_file) if args.auth_key_file else None


def _add_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kind",
        choices=("tqs", "baseline", "differential"),
        default="tqs",
        help="campaign kind (default: tqs)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="number of client shards to coordinate (default: 2)",
    )
    parser.add_argument(
        "--hours", type=int, default=24, help="simulated hours (default: 24)"
    )
    parser.add_argument(
        "--queries-per-hour",
        type=int,
        default=12,
        help="total generation budget per hour across all clients (default: 12)",
    )
    parser.add_argument(
        "--dataset", default="shopping", help="DSG dataset name (default: shopping)"
    )
    parser.add_argument(
        "--dataset-rows",
        type=int,
        default=150,
        help="wide-table rows per shard (default: 150)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=5,
        help="campaign seed; shard seeds are derived from it (default: 5)",
    )
    parser.add_argument(
        "--sync-interval",
        type=int,
        default=1,
        help="hours between KQE index syncs; 0 disables (default: 1)",
    )
    parser.add_argument(
        "--dialect",
        default="SimMySQL",
        help="simulated DBMS for tqs/baseline campaigns (default: SimMySQL)",
    )
    parser.add_argument(
        "--baseline",
        default="NoRec",
        help="baseline name for --kind baseline (default: NoRec)",
    )
    parser.add_argument(
        "--backend",
        default="sqlite",
        help="backend name for --kind differential (default: sqlite)",
    )
    parser.add_argument(
        "--no-prune",
        action="store_true",
        help="disable novelty pruning (rebroadcast every entry)",
    )
    parser.add_argument(
        "--budget-policy",
        default="even",
        help="per-hour budget split across shards: 'even' (fixed) or "
        "'adaptive' (rebalanced toward shards discovering novel structures "
        "faster; default: even)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="execution-pipeline batch size inside each differential worker; "
        ">1 overlaps target and reference execution (default: 1)",
    )
    parser.add_argument(
        "--executor",
        default="row",
        help="reference execution strategy for differential campaigns: "
        "'row' or 'columnar' (default: row)",
    )
    parser.add_argument(
        "--query-cache",
        action="store_true",
        help="memoize rendered SQL and reference results in a per-shard "
        "content-addressed cache (verdicts stay bit-identical)",
    )


def _campaign_config(args: argparse.Namespace) -> CampaignConfig:
    return CampaignConfig(
        dataset=args.dataset,
        dataset_rows=args.dataset_rows,
        hours=args.hours,
        queries_per_hour=args.queries_per_hour,
        seed=args.seed,
        reference_executor=args.executor,
        use_query_cache=args.query_cache,
    )


def _campaign_echo(args: argparse.Namespace) -> Dict[str, Any]:
    """The campaign invocation, embedded in the JSON so verify-local can rerun it."""
    return {
        "kind": args.kind,
        "workers": args.workers,
        "dataset": args.dataset,
        "dataset_rows": args.dataset_rows,
        "hours": args.hours,
        "queries_per_hour": args.queries_per_hour,
        "seed": args.seed,
        "sync_interval": args.sync_interval,
        "dialect": args.dialect,
        "baseline": args.baseline,
        "backend": args.backend,
        "prune": not args.no_prune,
        "budget_policy": args.budget_policy,
        "batch_size": args.batch_size,
        "executor": args.executor,
        "query_cache": args.query_cache,
        "protocol": args.protocol,
    }


def _parse_metrics_addr(value: str) -> tuple:
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"--metrics-addr must be HOST:PORT, got {value!r}")
    return host or "127.0.0.1", int(port)


def _live_stats_loop(
    server: Any, start: float, stop_event: threading.Event, interval: float = 5.0
) -> None:
    """Print one progress line per *interval* while the campaign runs."""
    while not stop_event.wait(interval):
        payload = server.stats_payload()
        elapsed = time.perf_counter() - start
        telemetry = payload.get("telemetry")
        if telemetry:
            line = obs.render_live_line(
                obs.MetricsSnapshot.from_dict(telemetry), elapsed, prefix="server"
            )
        else:
            line = (
                f"server [{elapsed:6.1f}s] "
                f"{len(payload['registered_shards'])}/{payload['expected_shards']} "
                "shards registered, no telemetry yet"
            )
        print(line, file=sys.stderr, flush=True)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import (
        parallel_result_to_dict,
        render_worker_pool,
        write_parallel_result_json,
    )
    from repro.distributed.server import IndexServer

    config = _campaign_config(args)
    shards = build_shard_specs(
        args.kind,
        config,
        args.workers,
        dialect=args.dialect,
        baseline=args.baseline,
        backend=args.backend,
        batch_size=args.batch_size,
    )
    server = IndexServer(
        shards=shards,
        sync_hours=sync_schedule(config.hours, args.sync_interval),
        host=args.host,
        port=args.port,
        prune=not args.no_prune,
        round_timeout=args.round_timeout,
        budget_policy=budget_policy_from_name(args.budget_policy),
        protocol=args.protocol,
        auth_key=_auth_key(args),
        evict_dead_clients=args.evict_dead_clients,
        snapshot_dir=args.snapshot_dir,
    )
    server.start()
    auth = "on" if args.auth_key_file else "off"
    print(
        f"index server listening on {server.host}:{server.port} "
        f"(expecting {len(shards)} clients, protocol {args.protocol}, "
        f"auth {auth}, novelty pruning {'off' if args.no_prune else 'on'})",
        flush=True,
    )
    if args.snapshot_dir:
        print(
            f"snapshot log in {args.snapshot_dir}: "
            f"{server.restored_rounds} round(s) restored",
            flush=True,
        )
    start = time.perf_counter()
    metrics_http = None
    if args.metrics_addr:
        from repro.obs import MetricsHTTPServer

        mhost, mport = _parse_metrics_addr(args.metrics_addr)
        metrics_http = MetricsHTTPServer(mhost, mport, server.render_prometheus)
        metrics_http.start()
        bound_host, bound_port = metrics_http.address
        print(
            f"prometheus metrics at http://{bound_host}:{bound_port}/metrics",
            flush=True,
        )
    stop_live = threading.Event()
    live_thread: Optional[threading.Thread] = None
    if args.live_stats:
        live_thread = threading.Thread(
            target=_live_stats_loop,
            args=(server, start, stop_live),
            name="serve-live-stats",
            daemon=True,
        )
        live_thread.start()
    try:
        completed = server.wait(args.serve_timeout)
        if not completed:
            server.fail(f"no complete campaign within {args.serve_timeout:.0f}s")
        if server.failure is not None:
            print(f"campaign failed: {server.failure}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - start
        outcome = finalize_parallel_result(
            list(server.reports.values()),
            server.coordinator,
            workers=len(shards),
            sync_rounds=len(server.sync_hours),
            elapsed_seconds=elapsed,
            transport="tcp",
            budget_policy=args.budget_policy,
        )
        server_stats = server.stats_payload()
    finally:
        stop_live.set()
        if live_thread is not None:
            live_thread.join(timeout=1.0)
        if metrics_http is not None:
            metrics_http.stop()
        server.stop()
    print(render_worker_pool(outcome))
    if outcome.telemetry is not None:
        print()
        print(
            obs.render_phase_breakdown(obs.MetricsSnapshot.from_dict(outcome.telemetry))
        )
    print(
        f"broadcasts: {outcome.broadcast_entries_sent} entries sent, "
        f"{outcome.broadcast_entries_suppressed} suppressed by novelty pruning"
    )
    for shard_id, reason in sorted(server.evicted.items()):
        print(f"evicted shard {shard_id}: {reason}", file=sys.stderr)
    if server.frames_rejected:
        print(
            f"rejected {server.frames_rejected} malformed/unauthenticated "
            "frame(s); the offending connections were closed",
            file=sys.stderr,
        )
    campaign = _campaign_echo(args)
    if server.evicted:
        # Record the evictions in the artifact: the merge covers only the
        # survivors, and verify-local must know it is not looking at a
        # healthy fixed-worker campaign.
        campaign["evicted"] = {
            str(sid): reason for sid, reason in sorted(server.evicted.items())
        }
    if args.output:
        write_parallel_result_json(outcome, args.output, campaign=campaign)
        print(f"campaign JSON written to {args.output}")
    else:
        # Keep stdout machine-checkable even without an output file.
        summary = parallel_result_to_dict(outcome, campaign=campaign)
        print(json.dumps(summary["summary"]["merged"]["samples"][-1], sort_keys=True))
    if args.telemetry_output:
        with open(args.telemetry_output, "w", encoding="utf-8") as handle:
            json.dump(
                {"server": server_stats, "telemetry": outcome.telemetry},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"telemetry snapshot written to {args.telemetry_output}")
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.distributed.client import run_remote_client

    report = run_remote_client(
        args.host,
        args.port,
        connect_timeout=args.connect_timeout,
        io_timeout=args.io_timeout,
        protocol=args.protocol,
        auth_key=_auth_key(args),
        live_stats=args.live_stats,
    )
    final = report.samples[-1]
    print(
        f"shard {report.shard_id} done ({report.tool} vs {report.dbms} on "
        f"{report.dataset}): {final.queries_generated} queries, "
        f"{final.isomorphic_sets} isomorphic sets, {final.bug_count} bugs; "
        f"shipped {report.entries_shipped} index entries, received "
        f"{report.broadcast_entries_received} "
        f"(+{report.broadcast_entries_suppressed} suppressed as already known)"
    )
    return 0


def _cmd_verify_local(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import parallel_result_to_dict

    with open(args.json, "r", encoding="utf-8") as handle:
        recorded = json.load(handle)
    campaign = recorded.get("campaign")
    if not campaign:
        print("JSON file carries no campaign block; cannot re-run", file=sys.stderr)
        return 2
    evicted = campaign.get("evicted")
    if evicted:
        details = "; ".join(
            f"shard {sid}: {reason}" for sid, reason in sorted(evicted.items())
        )
        print(
            f"recorded campaign evicted client(s) mid-run ({details}); the "
            "merge covers only the survivors, so no healthy in-process pool "
            "can reproduce it — nothing to verify",
            file=sys.stderr,
        )
        return 2
    config = CampaignConfig(
        dataset=campaign["dataset"],
        dataset_rows=campaign["dataset_rows"],
        hours=campaign["hours"],
        queries_per_hour=campaign["queries_per_hour"],
        seed=campaign["seed"],
        reference_executor=campaign.get("executor", "row"),
        use_query_cache=campaign.get("query_cache", False),
    )
    shards = build_shard_specs(
        campaign["kind"],
        config,
        campaign["workers"],
        dialect=campaign["dialect"],
        baseline=campaign["baseline"],
        backend=campaign["backend"],
        batch_size=campaign.get("batch_size", 1),
    )
    outcome = run_parallel_shards(
        shards,
        ParallelCampaignConfig(
            workers=campaign["workers"],
            sync_interval=campaign["sync_interval"],
            worker_timeout=args.worker_timeout,
            prune_broadcasts=campaign["prune"],
            budget_policy=campaign.get("budget_policy", "even"),
            pipeline_batch_size=campaign.get("batch_size", 1),
        ),
    )
    local = parallel_result_to_dict(outcome, campaign=campaign)
    mismatches = _diff_summaries(recorded["summary"], local["summary"])
    if mismatches:
        print("distributed result DIFFERS from the in-process pool:")
        for line in mismatches:
            print(f"  {line}")
        return 1
    merged = recorded["summary"]["merged"]["samples"][-1]
    print(
        "verified: TCP campaign matches the in-process pool "
        f"({merged['queries_generated']} queries, "
        f"{merged['isomorphic_sets']} isomorphic sets, "
        f"{merged['bug_count']} bugs)"
    )
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.distributed.testing import fuzz_server

    stats = fuzz_server(
        args.host,
        args.port,
        frames=args.frames,
        seed=args.seed,
        auth_key=_auth_key(args),
    )
    total = sum(stats.values())
    kinds = ", ".join(f"{kind} x{count}" for kind, count in sorted(stats.items()))
    probe = (
        "answered an authenticated probe"
        if args.auth_key_file
        else "kept accepting connections"
    )
    print(f"server survived {total} malformed frames ({kinds}) and {probe}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.distributed.client import fetch_stats

    stats = fetch_stats(
        args.host,
        args.port,
        connect_timeout=args.connect_timeout,
        protocol=args.protocol,
        auth_key=_auth_key(args),
    )
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    registered = stats.get("registered_shards") or []
    print(
        f"index server: {len(registered)}/{stats.get('expected_shards')} shards "
        f"registered, {stats.get('reports_received')} reports, "
        f"{stats.get('rounds_completed')}/{stats.get('sync_rounds_scheduled')} "
        "sync rounds completed"
    )
    print(
        f"frames rejected: {stats.get('frames_rejected', 0)}; "
        f"evictions: {stats.get('eviction_count', 0)}; "
        f"completed: {stats.get('completed')}"
    )
    ages = stats.get("shard_last_heard_seconds") or {}
    for sid in sorted(ages, key=int):
        print(f"  shard {sid}: last heard {ages[sid]:.1f}s ago")
    telemetry = stats.get("telemetry")
    if telemetry:
        print()
        print(obs.render_phase_breakdown(obs.MetricsSnapshot.from_dict(telemetry)))
    return 0


def _diff_summaries(recorded: Any, local: Any, path: str = "") -> List[str]:
    """Human-readable paths at which two summary trees disagree."""
    if isinstance(recorded, dict) and isinstance(local, dict):
        lines: List[str] = []
        for key in sorted(set(recorded) | set(local)):
            lines.extend(
                _diff_summaries(
                    recorded.get(key), local.get(key), f"{path}.{key}" if path else key
                )
            )
        return lines
    if isinstance(recorded, list) and isinstance(local, list):
        if len(recorded) != len(local):
            return [f"{path}: {len(recorded)} entries vs {len(local)}"]
        lines = []
        for index, (left, right) in enumerate(zip(recorded, local)):
            lines.extend(_diff_summaries(left, right, f"{path}[{index}]"))
        return lines
    if recorded != local:
        return [f"{path}: {recorded!r} vs {local!r}"]
    return []


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distributed",
        description="Distributed KQE index server and campaign clients over TCP.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    serve = subparsers.add_parser("serve", help="host the central index server")
    _add_campaign_arguments(serve)
    _add_protocol_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port; 0 = ephemeral (default: 0)"
    )
    serve.add_argument(
        "--round-timeout",
        type=float,
        default=300.0,
        help="seconds an open sync round waits for its laggards before they "
        "are declared stalled (default: 300)",
    )
    serve.add_argument(
        "--evict-dead-clients",
        action="store_true",
        help="evict stalled/dead clients (redistributing their per-hour "
        "budget to the survivors) instead of failing the whole campaign",
    )
    serve.add_argument(
        "--serve-timeout",
        type=float,
        default=1800.0,
        help="overall deadline for the campaign (default: 1800)",
    )
    serve.add_argument(
        "--output", default="", help="write the merged campaign JSON to this path"
    )
    serve.add_argument(
        "--live-stats",
        action="store_true",
        help="print a one-line progress summary (merged worker telemetry) to "
        "stderr every few seconds while the campaign runs",
    )
    serve.add_argument(
        "--metrics-addr",
        default="",
        help="serve Prometheus text metrics over HTTP at HOST:PORT for the "
        "campaign's duration (port 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--telemetry-output",
        default="",
        help="write the final server stats payload and merged telemetry "
        "snapshot as JSON to this path",
    )
    serve.add_argument(
        "--snapshot-dir",
        default=None,
        help="persist every completed sync round to a checksummed log in "
        "this directory and, on start, replay any rounds a previous server "
        "for the same campaign already completed — a killed server can be "
        "restarted mid-campaign with bit-identical results",
    )
    serve.set_defaults(func=_cmd_serve)

    client = subparsers.add_parser("client", help="run one campaign shard")
    _add_protocol_arguments(client)
    client.add_argument("--host", default="127.0.0.1", help="server address")
    client.add_argument("--port", type=int, required=True, help="server port")
    client.add_argument(
        "--connect-timeout",
        type=float,
        default=60.0,
        help="seconds to keep retrying the initial connection (default: 60)",
    )
    client.add_argument(
        "--io-timeout",
        type=float,
        default=600.0,
        help="socket timeout for sync barriers (default: 600)",
    )
    client.add_argument(
        "--live-stats",
        action="store_true",
        help="print a one-line progress summary to stderr after every "
        "campaign hour",
    )
    client.set_defaults(func=_cmd_client)

    verify = subparsers.add_parser(
        "verify-local",
        help="re-run a recorded campaign in-process and compare results",
    )
    verify.add_argument("--json", required=True, help="serve-produced JSON file")
    verify.add_argument(
        "--worker-timeout",
        type=float,
        default=300.0,
        help="worker timeout for the verification pool (default: 300)",
    )
    verify.set_defaults(func=_cmd_verify_local)

    fuzz = subparsers.add_parser(
        "fuzz",
        help="throw malformed frames at a live server; it must keep serving",
    )
    # Fuzzing always speaks (broken) protocol v2, so no --protocol here —
    # only the key, for the final authenticated liveness probe.
    fuzz.add_argument(
        "--auth-key-file",
        default="",
        help="the server's auth key; when given, a final authenticated probe "
        "asserts the server still answers real clients",
    )
    fuzz.add_argument("--host", default="127.0.0.1", help="server address")
    fuzz.add_argument("--port", type=int, required=True, help="server port")
    fuzz.add_argument(
        "--frames",
        type=int,
        default=50,
        help="how many malformed frames to send (default: 50)",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed of the deterministic malformed-frame stream (default: 0)",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    stats = subparsers.add_parser(
        "stats",
        help="query a live server's STATS verb and print health + telemetry",
    )
    _add_protocol_arguments(stats)
    stats.add_argument("--host", default="127.0.0.1", help="server address")
    stats.add_argument("--port", type=int, required=True, help="server port")
    stats.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        help="seconds to keep retrying the connection (default: 10)",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="print the raw stats payload as JSON instead of the summary",
    )
    stats.set_defaults(func=_cmd_stats)

    args = parser.parse_args(argv)
    return args.func(args)
