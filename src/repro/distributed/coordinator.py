"""Central-index coordination shared by the in-process pool and the TCP server.

The paper's scale-out design (§4, Figure 10) keeps one central KQE graph index
while N clients explore independently; the only shared state is the index, and
the only protocol is the bulk-synchronous exchange of (embedding, canonical
label) batches.  :class:`CentralCoordinator` is that state machine, factored
out of the transport so the ``multiprocessing`` pool and the distributed TCP
index server run *the same* merge and broadcast logic — which is exactly what
makes a 2-client TCP campaign bit-identical to a 2-worker in-process one.

It also owns the novelty pruning: the coordinator tracks, per worker, the set
of canonical labels that worker is known to hold (everything it submitted plus
everything already broadcast to it) and re-broadcasts only label-novel
entries.  Duplicate-label embeddings refine local coverage estimates slightly,
but the label is what the diversity metric and the termination heuristic key
on — so dropping already-known labels shrinks sync payloads on long campaigns
without losing exploration signal.  Pruned and unpruned runs are both
deterministic; they are simply *different* deterministic runs, so the switch
lives in the campaign configuration, not in transport flags.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set

import numpy as np

from repro.distributed.protocol import IndexEntry, SyncBroadcast
from repro.kqe.graph_index import GraphIndex


class CentralCoordinator:
    """Owns the central graph index and the per-worker novelty bookkeeping."""

    def __init__(self, prune: bool = True) -> None:
        self.index = GraphIndex()
        self.prune = prune
        self.broadcast_entries_sent = 0
        self.broadcast_entries_suppressed = 0
        self._known: Dict[int, Set[str]] = {}

    def known_labels(self, shard_id: int) -> Set[str]:
        """The canonical labels worker *shard_id* is known to hold."""
        return self._known.setdefault(shard_id, set())

    def absorb(self, entries: Iterable[IndexEntry]) -> int:
        """Fold entries into the central index; returns how many were added."""
        count = 0
        for vector, label in entries:
            self.index.add_embedding(np.asarray(vector, dtype=np.float64), label)
            count += 1
        return count

    def complete_round(
        self, batches: Mapping[int, Sequence[IndexEntry]]
    ) -> Dict[int, SyncBroadcast]:
        """Merge one bulk-synchronous round and compute per-worker broadcasts.

        Batches are absorbed in sorted shard order (arrival order must not
        matter, or TCP timing would leak into results).  Each worker's
        broadcast is the other workers' entries, in that same order, minus the
        entries whose canonical label the worker already holds — its own
        submissions and everything previously broadcast to it.  Within one
        round the first occurrence of a novel label is forwarded and later
        duplicates are suppressed.
        """
        order = sorted(batches)
        for shard_id in order:
            self.absorb(batches[shard_id])
            known = self.known_labels(shard_id)
            for _, label in batches[shard_id]:
                known.add(label)
        broadcasts: Dict[int, SyncBroadcast] = {}
        for shard_id in order:
            known = self.known_labels(shard_id)
            entries: List[IndexEntry] = []
            suppressed = 0
            for other in order:
                if other == shard_id:
                    continue
                for vector, label in batches[other]:
                    if self.prune and label in known:
                        suppressed += 1
                    else:
                        entries.append((vector, label))
                        known.add(label)
            broadcasts[shard_id] = SyncBroadcast(entries=entries, suppressed=suppressed)
            self.broadcast_entries_sent += len(entries)
            self.broadcast_entries_suppressed += suppressed
        return broadcasts
