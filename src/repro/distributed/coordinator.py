"""Central-index coordination shared by the in-process pool and the TCP server.

The paper's scale-out design (§4, Figure 10) keeps one central KQE graph index
while N clients explore independently; the only shared state is the index, and
the only protocol is the bulk-synchronous exchange of (embedding, canonical
label) batches.  :class:`CentralCoordinator` is that state machine, factored
out of the transport so the ``multiprocessing`` pool and the distributed TCP
index server run *the same* merge and broadcast logic — which is exactly what
makes a 2-client TCP campaign bit-identical to a 2-worker in-process one.

It also owns the novelty pruning: the coordinator tracks, per worker, the set
of canonical labels that worker is known to hold (everything it submitted plus
everything already broadcast to it) and re-broadcasts only label-novel
entries.  Duplicate-label embeddings refine local coverage estimates slightly,
but the label is what the diversity metric and the termination heuristic key
on — so dropping already-known labels shrinks sync payloads on long campaigns
without losing exploration signal.  Pruned and unpruned runs are both
deterministic; they are simply *different* deterministic runs, so the switch
lives in the campaign configuration, not in transport flags.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.core.budget import BudgetPolicy, redistribute_budget
from repro.distributed.protocol import IndexEntry, SyncBroadcast
from repro.kqe.graph_index import GraphIndex


class CentralCoordinator:
    """Owns the central graph index and the per-worker novelty bookkeeping.

    When given a :class:`~repro.core.budget.BudgetPolicy` plus the shards'
    initial per-hour budgets, the coordinator also decides budget reallocation
    at every round: each worker's *novel-label count* (labels it contributed
    that the central index had never seen, credited in sorted shard order) is
    fed to the policy and the resulting allocation rides home inside the
    round's broadcasts.  Decisions are functions of round content only, never
    of arrival timing, so budgeted campaigns stay deterministic.
    """

    def __init__(
        self,
        prune: bool = True,
        budget_policy: Optional[BudgetPolicy] = None,
        initial_budgets: Optional[Mapping[int, int]] = None,
    ) -> None:
        self.index = GraphIndex()
        self.prune = prune
        self.broadcast_entries_sent = 0
        self.broadcast_entries_suppressed = 0
        self.budget_policy = budget_policy
        self.budgets: Dict[int, int] = dict(initial_budgets or {})
        self._known: Dict[int, Set[str]] = {}
        # Set when an eviction reshuffled the budgets outside a policy
        # decision; the next round's broadcasts must carry the new allocation
        # even when no budget policy is configured, or the evicted shard's
        # budget would silently evaporate instead of being conserved.
        self._budgets_dirty = False

    def known_labels(self, shard_id: int) -> Set[str]:
        """The canonical labels worker *shard_id* is known to hold."""
        return self._known.setdefault(shard_id, set())

    def absorb(self, entries: Iterable[IndexEntry]) -> int:
        """Fold entries into the central index; returns how many were added."""
        count = 0
        for vector, label in entries:
            # The index's store normalizes dtypes itself; converting here
            # would copy every vector a second time per round.
            self.index.add_embedding(vector, label)
            count += 1
        return count

    def complete_round(
        self, batches: Mapping[int, Sequence[IndexEntry]]
    ) -> Dict[int, SyncBroadcast]:
        """Merge one bulk-synchronous round and compute per-worker broadcasts.

        Batches are absorbed in sorted shard order (arrival order must not
        matter, or TCP timing would leak into results).  Each worker's
        broadcast is the other workers' entries, in that same order, minus the
        entries whose canonical label the worker already holds — its own
        submissions and everything previously broadcast to it.  Within one
        round the first occurrence of a novel label is forwarded and later
        duplicates are suppressed.
        """
        order = sorted(batches)
        novel_counts: Dict[int, int] = {}
        for shard_id in order:
            known = self.known_labels(shard_id)
            novel = 0
            for vector, label in batches[shard_id]:
                # Novelty is checked against the index's own O(1) label
                # bookkeeping *before* each insertion, so within-batch
                # duplicates count once and no parallel label set is kept.
                if not self.index.contains_label(label):
                    novel += 1
                self.index.add_embedding(vector, label)
                known.add(label)
            novel_counts[shard_id] = novel
        next_budgets = self._rebalance(novel_counts)
        broadcasts: Dict[int, SyncBroadcast] = {}
        for shard_id in order:
            known = self.known_labels(shard_id)
            entries: List[IndexEntry] = []
            suppressed = 0
            for other in order:
                if other == shard_id:
                    continue
                for vector, label in batches[other]:
                    if self.prune and label in known:
                        suppressed += 1
                    else:
                        entries.append((vector, label))
                        known.add(label)
            broadcasts[shard_id] = SyncBroadcast(
                entries=entries,
                suppressed=suppressed,
                next_budget=next_budgets.get(shard_id),
            )
            self.broadcast_entries_sent += len(entries)
            self.broadcast_entries_suppressed += suppressed
        return broadcasts

    def replay_round(
        self, batches: Mapping[int, Sequence[IndexEntry]]
    ) -> Dict[int, SyncBroadcast]:
        """Re-apply one snapshot-logged round during restore.

        Deliberately *the same code path* as :meth:`complete_round`: merge
        order, novelty pruning and budget rebalancing are all pure functions
        of round content, so replaying the logged batches reproduces the
        coordinator's state — and the broadcasts — bit-identically.  The
        alias exists so restore call sites read as what they are.
        """
        return self.complete_round(batches)

    def evict(self, shard_id: int) -> None:
        """Drop a dead worker; its per-hour budget moves to the survivors.

        The freed budget is redistributed deterministically (largest-remainder
        split in sorted shard order), conserving the campaign's per-hour total
        across the eviction — and it reaches the survivors in the next round's
        broadcasts whether or not a budget policy is configured.
        """
        self._known.pop(shard_id, None)
        if shard_id in self.budgets:
            self.budgets = redistribute_budget(self.budgets, shard_id)
            self._budgets_dirty = True

    def _rebalance(self, novel_counts: Dict[int, int]) -> Dict[int, int]:
        """One round's budget decision; empty when there is nothing to say."""
        if self.budget_policy is None or not self.budgets:
            if self._budgets_dirty:
                self._budgets_dirty = False
                return dict(self.budgets)
            return {}
        self._budgets_dirty = False
        self.budgets = self.budget_policy.rebalance(self.budgets, novel_counts)
        return self.budgets
