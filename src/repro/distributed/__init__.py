"""Distributed campaign infrastructure: the KQE index server over TCP.

The paper's Figure-10 scale-out keeps one central KQE graph index while N
clients explore independently.  This package makes that deployment real:

* :mod:`repro.distributed.protocol` — length-prefixed pickle frames and the
  REGISTER / SYNC / REPORT / SHUTDOWN verbs of the bulk-synchronous protocol.
* :mod:`repro.distributed.coordinator` — the transport-agnostic central-index
  state machine with per-worker novelty pruning, shared with the in-process
  ``multiprocessing`` pool so TCP and local runs are bit-identical.
* :mod:`repro.distributed.server` — :class:`IndexServer`, a threaded TCP
  server hosting the coordinator for remote campaign clients.
* :mod:`repro.distributed.client` — :class:`RemoteSyncTransport` (the
  :class:`~repro.core.parallel.SyncTransport` implementation over a socket)
  and :func:`run_remote_client`, the full remote worker.
* :mod:`repro.distributed.cli` — ``python -m repro.distributed``
  (``serve`` / ``client`` / ``verify-local``).
"""

from repro.distributed.coordinator import CentralCoordinator
from repro.distributed.protocol import (
    IndexEntry,
    SyncBroadcast,
    recv_frame,
    send_frame,
)

__all__ = [
    "CentralCoordinator",
    "IndexEntry",
    "SyncBroadcast",
    "recv_frame",
    "send_frame",
]
