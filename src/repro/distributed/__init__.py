"""Distributed campaign infrastructure: the KQE index server over TCP.

The paper's Figure-10 scale-out keeps one central KQE graph index while N
clients explore independently.  This package makes that deployment real:

* :mod:`repro.distributed.protocol` — the wire encodings behind the
  REGISTER / SYNC / REPORT / SHUTDOWN verbs of the bulk-synchronous protocol:
  protocol v2 (versioned, HMAC-authenticated JSON frames with a HELLO
  handshake; the default) and the legacy length-prefixed pickle framing.
* :mod:`repro.distributed.wire` — the typed JSON codecs of protocol v2: every
  campaign payload (embeddings, shard specs, reports, budgets) has an explicit
  schema, and decoding validates it.
* :mod:`repro.distributed.coordinator` — the transport-agnostic central-index
  state machine with per-worker novelty pruning, shared with the in-process
  ``multiprocessing`` pool so TCP and local runs are bit-identical.
* :mod:`repro.distributed.server` — :class:`IndexServer`, a threaded TCP
  server hosting the coordinator for remote campaign clients, with per-shard
  liveness tracking and optional eviction of dead clients.
* :mod:`repro.distributed.client` — :class:`RemoteSyncTransport` (the
  :class:`~repro.core.parallel.SyncTransport` implementation over a socket)
  and :func:`run_remote_client`, the full remote worker.
* :mod:`repro.distributed.testing` — the fault-injection harness (a
  frame-mangling proxy, scripted clients and a protocol fuzzer).
* :mod:`repro.distributed.cli` — ``python -m repro.distributed``
  (``serve`` / ``client`` / ``verify-local`` / ``fuzz``).
"""

from repro.distributed.coordinator import CentralCoordinator
from repro.distributed.protocol import (
    IndexEntry,
    JsonFrameCodec,
    PickleFrameCodec,
    SyncBroadcast,
    codec_from_name,
    load_auth_key,
    recv_frame,
    send_frame,
)

__all__ = [
    "CentralCoordinator",
    "IndexEntry",
    "JsonFrameCodec",
    "PickleFrameCodec",
    "SyncBroadcast",
    "codec_from_name",
    "load_auth_key",
    "recv_frame",
    "send_frame",
]
