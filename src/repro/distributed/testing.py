"""Fault-injection harness for the distributed campaign stack.

The oracle side of this reproduction is tested adversarially; this module
lets the *distributed* side be tested the same way.  It provides three tools,
used by ``tests/test_fault_injection.py`` and the ``python -m
repro.distributed fuzz`` smoke command:

* :class:`FaultyProxy` — a frame-aware TCP proxy between campaign clients and
  an index server.  A *fault plan* (a callable receiving the frame index and
  the raw frame bytes) decides per client→server frame whether to forward,
  drop, delay, truncate or corrupt it, or to kill the connection outright —
  the network misbehaving on schedule.
* :class:`ScriptedClient` — a raw protocol v2 client that can speak the
  handshake and individual verbs (or arbitrary bytes) without running a
  campaign, for driving the server off the happy path: register-then-vanish,
  sync-then-die, tampered tags.
* :func:`fuzz_server` — throws batches of malformed frames (garbage, bad
  magic, hostile lengths, truncations, flipped MAC bits, wrong keys) at a
  live server and verifies it survives and still answers.

Everything here is deterministic given a seed, so fault regression tests are
reproducible.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.distributed import protocol
from repro.distributed.protocol import (
    MAC_BYTES,
    MAGIC,
    JsonFrameCodec,
    client_handshake,
)
from repro.errors import TransportError

# A fault plan maps (frame_index, frame_bytes) -> action tuple:
#   ("pass",) | ("drop",) | ("close",) | ("delay", seconds)
#   | ("truncate", byte_count) | ("corrupt", byte_offset)
FaultPlan = Callable[[int, bytes], Tuple[Any, ...]]


def passthrough(index: int, frame: bytes) -> Tuple[str]:
    """The do-nothing fault plan: every frame is forwarded untouched."""
    return ("pass",)


def flip_byte(data: bytes, offset: int) -> bytes:
    """One bit-flip at *offset* (modulo the length) — the minimal corruption."""
    offset %= len(data)
    return data[:offset] + bytes([data[offset] ^ 0x01]) + data[offset + 1 :]


def tamper_mac(frame: bytes) -> bytes:
    """Flip one bit inside a v2 frame's authentication tag."""
    return flip_byte(frame, len(MAGIC) + 4)


def truncate_frame(frame: bytes, keep: int) -> bytes:
    """The first *keep* bytes of a frame — a mid-frame connection cut."""
    return frame[:keep]


class ScriptedClient:
    """A hand-driven protocol v2 connection for off-happy-path tests."""

    def __init__(
        self,
        host: str,
        port: int,
        auth_key: Optional[bytes] = None,
        handshake: bool = True,
        timeout: float = 30.0,
    ) -> None:
        self.codec = JsonFrameCodec(auth_key)
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(timeout)
        if handshake:
            try:
                client_handshake(self.sock, self.codec)
            except TransportError:
                self.close()
                raise

    def __enter__(self) -> "ScriptedClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def send(self, message: Any) -> None:
        self.codec.send(self.sock, message)

    def send_raw(self, data: bytes) -> None:
        self.sock.sendall(data)

    def recv(self) -> Any:
        return self.codec.recv(self.sock)

    def request(self, message: Any) -> Any:
        return self.codec.request(self.sock, message)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def _read_frame(sock: socket.socket) -> Optional[bytes]:
    """One raw frame (v2 or legacy pickle) off *sock*; None on clean EOF."""
    head = protocol._recv_exact(sock, 4)
    if head is None:
        return None
    if head == MAGIC:
        length_bytes = protocol._recv_exact(sock, 4)
        if length_bytes is None:
            return head
        length = int.from_bytes(length_bytes, "big")
        if length > protocol.MAX_FRAME_BYTES:
            raise TransportError(f"refusing to proxy a {length}-byte frame")
        rest = protocol._recv_exact(sock, MAC_BYTES + length)
        return head + length_bytes + (rest or b"")
    # Legacy pickle frame: the 4 bytes are the payload length.
    length = int.from_bytes(head, "big")
    if length > protocol.MAX_FRAME_BYTES:
        raise TransportError(f"refusing to proxy a {length}-byte frame")
    payload = protocol._recv_exact(sock, length)
    return head + (payload or b"")


class FaultyProxy:
    """A TCP proxy that injects faults into client→server protocol frames.

    Server→client traffic is pumped verbatim; client→server traffic is read
    frame by frame and each frame is submitted to the fault plan.  Frame
    indices count per connection, starting at 0 (for a v2 connection, frame 0
    is the HELLO).
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: Optional[FaultPlan] = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.plan = plan or passthrough
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()[:2]
        self._closing = False
        self._sockets: List[socket.socket] = []
        self._lock = threading.Lock()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="faulty-proxy-accept"
        )
        self._accept_thread.start()

    def __enter__(self) -> "FaultyProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                return
            try:
                upstream = socket.create_connection(self.upstream, timeout=10.0)
            except OSError:
                downstream.close()
                continue
            with self._lock:
                self._sockets.extend((downstream, upstream))
            threading.Thread(
                target=self._pump_frames,
                args=(downstream, upstream),
                daemon=True,
                name="faulty-proxy-c2s",
            ).start()
            threading.Thread(
                target=self._pump_raw,
                args=(upstream, downstream),
                daemon=True,
                name="faulty-proxy-s2c",
            ).start()

    def _pump_frames(self, source: socket.socket, sink: socket.socket) -> None:
        index = 0
        try:
            while True:
                frame = _read_frame(source)
                if frame is None:
                    break
                action = self.plan(index, frame)
                index += 1
                verb = action[0]
                if verb == "drop":
                    continue
                if verb == "close":
                    break
                if verb == "delay":
                    time.sleep(action[1])
                    sink.sendall(frame)
                    continue
                if verb == "truncate":
                    sink.sendall(truncate_frame(frame, action[1]))
                    break
                if verb == "corrupt":
                    sink.sendall(flip_byte(frame, action[1]))
                    continue
                sink.sendall(frame)
        except (TransportError, OSError):
            pass
        finally:
            self._shutdown_pair(source, sink)

    def _pump_raw(self, source: socket.socket, sink: socket.socket) -> None:
        try:
            while True:
                chunk = source.recv(1 << 16)
                if not chunk:
                    break
                sink.sendall(chunk)
        except OSError:
            pass
        finally:
            self._shutdown_pair(source, sink)

    def _shutdown_pair(self, *socks: socket.socket) -> None:
        # shutdown() before close(): a pump thread blocked in recv() on the
        # peer socket holds its file description open, which would defer the
        # FIN (and the fault the test is waiting for) until a timeout fires.
        for sock in socks:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            sockets, self._sockets = self._sockets, []
        self._shutdown_pair(*sockets)


# ------------------------------------------------------------------- fuzzing


def _random_bytes(rng: random.Random, count: int) -> bytes:
    return bytes(rng.getrandbits(8) for _ in range(count))


_FRAME_KINDS = (
    "garbage",
    "bad-magic",
    "hostile-length",
    "tampered-mac",
    "corrupt-body",
    "truncated",
    "wrong-key",
    "pickle-v1",
)


def _malformed_frame(rng: random.Random, kind: str, hello: bytes) -> bytes:
    """One malformed frame of the given kind; *hello* is a valid v2 frame."""
    if kind == "garbage":
        return _random_bytes(rng, rng.randint(1, 512))
    if kind == "bad-magic":
        return b"TQS9" + _random_bytes(rng, rng.randint(1, 128))
    if kind == "hostile-length":
        return MAGIC + (0x7FFFFFFF).to_bytes(4, "big") + _random_bytes(rng, 64)
    if kind == "tampered-mac":
        return tamper_mac(hello)
    if kind == "corrupt-body":
        return flip_byte(hello, rng.randrange(len(MAGIC) + 4 + MAC_BYTES, len(hello)))
    if kind == "truncated":
        return truncate_frame(hello, rng.randint(1, len(hello) - 1))
    if kind == "wrong-key":
        wrong = JsonFrameCodec(b"not-the-server-key-" + _random_bytes(rng, 8))
        return wrong.encode((protocol.HELLO, protocol.PROTOCOL_VERSION))
    return (12).to_bytes(4, "big") + _random_bytes(rng, 12)  # pickle-v1


def fuzz_server(
    host: str,
    port: int,
    frames: int = 50,
    seed: int = 0,
    auth_key: Optional[bytes] = None,
    reply_timeout: float = 3.0,
) -> Dict[str, int]:
    """Throw *frames* malformed frames at a live index server.

    Every frame goes down a fresh connection; the server must reject each one
    without dying.  When *auth_key* is given, a final authenticated probe
    (HELLO handshake plus a TICK exchange) asserts the server still answers
    real clients.  Returns per-kind counts; raises :class:`TransportError`
    the moment the server stops accepting connections.
    """
    rng = random.Random(seed)
    hello = JsonFrameCodec(auth_key).encode((protocol.HELLO, protocol.PROTOCOL_VERSION))
    sent: Dict[str, int] = {}
    for index in range(frames):
        kind = _FRAME_KINDS[rng.randrange(len(_FRAME_KINDS))]
        payload = _malformed_frame(rng, kind, hello)
        try:
            sock = socket.create_connection((host, port), timeout=reply_timeout)
        except OSError as exc:
            raise TransportError(
                f"server stopped accepting connections after {index} "
                f"malformed frames: {exc}"
            ) from exc
        try:
            sock.settimeout(reply_timeout)
            sock.sendall(payload)
            try:
                sock.recv(1 << 16)  # drain any rejection; EOF/timeout are fine
            except OSError:
                pass
        finally:
            try:
                sock.close()
            except OSError:
                pass
        sent[kind] = sent.get(kind, 0) + 1
    if auth_key is not None:
        with ScriptedClient(host, port, auth_key=auth_key) as probe:
            reply = probe.request((protocol.TICK, -1))
            if reply != (protocol.OK,):
                raise TransportError(f"post-fuzz probe expected OK, got {reply!r}")
    return sent
