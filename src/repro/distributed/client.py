"""Client side of the distributed KQE index server.

:class:`RemoteSyncTransport` implements the worker-facing
:class:`~repro.core.parallel.SyncTransport` interface over one TCP connection,
so the exact worker body that runs inside the in-process pool
(:func:`~repro.core.parallel.run_shard_with_transport`) also runs against a
remote index server.  :func:`run_remote_client` is the full remote worker: it
connects, asks the server to assign it one of the campaign's shards, runs the
shard with a liveness heartbeat, and uploads the report —
``python -m repro.distributed client`` is a thin wrapper around it.

The wire encoding mirrors the server's ``protocol=`` switch: ``"json"`` (the
default) speaks protocol v2 — HMAC-authenticated JSON frames, opened with a
HELLO version negotiation right after the socket connects — while
``"pickle"`` keeps the legacy trusted-host framing for old servers.
"""

from __future__ import annotations

import socket
import sys
import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.distributed import protocol
from repro.distributed.protocol import (
    FrameCodec,
    IndexEntry,
    SyncBroadcast,
    client_handshake,
    codec_from_name,
)
from repro.errors import TransportError


class RemoteSyncTransport:
    """One worker's TCP connection to the index server.

    All verbs share one socket; a lock serializes the request/response pairs
    so the heartbeat thread's TICKs interleave cleanly between the main
    thread's exchanges instead of corrupting the frame stream.  Connection is
    retried until *connect_timeout* so clients may start before the server
    finishes binding (the usual CI race).
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 30.0,
        io_timeout: Optional[float] = 600.0,
        protocol: str = "json",
        auth_key: Optional[bytes] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.protocol = protocol
        self._io_timeout = io_timeout
        self._lock = threading.Lock()
        self._codec: FrameCodec = codec_from_name(protocol, auth_key)
        self._sock = self._connect(connect_timeout, io_timeout)
        try:
            client_handshake(self._sock, self._codec)
        except TransportError:
            self.close()
            raise

    def _connect(
        self, connect_timeout: float, io_timeout: Optional[float]
    ) -> socket.socket:
        deadline = time.monotonic() + connect_timeout
        last_error: Optional[OSError] = None
        while True:
            try:
                sock = socket.create_connection((self.host, self.port), timeout=5.0)
            except OSError as exc:
                last_error = exc
                if time.monotonic() > deadline:
                    raise TransportError(
                        f"cannot connect to index server at "
                        f"{self.host}:{self.port} within {connect_timeout:.0f}s: "
                        f"{last_error}"
                    ) from exc
                time.sleep(0.2)
                continue
            sock.settimeout(io_timeout)
            for option in (socket.TCP_NODELAY,):
                try:
                    sock.setsockopt(socket.IPPROTO_TCP, option, 1)
                except OSError:
                    pass  # transport still works without the latency tweak
            try:
                # Keepalive is the escape hatch for the deadline-free sync
                # barrier: a network partition eventually surfaces as an error
                # instead of hanging the worker forever.
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
            except OSError:
                pass
            return sock

    def _request(self, message, unbounded: bool = False):
        with self._lock:
            if unbounded:
                # The sync barrier's duration depends on the *slowest peer's*
                # hour, which this worker cannot bound; deadlock arbitration
                # belongs to the server (whose activity clock is refreshed by
                # every worker's heartbeats).  A dead server still surfaces
                # here as EOF or a keepalive reset, never a silent hang.
                self._sock.settimeout(None)
            try:
                reply = self._codec.request(self._sock, message)
            finally:
                if unbounded:
                    self._sock.settimeout(self._io_timeout)
        if isinstance(reply, tuple) and reply and reply[0] == protocol.ABORT:
            raise TransportError(f"index server aborted: {reply[1]}")
        return reply

    # ------------------------------------------------------ SyncTransport API

    def register(self, shard_id: Optional[int]):
        """Register with the server.

        With a concrete *shard_id* (the in-process TCP pool) the server just
        validates the claim and the return value is None.  With ``None`` the
        server assigns one of the campaign's shards and this returns
        ``(spec, sync_hours)`` for the client to run.
        """
        reply = self._request((protocol.REGISTER, shard_id))
        if reply[0] != protocol.REGISTERED:
            raise TransportError(f"unexpected registration reply {reply[0]!r}")
        spec, sync_hours = reply[1], tuple(reply[2])
        if shard_id is None:
            if spec is None:
                raise TransportError("server assigned no shard")
            return spec, sync_hours
        return None

    def sync(
        self,
        shard_id: int,
        hour: int,
        entries: List[IndexEntry],
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> SyncBroadcast:
        message = (
            (protocol.SYNC, shard_id, hour, entries)
            if telemetry is None
            else (protocol.SYNC, shard_id, hour, entries, telemetry)
        )
        reply = self._request(message, unbounded=True)
        if reply[0] != protocol.BROADCAST:
            raise TransportError(f"unexpected sync reply {reply[0]!r}")
        return reply[1]

    def stats(self) -> Dict[str, Any]:
        """Fetch the server's stats payload (health + merged telemetry)."""
        reply = self._request((protocol.STATS,))
        if reply[0] != protocol.STATS_OK:
            raise TransportError(f"unexpected stats reply {reply[0]!r}")
        return reply[1]

    def report(self, report) -> None:
        reply = self._request((protocol.REPORT, report))
        if reply[0] != protocol.OK:
            raise TransportError(f"unexpected report reply {reply[0]!r}")

    def error(self, shard_id: int, text: str) -> None:
        self._request((protocol.ERROR, shard_id, text))

    def tick(self, shard_id: int) -> None:
        self._request((protocol.TICK, shard_id))

    def shutdown_server(self) -> None:
        """Send the SHUTDOWN verb; the server stops after acknowledging."""
        reply = self._request((protocol.SHUTDOWN,))
        if reply[0] != protocol.OK:
            raise TransportError(f"unexpected shutdown reply {reply[0]!r}")

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def request_shutdown(
    host: str,
    port: int,
    connect_timeout: float = 10.0,
    protocol: str = "json",
    auth_key: Optional[bytes] = None,
) -> None:
    """Ask a running index server to shut down (the SHUTDOWN verb)."""
    transport = RemoteSyncTransport(
        host,
        port,
        connect_timeout=connect_timeout,
        io_timeout=30.0,
        protocol=protocol,
        auth_key=auth_key,
    )
    try:
        transport.shutdown_server()
    finally:
        transport.close()


def fetch_stats(
    host: str,
    port: int,
    connect_timeout: float = 10.0,
    protocol: str = "json",
    auth_key: Optional[bytes] = None,
) -> Dict[str, Any]:
    """Fetch a running index server's stats payload (the STATS verb)."""
    transport = RemoteSyncTransport(
        host,
        port,
        connect_timeout=connect_timeout,
        io_timeout=30.0,
        protocol=protocol,
        auth_key=auth_key,
    )
    try:
        return transport.stats()
    finally:
        transport.close()


def run_remote_client(
    host: str,
    port: int,
    connect_timeout: float = 60.0,
    io_timeout: float = 600.0,
    heartbeat_interval: float = 10.0,
    protocol: str = "json",
    auth_key: Optional[bytes] = None,
    live_stats: bool = False,
):
    """Run one full remote worker against an index server.

    Connects, lets the server assign a shard, runs it with the shared worker
    body and a liveness heartbeat, uploads the report and returns it.  On
    failure the server is told (so the whole campaign fails fast) and the
    exception propagates to the caller.
    """
    from repro.core.parallel import run_shard_with_heartbeat

    transport = RemoteSyncTransport(
        host,
        port,
        connect_timeout=connect_timeout,
        io_timeout=io_timeout,
        protocol=protocol,
        auth_key=auth_key,
    )
    shard_id: Optional[int] = None
    try:
        assignment: Tuple = transport.register(None)
        spec, sync_hours = assignment
        shard_id = spec.shard_id
        report = run_shard_with_heartbeat(
            spec, sync_hours, transport, heartbeat_interval, live_stats=live_stats
        )
        transport.report(report)
        return report
    except BaseException:
        try:
            transport.error(
                -1 if shard_id is None else shard_id, traceback.format_exc()
            )
        except Exception as notify_error:
            # The failure notification could not reach the server; the
            # original exception still propagates below.
            print(
                f"failed to notify server of client failure: {notify_error}",
                file=sys.stderr,
            )
        raise
    finally:
        transport.close()
